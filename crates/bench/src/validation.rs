//! Empirical validation of Table I.
//!
//! The paper's §IV claim: "the performance ranking of different
//! partitioning strategies in our empirical evaluation matches the
//! theoretical ranking we have proposed in Table I". This module replays
//! that check on the simulated results.
//!
//! Two refinements, both grounded in the paper itself:
//!
//! * **Tie tolerance.** The paper reports ties among the dynamic strategies
//!   ("there is no visible performance difference between the two
//!   strategies" — DP-Perf vs DP-Dep on STREAM-Seq). A pair is accepted if
//!   the theoretically-better strategy is faster *or within
//!   [`TIE_TOLERANCE`] of the other*.
//! * **Documented deviations.** Our runtime's region-exact coherence and
//!   asynchronous write-back make SP-Varied's added synchronisations
//!   cheaper than in OmpSs-14.10, so in the *without-synchronisation*
//!   STREAM cases SP-Varied lands above DP-Dep instead of below it (it
//!   still loses to SP-Unified by a wide margin, which is the claim that
//!   drives strategy selection). These known pairs are reported as
//!   `deviation` rather than `violation`; see EXPERIMENTS.md.

use crate::experiments::AppRun;
use serde::{Deserialize, Serialize};

/// Relative tolerance under which a theoretically-lower-ranked strategy may
/// tie a higher-ranked one (the paper's "no visible difference").
pub const TIE_TOLERANCE: f64 = 0.10;

/// Outcome of one adjacent-pair comparison in a ranking.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PairOutcome {
    /// Ordered as Table I predicts.
    Ordered,
    /// Within the tie tolerance.
    Tie,
    /// Known, documented deviation (SP-Varied under region-exact coherence).
    Deviation,
    /// Unexpected violation of the theoretical ranking.
    Violation,
}

/// One validated ranking pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankingCheck {
    /// Application variant.
    pub app: String,
    /// The theoretically better strategy.
    pub better: String,
    /// The theoretically worse strategy.
    pub worse: String,
    /// Measured time of `better`, ms.
    pub better_ms: f64,
    /// Measured time of `worse`, ms.
    pub worse_ms: f64,
    /// Outcome.
    pub outcome: PairOutcome,
}

/// Pairs where our substrate is known to deviate from the paper's OmpSs
/// implementation (see module docs): `(app prefix, better, worse)`.
const KNOWN_DEVIATIONS: &[(&str, &str, &str)] = &[
    ("STREAM-Seq-w/o", "DP-Dep", "SP-Varied"),
    ("STREAM-Loop-w/o", "DP-Dep", "SP-Varied"),
    ("STREAM-Seq-w/o", "DP-Perf", "SP-Varied"),
    ("STREAM-Loop-w/o", "DP-Perf", "SP-Varied"),
];

/// Check every adjacent pair of every application's theoretical ranking
/// against the measured times.
pub fn validate_rankings(runs: &[AppRun]) -> Vec<RankingCheck> {
    let mut checks = Vec::new();
    for run in runs {
        for pair in run.ranking.windows(2) {
            let better = &pair[0];
            let worse = &pair[1];
            let bm = run.get(better).expect("ranked strategy was run").time_ms;
            let wm = run.get(worse).expect("ranked strategy was run").time_ms;
            let outcome = if bm <= wm {
                PairOutcome::Ordered
            } else if bm <= wm * (1.0 + TIE_TOLERANCE) {
                PairOutcome::Tie
            } else if KNOWN_DEVIATIONS
                .iter()
                .any(|&(app, b, w)| run.app == app && better == b && worse == w)
            {
                PairOutcome::Deviation
            } else {
                PairOutcome::Violation
            };
            checks.push(RankingCheck {
                app: run.app.clone(),
                better: better.clone(),
                worse: worse.clone(),
                better_ms: bm,
                worse_ms: wm,
                outcome,
            });
        }
    }
    checks
}

/// `true` when no unexpected violations occurred.
pub fn all_valid(checks: &[RankingCheck]) -> bool {
    checks.iter().all(|c| c.outcome != PairOutcome::Violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ConfigRun;

    fn cfg(name: &str, ms: f64) -> ConfigRun {
        ConfigRun {
            config: name.into(),
            time_ms: ms,
            gpu_item_share: 0.0,
            gpu_task_share: 0.0,
            per_kernel_gpu_share: vec![],
            transfers: 0,
            transfer_bytes: 0,
            transfer_ms: 0.0,
            sched_decisions: 0,
        }
    }

    fn run(app: &str, ranking: &[&str], times: &[f64]) -> AppRun {
        AppRun {
            app: app.into(),
            class: "SK-One".into(),
            with_sync: false,
            ranking: ranking.iter().map(|s| s.to_string()).collect(),
            configs: ranking.iter().zip(times).map(|(n, &t)| cfg(n, t)).collect(),
        }
    }

    #[test]
    fn ordered_pairs_pass() {
        let r = run("X", &["A", "B", "C"], &[1.0, 2.0, 3.0]);
        let checks = validate_rankings(&[r]);
        assert!(checks.iter().all(|c| c.outcome == PairOutcome::Ordered));
        assert!(all_valid(&checks));
    }

    #[test]
    fn small_inversions_are_ties() {
        let r = run("X", &["A", "B"], &[1.05, 1.0]);
        let checks = validate_rankings(&[r]);
        assert_eq!(checks[0].outcome, PairOutcome::Tie);
        assert!(all_valid(&checks));
    }

    #[test]
    fn large_inversions_are_violations() {
        let r = run("X", &["A", "B"], &[2.0, 1.0]);
        let checks = validate_rankings(&[r]);
        assert_eq!(checks[0].outcome, PairOutcome::Violation);
        assert!(!all_valid(&checks));
    }

    #[test]
    fn known_deviations_are_flagged_not_failed() {
        let r = run("STREAM-Seq-w/o", &["DP-Dep", "SP-Varied"], &[2.0, 1.0]);
        let checks = validate_rankings(&[r]);
        assert_eq!(checks[0].outcome, PairOutcome::Deviation);
        assert!(all_valid(&checks));
    }
}
