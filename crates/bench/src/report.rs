//! Plain-text rendering of experiment results, in the layout of the
//! paper's tables and figures.

use crate::experiments::{AppRun, SpeedupRow};
use crate::validation::{PairOutcome, RankingCheck};
use hetero_platform::Platform;
use matchmaker::{ranking, AppClass, SyncMode};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Table I as text.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table I — suitable partitioning strategies and ranking"
    )
    .unwrap();
    let rows: [(&str, AppClass, SyncMode); 4] = [
        ("SK-One, SK-Loop", AppClass::SkOne, SyncMode::WithoutSync),
        (
            "MK-Seq, MK-Loop (w/o sync)",
            AppClass::MkSeq,
            SyncMode::WithoutSync,
        ),
        (
            "MK-Seq, MK-Loop (w sync)",
            AppClass::MkSeq,
            SyncMode::WithSync,
        ),
        ("MK-DAG", AppClass::MkDag, SyncMode::WithoutSync),
    ];
    for (label, class, sync) in rows {
        let ranked: Vec<String> = ranking(class, sync)
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}. {s}", i + 1))
            .collect();
        writeln!(out, "  {label:<28} {}", ranked.join(", ")).unwrap();
    }
    out
}

/// Table II: the applications and their (re-)detected classes.
pub fn table2(runs: &[AppRun]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table II — applications for evaluation (classifier output)"
    )
    .unwrap();
    writeln!(out, "  {:<18} {:<8} sync-required", "Application", "Class").unwrap();
    for run in runs {
        writeln!(
            out,
            "  {:<18} {:<8} {}",
            run.app,
            run.class,
            if run.with_sync { "yes" } else { "no" }
        )
        .unwrap();
    }
    out
}

/// Table III: the simulated platform.
pub fn table3(platform: &Platform) -> String {
    let mut out = String::new();
    writeln!(out, "Table III — simulated platform").unwrap();
    for dev in &platform.devices {
        let s = &dev.spec;
        writeln!(
            out,
            "  {:<22} {:.3} GHz, {} slots, {:.1}/{:.1} GFLOPS (SP/DP), {:.1} GB/s, {:.0} GB",
            s.name,
            s.frequency_ghz,
            s.kind.slots(),
            s.peak_gflops_sp,
            s.peak_gflops_dp,
            s.mem_bandwidth_gbs,
            s.mem_capacity_gb
        )
        .unwrap();
    }
    for ((a, b), link) in &platform.links {
        writeln!(
            out,
            "  link mem{}<->mem{}: {:.1} GB/s, {} latency",
            a.0, b.0, link.bandwidth_gbs, link.latency
        )
        .unwrap();
    }
    out
}

/// One figure's execution-time bars (Figures 5, 7, 9, 11).
pub fn figure_times(title: &str, runs: &[&AppRun]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    for run in runs {
        writeln!(out, "  {} [{}]", run.app, run.class).unwrap();
        for c in &run.configs {
            writeln!(
                out,
                "    {:<14} {:>10.1} ms   (transfers: {:>4} moves, {:>7.1} MB, {:>7.1} ms)",
                c.config,
                c.time_ms,
                c.transfers,
                c.transfer_bytes as f64 / 1e6,
                c.transfer_ms
            )
            .unwrap();
        }
    }
    out
}

/// One figure's partitioning-ratio bars (Figures 6, 8, 10).
pub fn figure_ratios(title: &str, runs: &[&AppRun], per_kernel_for: &[&str]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    for run in runs {
        writeln!(out, "  {}", run.app).unwrap();
        for c in &run.configs {
            let mut line = format!(
                "    {:<14} GPU {:>5.1}% / CPU {:>5.1}%",
                c.config,
                100.0 * c.gpu_item_share,
                100.0 * (1.0 - c.gpu_item_share)
            );
            if per_kernel_for.contains(&c.config.as_str()) && c.per_kernel_gpu_share.len() > 1 {
                let per: Vec<String> = c
                    .per_kernel_gpu_share
                    .iter()
                    .map(|s| format!("{:.1}%", 100.0 * s))
                    .collect();
                write!(line, "   per-kernel GPU: [{}]", per.join(", ")).unwrap();
            }
            writeln!(out, "{line}").unwrap();
        }
    }
    out
}

/// Figure 12 as text.
pub fn figure12(rows: &[SpeedupRow], avg_og: f64, avg_oc: f64) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 12 — speedup of the best strategy vs Only-GPU / Only-CPU"
    )
    .unwrap();
    writeln!(
        out,
        "  {:<18} {:<12} {:>10} {:>10}",
        "Application", "Best", "vs OG", "vs OC"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "  {:<18} {:<12} {:>9.2}x {:>9.2}x",
            r.app, r.best, r.vs_only_gpu, r.vs_only_cpu
        )
        .unwrap();
    }
    writeln!(
        out,
        "  {:<18} {:<12} {:>9.2}x {:>9.2}x   (paper: 3.0x / 5.3x)",
        "Average", "", avg_og, avg_oc
    )
    .unwrap();
    out
}

/// The Table I empirical validation summary.
pub fn validation_report(checks: &[RankingCheck]) -> String {
    let mut out = String::new();
    writeln!(out, "Table I empirical validation (adjacent ranking pairs)").unwrap();
    for c in checks {
        let mark = match c.outcome {
            PairOutcome::Ordered => "ok ",
            PairOutcome::Tie => "tie",
            PairOutcome::Deviation => "DEV",
            PairOutcome::Violation => "BAD",
        };
        writeln!(
            out,
            "  [{mark}] {:<18} {:<11} ({:>9.1} ms)  <=  {:<11} ({:>9.1} ms)",
            c.app, c.better, c.better_ms, c.worse, c.worse_ms
        )
        .unwrap();
    }
    let v = checks
        .iter()
        .filter(|c| c.outcome == PairOutcome::Violation)
        .count();
    let d = checks
        .iter()
        .filter(|c| c.outcome == PairOutcome::Deviation)
        .count();
    writeln!(
        out,
        "  {} pairs checked, {} violations, {} documented deviations",
        checks.len(),
        v,
        d
    )
    .unwrap();
    out
}

/// The model-accuracy study as text.
pub fn accuracy_report(rows: &[crate::experiments::AccuracyRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Glinda model accuracy (predicted vs simulated, matched static strategy)"
    )
    .unwrap();
    writeln!(
        out,
        "  (the solver and the simulator share the roofline device model by construction,"
    )
    .unwrap();
    writeln!(
        out,
        "   so the residual error isolates what the model omits: launch overheads,"
    )
    .unwrap();
    writeln!(out, "   scheduling epochs and flush serialisation)").unwrap();
    writeln!(
        out,
        "  {:<18} {:<12} {:>12} {:>12} {:>8}",
        "Application", "Strategy", "predicted", "simulated", "error"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "  {:<18} {:<12} {:>9.1} ms {:>9.1} ms {:>7.1}%",
            r.app,
            r.strategy,
            r.predicted_ms,
            r.simulated_ms,
            100.0 * r.error()
        )
        .unwrap();
    }
    out
}

/// The strategy map as an ASCII grid.
pub fn strategy_map_report(
    cells: &[crate::experiments::MapCell],
    capabilities: &[f64],
    links_gbs: &[f64],
) -> String {
    let code = |winner: &str| match winner {
        "Only-GPU" => 'G',
        "Only-CPU" => 'C',
        "SP-Unified" => 'U',
        "SP-Varied" => 'V',
        "SP-Single" => 'S',
        "DP-Perf" => 'P',
        "DP-Dep" => 'D',
        _ => '?',
    };
    let mut out = String::new();
    writeln!(
        out,
        "Strategy map — winning configuration per (capability, link) cell"
    )
    .unwrap();
    writeln!(
        out,
        "  (U=SP-Unified V=SP-Varied P=DP-Perf D=DP-Dep G=Only-GPU C=Only-CPU)"
    )
    .unwrap();
    write!(out, "  {:>12} |", "cap \\ GB/s").unwrap();
    for l in links_gbs {
        write!(out, " {l:>5.1}").unwrap();
    }
    writeln!(out).unwrap();
    writeln!(
        out,
        "  {:->13}+{:-<width$}",
        "",
        "",
        width = links_gbs.len() * 6
    )
    .unwrap();
    for &cap in capabilities {
        write!(out, "  {:>12.2} |", cap).unwrap();
        for &gbs in links_gbs {
            let cell = cells
                .iter()
                .find(|c| c.capability == cap && c.link_gbs == gbs)
                .expect("cell computed");
            write!(out, " {:>5}", code(&cell.winner)).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// The §III-B coverage study as text.
pub fn coverage_report(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::new();
    let total: usize = counts.values().sum();
    writeln!(
        out,
        "Kernel-structure coverage study ({total} applications, five classes)"
    )
    .unwrap();
    for (class, n) in counts {
        writeln!(out, "  {class:<8} {n}").unwrap();
    }
    out
}

/// A self-contained markdown report regenerated from live runs: the
/// counterpart of EXPERIMENTS.md's measured columns (`repro markdown`).
pub fn markdown_report(
    runs: &[AppRun],
    checks: &[RankingCheck],
    speedups: &[SpeedupRow],
    avg_og: f64,
    avg_oc: f64,
    accuracy: &[crate::experiments::AccuracyRow],
) -> String {
    let mut out = String::new();
    writeln!(out, "# Regenerated evaluation report\n").unwrap();
    writeln!(
        out,
        "Deterministic simulated reproduction of the ICPP'15 matchmaking \
         evaluation; regenerate with `cargo run --release -p bench --bin repro -- markdown`.\n"
    )
    .unwrap();

    writeln!(out, "## Execution times and partitioning ratios\n").unwrap();
    for run in runs {
        writeln!(
            out,
            "### {} ({}, sync: {})\n",
            run.app, run.class, run.with_sync
        )
        .unwrap();
        writeln!(
            out,
            "| config | time (ms) | GPU share | transfers | moved (MB) |"
        )
        .unwrap();
        writeln!(out, "|---|---|---|---|---|").unwrap();
        for c in &run.configs {
            writeln!(
                out,
                "| {} | {:.1} | {:.1}% | {} | {:.1} |",
                c.config,
                c.time_ms,
                100.0 * c.gpu_item_share,
                c.transfers,
                c.transfer_bytes as f64 / 1e6
            )
            .unwrap();
        }
        writeln!(out).unwrap();
    }

    writeln!(out, "## Figure 12 — speedups\n").unwrap();
    writeln!(out, "| application | best | vs Only-GPU | vs Only-CPU |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for r in speedups {
        writeln!(
            out,
            "| {} | {} | {:.2}x | {:.2}x |",
            r.app, r.best, r.vs_only_gpu, r.vs_only_cpu
        )
        .unwrap();
    }
    writeln!(
        out,
        "| **average** | | **{avg_og:.2}x** | **{avg_oc:.2}x** |\n"
    )
    .unwrap();

    writeln!(out, "## Table I validation\n").unwrap();
    writeln!(out, "| app | better | worse | outcome |").unwrap();
    writeln!(out, "|---|---|---|---|").unwrap();
    for c in checks {
        writeln!(
            out,
            "| {} | {} ({:.1} ms) | {} ({:.1} ms) | {:?} |",
            c.app, c.better, c.better_ms, c.worse, c.worse_ms, c.outcome
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    writeln!(out, "## Model accuracy\n").unwrap();
    writeln!(
        out,
        "| app | strategy | predicted (ms) | simulated (ms) | error |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|").unwrap();
    for r in accuracy {
        writeln!(
            out,
            "| {} | {} | {:.1} | {:.1} | {:.1}% |",
            r.app,
            r.strategy,
            r.predicted_ms,
            r.simulated_ms,
            100.0 * r.error()
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_all_rows() {
        let t = table1();
        assert!(t.contains("SK-One"));
        assert!(t.contains("MK-DAG"));
        assert!(t.contains("1. SP-Varied"));
        assert!(t.contains("1. SP-Unified"));
    }

    #[test]
    fn table3_lists_devices_and_link() {
        let t = table3(&Platform::icpp15());
        assert!(t.contains("Xeon E5-2620"));
        assert!(t.contains("K20m"));
        assert!(t.contains("link mem0<->mem1"));
    }

    fn sample_run() -> crate::experiments::AppRun {
        crate::experiments::AppRun {
            app: "App".into(),
            class: "MK-Seq".into(),
            with_sync: true,
            ranking: vec!["SP-Varied".into(), "DP-Perf".into()],
            configs: vec![
                crate::experiments::ConfigRun {
                    config: "SP-Varied".into(),
                    time_ms: 10.0,
                    gpu_item_share: 0.25,
                    gpu_task_share: 0.2,
                    per_kernel_gpu_share: vec![0.25, 0.26],
                    transfers: 4,
                    transfer_bytes: 1_000_000,
                    transfer_ms: 2.0,
                    sched_decisions: 0,
                },
                crate::experiments::ConfigRun {
                    config: "DP-Perf".into(),
                    time_ms: 12.0,
                    gpu_item_share: 0.3,
                    gpu_task_share: 0.3,
                    per_kernel_gpu_share: vec![0.3, 0.3],
                    transfers: 10,
                    transfer_bytes: 2_000_000,
                    transfer_ms: 3.0,
                    sched_decisions: 96,
                },
            ],
        }
    }

    #[test]
    fn figure_renderers_include_all_configs() {
        let run = sample_run();
        let times = figure_times("T", &[&run]);
        assert!(times.contains("SP-Varied") && times.contains("DP-Perf"));
        assert!(times.contains("10.0 ms"));
        let ratios = figure_ratios("R", &[&run], &["SP-Varied"]);
        assert!(ratios.contains("25.0%"));
        assert!(ratios.contains("per-kernel GPU"));
        // Per-kernel breakdown only for the requested config.
        assert_eq!(ratios.matches("per-kernel GPU").count(), 1);
    }

    #[test]
    fn figure12_renders_averages() {
        let rows = vec![crate::experiments::SpeedupRow {
            app: "App".into(),
            best: "SP-Varied".into(),
            vs_only_gpu: 2.0,
            vs_only_cpu: 3.0,
        }];
        let out = figure12(&rows, 2.0, 3.0);
        assert!(out.contains("2.00x"));
        assert!(out.contains("paper: 3.0x / 5.3x"));
    }

    #[test]
    fn markdown_report_is_wellformed() {
        let run = sample_run();
        let checks = crate::validation::validate_rankings(std::slice::from_ref(&run));
        let md = markdown_report(&[run], &checks, &[], 1.0, 1.0, &[]);
        assert!(md.starts_with("# Regenerated evaluation report"));
        assert!(md.contains("| SP-Varied | 10.0 | 25.0% | 4 | 1.0 |"));
        assert!(md.contains("## Table I validation"));
    }
}
