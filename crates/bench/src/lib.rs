#![warn(missing_docs)]

//! # bench
//!
//! The experiment harness: regenerates every table and figure of the
//! ICPP'15 *matchmaking* paper from the simulated platform, in a form
//! directly comparable with the published numbers.
//!
//! * [`experiments`] — one function per table/figure, returning structured
//!   results (also serialisable to JSON for EXPERIMENTS.md).
//! * [`report`] — plain-text rendering of those results (what the `repro`
//!   binary prints).
//! * [`validation`] — the empirical Table I ranking check with the paper's
//!   own tolerance for "no visible difference" ties, and the documented
//!   deviations.
//!
//! Run `cargo run --release -p bench --bin repro -- all` to regenerate
//! everything.

pub mod experiments;
pub mod report;
pub mod validation;

pub use experiments::{
    coverage_study, fig12_speedups, paper_variants, run_all, task_size_ablation, AppRun, ConfigRun,
    SpeedupRow,
};
pub use validation::{validate_rankings, RankingCheck};
