//! Structured experiment runners, one per table/figure.

use hetero_apps::{blackscholes, corpus, hotspot, matrixmul, nbody, stream};
use hetero_platform::Platform;
use matchmaker::{classify, Analyzer, AppDescriptor, ExecutionConfig, SyncMode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One execution configuration's measurements for one application — the
/// content of one bar of Figures 5/7/9/11 plus the ratio of Figures 6/8/10.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfigRun {
    /// Configuration label ("Only-GPU", "SP-Single", ...).
    pub config: String,
    /// Simulated end-to-end time in milliseconds.
    pub time_ms: f64,
    /// Fraction of data items processed on the GPU (Figures 6/8/10).
    pub gpu_item_share: f64,
    /// Fraction of task instances placed on the GPU.
    pub gpu_task_share: f64,
    /// Per-kernel GPU item shares, in kernel order (Figure 10 reports
    /// per-kernel ratios for SP-Varied).
    pub per_kernel_gpu_share: Vec<f64>,
    /// Number of host↔device transfers.
    pub transfers: u64,
    /// Total bytes moved.
    pub transfer_bytes: u64,
    /// Total virtual time spent in transfers, ms.
    pub transfer_ms: f64,
    /// Dynamic scheduling decisions taken.
    pub sched_decisions: u64,
}

/// All configurations of one application variant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AppRun {
    /// Application name (e.g. "STREAM-Seq-w/o").
    pub app: String,
    /// Detected class.
    pub class: String,
    /// Sync mode used for the Table I row.
    pub with_sync: bool,
    /// Theoretical ranking (Table I), best first.
    pub ranking: Vec<String>,
    /// Per-configuration results: Only-GPU, Only-CPU, then the suitable
    /// strategies in Table I rank order.
    pub configs: Vec<ConfigRun>,
}

impl AppRun {
    /// Find a configuration's result by label.
    pub fn get(&self, config: &str) -> Option<&ConfigRun> {
        self.configs.iter().find(|c| c.config == config)
    }

    /// The best (fastest) strategy result, excluding the two baselines.
    pub fn best_strategy(&self) -> &ConfigRun {
        self.configs[2..]
            .iter()
            .min_by(|a, b| a.time_ms.partial_cmp(&b.time_ms).unwrap())
            .expect("at least one strategy")
    }
}

/// The eight application variants of the paper's evaluation, in figure
/// order: the six Table II applications, with STREAM evaluated both with
/// and without the artificial inter-kernel synchronisation.
pub fn paper_variants() -> Vec<AppDescriptor> {
    vec![
        matrixmul::paper_descriptor(),
        blackscholes::paper_descriptor(),
        nbody::paper_descriptor(),
        hotspot::paper_descriptor(),
        stream::paper_seq(false),
        stream::paper_seq(true),
        stream::paper_loop(false),
        stream::paper_loop(true),
    ]
}

/// Run one variant under every configuration of its Table I row (plus the
/// two baselines).
pub fn run_app(platform: &Platform, desc: &AppDescriptor) -> AppRun {
    let analyzer = Analyzer::new(platform);
    let analysis = analyzer.analyze(desc);
    let mut configs = Vec::new();
    for (config, report) in analyzer.compare_all(desc) {
        configs.push(ConfigRun {
            config: config.to_string(),
            time_ms: report.makespan.as_millis_f64(),
            gpu_item_share: report.gpu_item_share(),
            gpu_task_share: report.gpu_task_share(),
            per_kernel_gpu_share: (0..desc.kernels.len())
                .map(|k| report.kernel_gpu_share(hetero_runtime::KernelId(k)))
                .collect(),
            transfers: report.counters.transfers.count,
            transfer_bytes: report.counters.transfers.bytes,
            transfer_ms: report.counters.transfers.time.as_millis_f64(),
            sched_decisions: report.counters.sched_decisions,
        });
    }
    AppRun {
        app: desc.name.clone(),
        class: analysis.class.to_string(),
        with_sync: analysis.sync == SyncMode::WithSync,
        ranking: analysis.ranking.iter().map(|s| s.to_string()).collect(),
        configs,
    }
}

/// Run the full evaluation matrix (every figure's data in one pass).
pub fn run_all(platform: &Platform) -> Vec<AppRun> {
    paper_variants()
        .iter()
        .map(|d| run_app(platform, d))
        .collect()
}

/// One row of Figure 12.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Application variant.
    pub app: String,
    /// Best strategy name.
    pub best: String,
    /// Speedup of the best strategy vs Only-GPU.
    pub vs_only_gpu: f64,
    /// Speedup vs Only-CPU.
    pub vs_only_cpu: f64,
}

/// Figure 12: the speedup of the best partitioning strategy vs the two
/// baselines, per application, plus the averages the paper headlines
/// (3.0× / 5.3×).
pub fn fig12_speedups(runs: &[AppRun]) -> (Vec<SpeedupRow>, f64, f64) {
    let mut rows = Vec::new();
    for run in runs {
        let og = run.get("Only-GPU").expect("baseline").time_ms;
        let oc = run.get("Only-CPU").expect("baseline").time_ms;
        let best = run.best_strategy();
        rows.push(SpeedupRow {
            app: run.app.clone(),
            best: best.config.clone(),
            vs_only_gpu: og / best.time_ms,
            vs_only_cpu: oc / best.time_ms,
        });
    }
    let n = rows.len() as f64;
    let avg_og = rows.iter().map(|r| r.vs_only_gpu).sum::<f64>() / n;
    let avg_oc = rows.iter().map(|r| r.vs_only_cpu).sum::<f64>() / n;
    (rows, avg_og, avg_oc)
}

/// §III-B coverage study: classify the synthetic 86-application corpus and
/// return the per-class counts (all 86 must classify — the paper's claim).
pub fn coverage_study() -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for desc in corpus::corpus() {
        let class = classify(&desc);
        *counts.entry(class.to_string()).or_insert(0) += 1;
    }
    counts
}

/// One row of the model-accuracy study: the Glinda model's predicted
/// co-execution time vs the simulated makespan of the planned program.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Application variant.
    pub app: String,
    /// Strategy whose prediction is checked.
    pub strategy: String,
    /// The solver's predicted time, ms.
    pub predicted_ms: f64,
    /// The simulated makespan, ms.
    pub simulated_ms: f64,
}

impl AccuracyRow {
    /// Relative prediction error (signed; positive = under-prediction).
    pub fn error(&self) -> f64 {
        (self.simulated_ms - self.predicted_ms) / self.simulated_ms
    }
}

/// Model-accuracy study: how well Glinda's partitioning model predicts the
/// executed time of the plan it produced (Glinda's own evaluations report
/// this; it also quantifies what the model leaves out — scheduling epochs,
/// launch overheads, flush serialisation).
pub fn model_accuracy(platform: &Platform) -> Vec<AccuracyRow> {
    use matchmaker::{KernelSplit, Strategy};
    let analyzer = Analyzer::new(platform);
    let mut rows = Vec::new();
    // Single-kernel apps: SP-Single, prediction × iterations.
    for desc in [
        matrixmul::paper_descriptor(),
        blackscholes::paper_descriptor(),
        nbody::paper_descriptor(),
        hotspot::paper_descriptor(),
    ] {
        let plan = analyzer.plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
        let Some(KernelSplit::Single(glinda::HardwareConfig::Hybrid(sol))) =
            plan.kernel_configs[0].clone()
        else {
            continue;
        };
        let simulated = analyzer
            .simulate(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
            .makespan;
        rows.push(AccuracyRow {
            app: desc.name.clone(),
            strategy: "SP-Single".into(),
            predicted_ms: sol.predicted_time * 1e3 * desc.iterations() as f64,
            simulated_ms: simulated.as_millis_f64(),
        });
    }
    // STREAM: SP-Unified prediction covers the whole (iterated) sequence.
    for desc in [stream::paper_seq(false), stream::paper_loop(false)] {
        let planner = analyzer.planner();
        let split = planner.decide_unified(&desc);
        let KernelSplit::Single(glinda::HardwareConfig::Hybrid(sol)) = split else {
            continue;
        };
        let simulated = analyzer
            .simulate(&desc, ExecutionConfig::Strategy(Strategy::SpUnified))
            .makespan;
        rows.push(AccuracyRow {
            app: desc.name.clone(),
            strategy: "SP-Unified".into(),
            predicted_ms: sol.predicted_time * 1e3,
            simulated_ms: simulated.as_millis_f64(),
        });
    }
    rows
}

/// One cell of the strategy map.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MapCell {
    /// Relative-capability axis value (GPU compute-efficiency multiplier).
    pub capability: f64,
    /// Link bandwidth, GB/s.
    pub link_gbs: f64,
    /// The winning configuration's label.
    pub winner: String,
    /// The winning time, ms.
    pub time_ms: f64,
}

/// The strategy map: sweep the two Glinda metrics' drivers — relative
/// hardware capability (via the GPU's efficiency) and the compute-to-
/// transfer gap (via the link bandwidth) — over a synthetic MK-Seq
/// application, and record which configuration wins each cell. This is
/// the landscape behind Table I: static splits win the interior, the
/// single-device baselines win the extremes.
pub fn strategy_map(capabilities: &[f64], links_gbs: &[f64]) -> Vec<MapCell> {
    use hetero_platform::{LinkSpec, SimTime};
    let mut cells = Vec::new();
    for &cap in capabilities {
        for &gbs in links_gbs {
            let base = Platform::icpp15();
            let platform = Platform::builder()
                .cpu(base.cpu().spec.clone())
                .accelerator(
                    base.gpu().unwrap().spec.clone(),
                    LinkSpec::new(gbs, SimTime::from_micros(15)),
                )
                .sched_overhead(base.sched_overhead)
                .build();
            let mut desc = hetero_apps::synth::multi_kernel(
                "map-probe",
                1 << 21,
                2,
                512.0,
                matchmaker::ExecutionFlow::Sequence,
                false,
            );
            for k in &mut desc.kernels {
                k.profile.gpu_efficiency.compute = (0.35 * cap).min(1.0);
                k.profile.gpu_efficiency.bandwidth = (0.7 * cap).min(1.0);
            }
            let analyzer = Analyzer::new(&platform);
            let (winner, time) = analyzer
                .compare_all(&desc)
                .into_iter()
                .map(|(c, r)| (c.to_string(), r.makespan))
                .min_by(|a, b| a.1.cmp(&b.1))
                .expect("configurations ran");
            cells.push(MapCell {
                capability: cap,
                link_gbs: gbs,
                winner,
                time_ms: time.as_millis_f64(),
            });
        }
    }
    cells
}

/// §V task-size ablation: sweep the dynamic task granularity and report
/// DP-Perf's time for each, demonstrating the sensitivity that motivates
/// the paper's auto-tuning recommendation.
pub fn task_size_ablation(
    platform: &Platform,
    desc: &AppDescriptor,
    instance_counts: &[u64],
) -> Vec<(u64, f64)> {
    instance_counts
        .iter()
        .map(|&m| {
            let mut analyzer = Analyzer::new(platform);
            analyzer.planner_mut().dynamic_instances_per_kernel = m;
            let report = analyzer.simulate(
                desc,
                ExecutionConfig::Strategy(matchmaker::Strategy::DpPerf),
            );
            (m, report.makespan.as_millis_f64())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_list_matches_figures() {
        let names: Vec<String> = paper_variants().iter().map(|d| d.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "MatrixMul",
                "BlackScholes",
                "Nbody",
                "HotSpot",
                "STREAM-Seq-w/o",
                "STREAM-Seq-w",
                "STREAM-Loop-w/o",
                "STREAM-Loop-w",
            ]
        );
    }

    #[test]
    fn coverage_study_covers_86() {
        let counts = coverage_study();
        assert_eq!(counts.values().sum::<usize>(), 86);
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn run_app_produces_baselines_plus_ranking() {
        let platform = Platform::icpp15();
        let run = run_app(&platform, &stream::descriptor(1 << 20, None, true));
        assert_eq!(run.configs.len(), 2 + run.ranking.len());
        assert_eq!(run.configs[0].config, "Only-GPU");
        assert_eq!(run.configs[1].config, "Only-CPU");
        assert_eq!(run.class, "MK-Seq");
        assert!(run.with_sync);
        assert_eq!(run.ranking[0], "SP-Varied");
    }

    #[test]
    fn fig12_math() {
        let platform = Platform::icpp15();
        let runs = vec![run_app(&platform, &blackscholes::descriptor(1 << 22))];
        let (rows, avg_og, avg_oc) = fig12_speedups(&runs);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].vs_only_gpu - avg_og).abs() < 1e-12);
        assert!((rows[0].vs_only_cpu - avg_oc).abs() < 1e-12);
        assert!(avg_og > 0.0 && avg_oc > 0.0);
    }

    #[test]
    fn strategy_map_covers_grid_and_finds_hybrid_interior() {
        let caps = [0.25, 2.0];
        let links = [1.5, 48.0];
        let cells = strategy_map(&caps, &links);
        assert_eq!(cells.len(), 4);
        // Weak GPU + slow link: the hybrid static split wins.
        let weak = cells
            .iter()
            .find(|c| c.capability == 0.25 && c.link_gbs == 1.5)
            .unwrap();
        assert_eq!(weak.winner, "SP-Unified");
        // Strong GPU + fast link: the single GPU takes over.
        let strong = cells
            .iter()
            .find(|c| c.capability == 2.0 && c.link_gbs == 48.0)
            .unwrap();
        assert!(strong.winner == "Only-GPU" || strong.winner == "SP-Unified");
    }

    #[test]
    fn model_accuracy_predictions_are_tight() {
        let platform = Platform::icpp15();
        let rows = model_accuracy(&platform);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.error().abs() < 0.05,
                "{} {}: predicted {} vs simulated {}",
                r.app,
                r.strategy,
                r.predicted_ms,
                r.simulated_ms
            );
        }
    }

    #[test]
    fn task_size_ablation_varies_performance() {
        let platform = Platform::icpp15();
        let desc = stream::descriptor(1 << 22, None, false);
        let sweep = task_size_ablation(&platform, &desc, &[12, 48, 192]);
        assert_eq!(sweep.len(), 3);
        // Performance varies with task size (the paper's §V observation).
        let times: Vec<f64> = sweep.iter().map(|&(_, t)| t).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 1.01, "no sensitivity: {times:?}");
    }
}
