//! `matchmake` — the application analyzer as a command-line tool.
//!
//! Applications are described as JSON (`matchmaker::AppDescriptor`'s serde
//! form); the tool classifies them, ranks the suitable strategies, and —
//! on request — simulates every configuration on a chosen platform.
//!
//! ```text
//! matchmake template                    # print a JSON descriptor template
//! matchmake analyze  app.json           # class + Table I ranking + choice
//! matchmake compare  app.json           # simulate baselines + strategies
//! matchmake timeline app.json           # ASCII utilisation timeline of the best strategy
//! matchmake tune     app.json           # auto-tune the dynamic task size
//! matchmake platforms                   # list built-in platform presets
//! matchmake fuzz                        # random scenarios vs the invariant oracle bank
//! matchmake run      app.json           # journaled run of the selected strategy
//! matchmake resume   run.journal        # crash recovery: finish a killed journaled run
//! matchmake flame    app.json           # causal span profile: folded stacks on stdout
//! matchmake diff     a.json b.json      # per-series regression verdicts between two
//!                                       # metrics/report/bench exports
//! matchmake serve                       # planning service: framed requests on stdin,
//!                                       # one response per request on stdout
//! matchmake load                        # seeded load generator against the in-process
//!                                       # service; prints the deterministic summary
//!
//! options:
//!   --platform icpp15|icpp15-phi        # preset (default icpp15)
//!   --refined                           # enable MK-DAG chain refinement
//!   --width <n>                         # gantt width in buckets (timeline; default 72)
//!   --metrics <path>                    # write Prometheus metrics of each simulated
//!                                       # run (compare/timeline) to <path>
//!   --breakdown                         # print the per-device makespan blame
//!                                       # breakdown after compare/timeline
//!   --profile <path>                    # plan from recorded kernel rates; the file
//!                                       # is created (by probing) if missing
//!   --fault-trace <path>                # compare: simulate every configuration under
//!                                       # the FaultTrace JSON at <path> (replayed
//!                                       # deterministically unless recording)
//!   --fault-trace-out <path>            # compare: run the trace's schedule live
//!                                       # (correlated domains may fire) and write the
//!                                       # selected strategy's effective FaultTrace —
//!                                       # input events plus synthesized triggers — to
//!                                       # <path>; requires --fault-trace
//!   --replan                            # compare: enable degraded-mode plan repair
//!                                       # (survivor re-planning on device death and
//!                                       # quarantine); adds a replans column and exits
//!                                       # non-zero on a typed ReplanError; requires
//!                                       # --fault-trace
//!
//! run/resume options:
//!   --journal <path>                    # run: write the write-ahead journal here
//!                                       # (required); a killed run leaves the
//!                                       # committed prefix for `matchmake resume`
//!   --crash-after <n>                   # run: deterministic kill point — abort after
//!                                       # the n-th journal record commits (exit 3)
//!   --torn                              # run: leave a half-written line after the
//!                                       # kill point (resume must discard it)
//!   --kill-at <ms>                      # run: kill at simulated time <ms> instead of
//!                                       # a record count
//!   --fault-trace <path>                # run: execute under the trace's replay
//!                                       # schedule (recorded into the journal header)
//!   --metrics <path>                    # run/resume: write the run's metrics; a
//!                                       # resumed run's export is byte-identical to
//!                                       # the uninterrupted one
//!   --metrics-stream <path>             # run/resume: write one delta-encoded
//!                                       # EpochSnapshot JSON line per committed
//!                                       # taskwait barrier (plus a run-end line);
//!                                       # folding the deltas reproduces --metrics
//!                                       # byte-for-byte, crash+resume included
//!   --salvage                           # resume: recover the longest valid record
//!                                       # prefix of a mid-file-corrupted journal
//!                                       # (strict resume refuses it) and report the
//!                                       # cut line and reason on stderr
//!
//! load options:
//!   --requests <n>                      # requests to generate (default 1000)
//!   --seed <s>                          # load/chaos seed, decimal or 0x-hex
//!   --chaos                             # run under the canonical 10x burst chaos
//!                                       # schedule (slow-loris, malformed JSON,
//!                                       # oversized bodies, a stalled worker)
//!   --metrics <path>                    # write the service's hm_service_* registry
//!   --bench-out <path>                  # write latency quantiles + throughput as a
//!                                       # BENCH-file JSON (perf trajectory shape)
//!
//! flame options:
//!   --fault-trace <path>                # profile the run under the trace's replay
//!                                       # schedule instead of the fault-free run
//!   --chrome <path>                     # also write a Chrome trace with causal flow
//!                                       # arrows (failover/hedge/repartition/replan
//!                                       # markers -> the task slots they caused)
//!
//! diff options:
//!   --tolerance <pct>                   # relative tolerance before a moved series
//!                                       # counts as improved/regressed (default 0)
//!   --report-only                       # print the verdict table but always exit 0
//!
//! fuzz options:
//!   --iters <n>                         # scenarios to fuzz (default 100)
//!   --seed <s>                          # campaign base seed, decimal or 0x-hex
//!                                       # (default 0)
//!   --shrink                            # minimize each failure to a small reproducer
//!   --corpus <dir>                      # persist (shrunk) failures as JSON into <dir>
//!   --self-check                        # plant a deliberate invariant break and verify
//!                                       # the harness catches, shrinks and archives it
//! ```
//!
//! `fuzz` prints a deterministic campaign summary (no timestamps, ordered
//! maps only) — CI runs the same campaign twice and diffs the output — and
//! exits non-zero if any oracle was violated.

use hetero_platform::{FaultTrace, KillSchedule, Platform, RetryPolicy, SimTime};
use hetero_runtime::{
    AdaptConfig, HealthConfig, MetricsObserver, MetricsRegistry, MultiObserver, RunDiff,
    SnapshotObserver, SpanTree, TraceObserver, DEFAULT_GANTT_WIDTH,
};
use matchmaker::{
    encode_response, run_load, tune_task_size, Analyzer, AppDescriptor, Arrival, ChaosSchedule,
    ExecutionConfig, JournalError, JournalSink, LoadConfig, PlanService, ProfileStore,
    ReplanConfig, RunJournal, RunSpec, ServiceConfig, Strategy,
};
use std::env;
use std::fs;
use std::path::Path;
use std::process::{self, exit};

fn usage() -> ! {
    eprintln!(
        "usage: matchmake <template|analyze|compare|timeline|tune|platforms|fuzz|run|resume|\
         flame|diff|serve|load> [app.json|run.journal] [b.json] \
         [--platform icpp15|icpp15-phi] [--refined] [--width <n>] [--metrics <path>] \
         [--metrics-stream <path>] [--breakdown] [--profile <path>] [--fault-trace <path>] \
         [--fault-trace-out <path>] [--replan] [--iters <n>] [--seed <s>] [--shrink] \
         [--corpus <dir>] [--self-check] [--journal <path>] [--crash-after <n>] [--torn] \
         [--kill-at <ms>] [--chrome <path>] [--tolerance <pct>] [--report-only] [--salvage] \
         [--requests <n>] [--chaos] [--bench-out <path>]"
    );
    exit(2);
}

/// Parse a campaign seed: decimal, or hex with an `0x` prefix.
fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn platform_by_name(name: &str) -> Platform {
    match name {
        "icpp15" => Platform::icpp15(),
        "icpp15-phi" => Platform::icpp15_with_phi(),
        other => {
            eprintln!("unknown platform '{other}' (try: icpp15, icpp15-phi)");
            exit(2);
        }
    }
}

/// Install kernel-rate profiles into the analyzer's planner: load them from
/// `path` when the file exists, otherwise probe the descriptor's kernels and
/// persist the result so the next invocation plans without probing.
fn install_profiles(analyzer: &mut Analyzer<'_>, desc: &AppDescriptor, path: &str) {
    let path = Path::new(path);
    let store = if path.exists() {
        ProfileStore::load(path).unwrap_or_else(|e| {
            eprintln!("cannot load profile {}: {e}", path.display());
            exit(1);
        })
    } else {
        let store = analyzer.planner().record_profiles(desc);
        if let Err(e) = store.save(path) {
            eprintln!("cannot write profile {}: {e}", path.display());
            exit(1);
        }
        eprintln!(
            "profile: probed {} kernel(s) -> {}",
            store.len(),
            path.display()
        );
        store
    };
    analyzer.planner_mut().profiles = Some(store);
}

/// Write a registry to `path`: Prometheus text exposition by default, JSON
/// when the path ends in `.json`.
fn write_metrics(path: &str, registry: &MetricsRegistry) {
    let text = if path.ends_with(".json") {
        registry.to_json()
    } else {
        registry.to_prometheus()
    };
    if let Err(e) = fs::write(path, text) {
        eprintln!("cannot write metrics {path}: {e}");
        exit(1);
    }
}

/// One-line run summary, printed identically by `run` and `resume` so CI
/// can diff a crash–resume pair against the uninterrupted run verbatim.
fn report_line(config: ExecutionConfig, report: &hetero_runtime::RunReport) -> String {
    format!(
        "report: {} {} {:.1}% GPU {:.3} GB transferred {} fault(s)",
        config,
        report.makespan,
        100.0 * report.gpu_item_share(),
        report.counters.transfers.bytes as f64 / 1e9,
        report.faults.task_faults
    )
}

fn load_fault_trace(path: &str) -> FaultTrace {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read fault trace {path}: {e}");
        exit(1);
    });
    FaultTrace::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid fault trace: {e}");
        exit(1);
    })
}

fn load_descriptor(path: &str) -> AppDescriptor {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let desc: AppDescriptor = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid descriptor JSON: {e}");
        exit(1);
    });
    if let Err(e) = desc.validate() {
        eprintln!("{path}: invalid descriptor: {e}");
        exit(1);
    }
    desc
}

fn main() {
    // Restore the default SIGPIPE disposition so `repro ... | head` ends
    // quietly instead of panicking on a broken pipe.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }

    let args: Vec<String> = env::args().skip(1).collect();
    let mut command = None;
    let mut file = None;
    let mut platform_name = "icpp15".to_string();
    let mut refined = false;
    let mut width = DEFAULT_GANTT_WIDTH;
    let mut metrics_path: Option<String> = None;
    let mut breakdown = false;
    let mut profile_path: Option<String> = None;
    let mut fault_trace_path: Option<String> = None;
    let mut fault_trace_out: Option<String> = None;
    let mut replan = false;
    let mut iters: u64 = 100;
    let mut seed: u64 = 0;
    let mut shrink = false;
    let mut corpus_dir: Option<String> = None;
    let mut self_check = false;
    let mut journal_path: Option<String> = None;
    let mut crash_after: Option<u64> = None;
    let mut torn = false;
    let mut kill_at_ms: Option<f64> = None;
    let mut metrics_stream_path: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut tolerance: f64 = 0.0;
    let mut report_only = false;
    let mut salvage = false;
    let mut requests: u64 = 1000;
    let mut chaos = false;
    let mut bench_out: Option<String> = None;
    let mut file2 = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| parse_seed(v))
                    .unwrap_or_else(|| usage());
            }
            "--shrink" => shrink = true,
            "--corpus" => {
                corpus_dir = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--self-check" => self_check = true,
            "--platform" => {
                platform_name = it.next().cloned().unwrap_or_else(|| usage());
            }
            "--refined" => refined = true,
            "--width" => {
                width = it
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--metrics" => {
                metrics_path = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--breakdown" => breakdown = true,
            "--profile" => {
                profile_path = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--fault-trace" => {
                fault_trace_path = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--fault-trace-out" => {
                fault_trace_out = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--replan" => replan = true,
            "--journal" => {
                journal_path = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--crash-after" => {
                crash_after = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--torn" => torn = true,
            "--kill-at" => {
                kill_at_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--metrics-stream" => {
                metrics_stream_path = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--chrome" => {
                chrome_out = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--report-only" => report_only = true,
            "--salvage" => salvage = true,
            "--requests" => {
                requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--chaos" => chaos = true,
            "--bench-out" => {
                bench_out = Some(it.next().cloned().unwrap_or_else(|| usage()));
            }
            _ if command.is_none() => command = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            _ if file2.is_none() => file2 = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };

    match command.as_str() {
        "platforms" => {
            for (name, p) in [
                ("icpp15", Platform::icpp15()),
                ("icpp15-phi", Platform::icpp15_with_phi()),
            ] {
                println!("{name}:");
                for d in &p.devices {
                    println!(
                        "  {:<26} {} slots, {:.0} GFLOPS SP, {:.0} GB/s",
                        d.spec.name,
                        d.spec.kind.slots(),
                        d.spec.peak_gflops_sp,
                        d.spec.mem_bandwidth_gbs
                    );
                }
            }
        }
        "template" => {
            let template = hetero_apps::synth::single_kernel(
                "my-app",
                1 << 20,
                64.0,
                matchmaker::ExecutionFlow::Sequence,
                false,
            );
            println!("{}", serde_json::to_string_pretty(&template).unwrap());
        }
        "analyze" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let analyzer = Analyzer::new(&platform);
            let analysis = if refined {
                analyzer.analyze_refined(&desc)
            } else {
                analyzer.analyze(&desc)
            };
            println!("application : {}", analysis.app);
            println!(
                "class       : {} (class {})",
                analysis.class,
                analysis.class.number()
            );
            println!(
                "sync        : {}",
                if analysis.sync == matchmaker::SyncMode::WithSync {
                    "inter-kernel synchronisation required"
                } else {
                    "no inter-kernel synchronisation"
                }
            );
            println!(
                "ranking     : {}",
                analysis
                    .ranking
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("{}. {s}", i + 1))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            println!("selected    : {}", analysis.best);
        }
        "compare" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let mut analyzer = Analyzer::new(&platform);
            if let Some(p) = &profile_path {
                install_profiles(&mut analyzer, &desc, p);
            }
            if fault_trace_out.is_some() && fault_trace_path.is_none() {
                eprintln!("--fault-trace-out requires --fault-trace (the schedule to run)");
                exit(2);
            }
            if replan && fault_trace_path.is_none() {
                eprintln!("--replan requires --fault-trace (repair reacts to its faults)");
                exit(2);
            }
            // With `--fault-trace` alone the trace is *replayed*: synthesized
            // events are baked in as plain windows and conditional triggering
            // is disabled, so repeated invocations are byte-identical. With
            // `--fault-trace-out` the input schedule runs live (correlated
            // domains may fire) and the selected strategy's effective trace
            // is written out for later replay.
            let fault_schedule = fault_trace_path.as_deref().map(|p| {
                let trace = load_fault_trace(p);
                let recording = fault_trace_out.is_some();
                eprintln!(
                    "fault trace: {p} ({} mode)",
                    if recording { "record" } else { "replay" }
                );
                if recording {
                    trace.schedule
                } else {
                    trace.replay_schedule()
                }
            });
            // Reject a schedule that names devices the chosen platform does
            // not have with a typed error instead of a mid-simulation panic.
            if let Some(schedule) = &fault_schedule {
                if let Err(e) = schedule.validate_for(&platform) {
                    eprintln!("fault trace: schedule invalid for platform '{platform_name}': {e}");
                    exit(1);
                }
            }
            let analysis = analyzer.analyze(&desc);
            let names: Vec<&str> = platform
                .devices
                .iter()
                .map(|d| d.spec.name.as_str())
                .collect();
            let mut registry = MetricsRegistry::new();
            let mut blames: Vec<(String, String)> = Vec::new();
            let mut best_synth = Vec::new();
            if replan {
                println!(
                    "{:<14} {:>12} {:>11} {:>12} {:>10} {:>8}",
                    "config", "time", "GPU share", "transferred", "decisions", "replans"
                );
            } else {
                println!(
                    "{:<14} {:>12} {:>11} {:>12} {:>10}",
                    "config", "time", "GPU share", "transferred", "decisions"
                );
            }
            for config in [ExecutionConfig::OnlyGpu, ExecutionConfig::OnlyCpu]
                .into_iter()
                .chain(
                    analysis
                        .ranking
                        .iter()
                        .map(|&s| ExecutionConfig::Strategy(s)),
                )
            {
                let label = config.to_string();
                let report = if let (true, Some(schedule)) = (replan, &fault_schedule) {
                    // Degraded-mode plan repair: a typed `ReplanError` from
                    // any configuration aborts the comparison non-zero —
                    // silent fallback would misrepresent the repaired times.
                    let result = if metrics_path.is_some() {
                        let mut mobs = MetricsObserver::new(&platform, &label);
                        let result = analyzer.simulate_repairing_observed(
                            &desc,
                            config,
                            schedule,
                            RetryPolicy::default(),
                            &HealthConfig::disabled(),
                            &AdaptConfig::disabled(),
                            &ReplanConfig::enabled_default(),
                            &mut mobs,
                        );
                        registry.merge(mobs.registry());
                        result
                    } else {
                        analyzer.simulate_repairing(
                            &desc,
                            config,
                            schedule,
                            RetryPolicy::default(),
                            &HealthConfig::disabled(),
                            &AdaptConfig::disabled(),
                            &ReplanConfig::enabled_default(),
                        )
                    };
                    result.unwrap_or_else(|e| {
                        eprintln!("replan: {label}: {e}");
                        exit(1);
                    })
                } else if let Some(schedule) = &fault_schedule {
                    if metrics_path.is_some() {
                        let mut mobs = MetricsObserver::new(&platform, &label);
                        let report = analyzer.simulate_resilient_observed(
                            &desc,
                            config,
                            schedule,
                            RetryPolicy::default(),
                            &HealthConfig::disabled(),
                            &mut mobs,
                        );
                        registry.merge(mobs.registry());
                        report
                    } else {
                        analyzer.simulate_faulty(&desc, config, schedule, RetryPolicy::default())
                    }
                } else if metrics_path.is_some() {
                    let mut mobs = MetricsObserver::new(&platform, &label);
                    let report = analyzer.simulate_observed(&desc, config, &mut mobs);
                    registry.merge(mobs.registry());
                    report
                } else {
                    analyzer.simulate(&desc, config)
                };
                if config == ExecutionConfig::Strategy(analysis.best) {
                    best_synth = report.synthesized_faults.clone();
                }
                if replan {
                    println!(
                        "{:<14} {:>12} {:>10.1}% {:>9.2} GB {:>10} {:>8}",
                        label,
                        report.makespan.to_string(),
                        100.0 * report.gpu_item_share(),
                        report.counters.transfers.bytes as f64 / 1e9,
                        report.counters.sched_decisions,
                        report.adapt.replans + report.adapt.readmissions
                    );
                } else {
                    println!(
                        "{:<14} {:>12} {:>10.1}% {:>9.2} GB {:>10}",
                        label,
                        report.makespan.to_string(),
                        100.0 * report.gpu_item_share(),
                        report.counters.transfers.bytes as f64 / 1e9,
                        report.counters.sched_decisions
                    );
                }
                if breakdown {
                    blames.push((label, report.breakdown.render(&names)));
                }
            }
            for (label, table) in blames {
                println!();
                println!("{label} blame:");
                print!("{table}");
            }
            if let Some(p) = &metrics_path {
                write_metrics(p, &registry);
            }
            if let (Some(out), Some(schedule)) = (&fault_trace_out, &fault_schedule) {
                let trace = FaultTrace::new(schedule.clone(), best_synth);
                if let Err(e) = fs::write(out, trace.to_json()) {
                    eprintln!("cannot write fault trace {out}: {e}");
                    exit(1);
                }
                eprintln!(
                    "fault trace: recorded {} synthesized event(s) -> {out}",
                    trace.synthesized.len()
                );
            }
        }
        "timeline" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let mut analyzer = Analyzer::new(&platform);
            if let Some(p) = &profile_path {
                install_profiles(&mut analyzer, &desc, p);
            }
            let analysis = analyzer.analyze(&desc);
            let mut tobs = TraceObserver::new();
            let mut mobs = MetricsObserver::new(&platform, &analysis.best.to_string());
            let report = {
                let mut multi = MultiObserver::new().with(&mut tobs).with(&mut mobs);
                analyzer.simulate_observed(
                    &desc,
                    ExecutionConfig::Strategy(analysis.best),
                    &mut multi,
                )
            };
            println!(
                "{} under {} — {}",
                analysis.app, analysis.best, report.makespan
            );
            print!("{}", tobs.trace().gantt(&platform, width));
            if breakdown {
                let names: Vec<&str> = platform
                    .devices
                    .iter()
                    .map(|d| d.spec.name.as_str())
                    .collect();
                println!();
                println!("{} blame:", analysis.best);
                print!("{}", report.breakdown.render(&names));
            }
            if let Some(p) = &metrics_path {
                write_metrics(p, mobs.registry());
            }
        }
        "tune" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let mut analyzer = Analyzer::new(&platform);
            if let Some(p) = &profile_path {
                install_profiles(&mut analyzer, &desc, p);
            }
            let result = tune_task_size(&mut analyzer, &desc, Strategy::DpPerf, None);
            println!("{:<10} {:>12}", "m", "DP-Perf time");
            for (m, t) in &result.sweep {
                let mark = if *m == result.best_m { "  <- best" } else { "" };
                println!("{:<10} {:>12}{mark}", m, t.to_string());
            }
            println!(
                "sensitivity: worst/best = {:.2}x (the paper's §V observation)",
                result.sensitivity()
            );
        }
        "fuzz" => {
            use matchmaker::{fuzz_campaign, FuzzConfig, InjectedBreak, OracleKind};
            use std::path::PathBuf;
            if self_check {
                // Plant a deliberate invariant break (drop the largest blame
                // component) and require the harness to catch it, shrink it
                // to a small reproducer, and archive it — the end-to-end
                // proof that the fuzzer would notice a real executor bug.
                let dir = corpus_dir.clone().map(PathBuf::from).unwrap_or_else(|| {
                    env::temp_dir().join(format!("matchmake-fuzz-self-check-{}", process::id()))
                });
                let cfg = FuzzConfig {
                    iters: iters.min(10),
                    base_seed: seed,
                    shrink: true,
                    corpus: Some(dir.clone()),
                    inject: InjectedBreak {
                        skip_blame_component: true,
                        ..InjectedBreak::NONE
                    },
                    max_failures: 1,
                };
                let report = fuzz_campaign(&cfg);
                print!("{}", report.summary());
                let Some(f) = report.failures.first() else {
                    eprintln!("self-check FAILED: planted blame break was not caught");
                    exit(1);
                };
                let ok = f.oracle == OracleKind::BlameIdentity
                    && f.kernels <= 5
                    && f.tasks <= 5
                    && f.devices <= 2
                    && f.corpus_file
                        .as_ref()
                        .is_some_and(|name| dir.join(name).is_file());
                if !ok {
                    eprintln!(
                        "self-check FAILED: expected a shrunk (<=5 tasks, <=2 devices) \
                         blame-identity reproducer in {}, got {f:?}",
                        dir.display()
                    );
                    exit(1);
                }
                println!(
                    "self-check: planted break caught, shrunk to {} task(s) / {} device(s), \
                     archived as {}",
                    f.tasks,
                    f.devices,
                    dir.join(f.corpus_file.as_deref().unwrap()).display()
                );
                if corpus_dir.is_none() {
                    let _ = fs::remove_dir_all(&dir);
                }
                return;
            }
            let cfg = FuzzConfig {
                iters,
                base_seed: seed,
                shrink,
                corpus: corpus_dir.map(PathBuf::from),
                inject: InjectedBreak::NONE,
                max_failures: 5,
            };
            let report = fuzz_campaign(&cfg);
            print!("{}", report.summary());
            if !report.failures.is_empty() {
                exit(1);
            }
        }
        "run" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let mut analyzer = Analyzer::new(&platform);
            if let Some(p) = &profile_path {
                install_profiles(&mut analyzer, &desc, p);
            }
            let Some(journal_path) = &journal_path else {
                eprintln!("run requires --journal <path> (where to write the run journal)");
                exit(2);
            };
            let analysis = analyzer.analyze(&desc);
            let config = ExecutionConfig::Strategy(analysis.best);
            let spec = match fault_trace_path.as_deref() {
                Some(p) => RunSpec::faulty(load_fault_trace(p).replay_schedule()),
                None => RunSpec::plain(),
            };
            let mut kill = match (crash_after, kill_at_ms) {
                (Some(_), Some(_)) => {
                    eprintln!("--crash-after and --kill-at are mutually exclusive");
                    exit(2);
                }
                (Some(n), None) => Some(KillSchedule::after_records(n)),
                (None, Some(ms)) => Some(KillSchedule::at_time(SimTime::from_secs_f64(ms / 1e3))),
                (None, None) => None,
            };
            if torn {
                match kill.take() {
                    Some(k) => kill = Some(k.torn()),
                    None => {
                        eprintln!("--torn requires --crash-after or --kill-at");
                        exit(2);
                    }
                }
            }
            let mut sink = match kill {
                Some(k) => JournalSink::record_with_kill(k),
                None => JournalSink::record(),
            };
            let result = if metrics_path.is_some() || metrics_stream_path.is_some() {
                // The SnapshotObserver wraps the plain MetricsObserver, so
                // `--metrics` output stays byte-identical with or without
                // `--metrics-stream`.
                let mut snap = SnapshotObserver::new(&platform, "journaled");
                let r = analyzer
                    .simulate_journaled_observed(&desc, config, &spec, &mut sink, &mut snap);
                if r.is_ok() {
                    if let Some(mp) = &metrics_path {
                        write_metrics(mp, snap.registry());
                    }
                    if let Some(sp) = &metrics_stream_path {
                        if let Err(e) = fs::write(sp, snap.stream()) {
                            eprintln!("cannot write metrics stream {sp}: {e}");
                            exit(1);
                        }
                    }
                }
                r
            } else {
                analyzer.simulate_journaled(&desc, config, &spec, &mut sink)
            };
            // The journal is written either way: a killed run leaves the
            // committed prefix for `matchmake resume` to finish.
            if let Err(e) = fs::write(journal_path, sink.text()) {
                eprintln!("cannot write journal {journal_path}: {e}");
                exit(1);
            }
            match result {
                Ok(report) => {
                    eprintln!("journal: {} record(s) -> {journal_path}", sink.records());
                    println!("{}", report_line(config, &report));
                }
                Err(e @ JournalError::Killed { .. }) => {
                    eprintln!("run killed ({e}); partial journal -> {journal_path}");
                    exit(3);
                }
                Err(e) => {
                    eprintln!("run failed: {e}");
                    exit(1);
                }
            }
        }
        "flame" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let mut analyzer = Analyzer::new(&platform);
            if let Some(p) = &profile_path {
                install_profiles(&mut analyzer, &desc, p);
            }
            let analysis = analyzer.analyze(&desc);
            let config = ExecutionConfig::Strategy(analysis.best);
            let mut tobs = TraceObserver::new();
            let report = match fault_trace_path.as_deref() {
                Some(p) => {
                    let spec = RunSpec::faulty(load_fault_trace(p).replay_schedule());
                    let mut sink = JournalSink::record();
                    analyzer
                        .simulate_journaled_observed(&desc, config, &spec, &mut sink, &mut tobs)
                        .unwrap_or_else(|e| {
                            eprintln!("flame run failed: {e}");
                            exit(1);
                        })
                }
                None => analyzer.simulate_observed(&desc, config, &mut tobs),
            };
            let tree = SpanTree::from_trace(tobs.trace(), &platform);
            if let Some(cp) = &chrome_out {
                let json = SpanTree::to_chrome_json_with_flows(tobs.trace(), &platform);
                if let Err(e) = fs::write(cp, json) {
                    eprintln!("cannot write chrome trace {cp}: {e}");
                    exit(1);
                }
                eprintln!("chrome trace with causal flow arrows -> {cp}");
            }
            eprintln!(
                "{} under {} — {}; span tiling per device (task/dead/idle slot-time):",
                analysis.app, analysis.best, report.makespan
            );
            for (d, s) in tree.device_span_seconds().iter().enumerate() {
                eprintln!(
                    "  {:<26} task {:.3}s  dead {:.3}s  idle {:.3}s",
                    platform.devices[d].spec.name,
                    s.task.as_secs_f64(),
                    s.dead.as_secs_f64(),
                    s.idle.as_secs_f64()
                );
            }
            // Folded stacks on stdout: pipe into speedscope / flamegraph.pl.
            print!("{}", tree.to_folded());
        }
        "diff" => {
            let a_path = file.as_deref().unwrap_or_else(|| usage());
            let b_path = file2.as_deref().unwrap_or_else(|| usage());
            let read = |p: &str| {
                fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("cannot read {p}: {e}");
                    exit(1);
                })
            };
            let diff =
                RunDiff::between(&read(a_path), &read(b_path), tolerance).unwrap_or_else(|e| {
                    eprintln!("diff failed: {e}");
                    exit(1);
                });
            print!("{}", diff.render());
            if diff.has_regressions() {
                if report_only {
                    eprintln!(
                        "regressions found ({a_path} -> {b_path}); --report-only, not failing"
                    );
                } else {
                    exit(1);
                }
            }
        }
        "resume" => {
            let path = file.as_deref().unwrap_or_else(|| usage());
            let platform = platform_by_name(&platform_name);
            let analyzer = Analyzer::new(&platform);
            let text = fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read journal {path}: {e}");
                exit(1);
            });
            // The header names the config; surfacing it keeps the report
            // line identical to the original `matchmake run` output. In
            // salvage mode the strict loader may refuse the journal the
            // salvaged resume recovers, so peek through the salvager.
            let config = if salvage {
                RunJournal::load_salvaged(&text).ok().map(|(j, _)| j)
            } else {
                RunJournal::load(&text).ok()
            }
            .and_then(|j| {
                let stored = j.header.inputs.get("config")?.clone();
                serde_json::from_str::<ExecutionConfig>(&stored).ok()
            });
            let resume_with = |obs: &mut dyn hetero_runtime::Observer| {
                if salvage {
                    analyzer.resume_salvaged(&text, obs)
                } else {
                    analyzer
                        .resume_observed(&text, obs)
                        .map(|(r, t)| (r, t, None))
                }
            };
            let result = if metrics_path.is_some() || metrics_stream_path.is_some() {
                // Resume redo-replays from t = 0, so the regenerated stream
                // is byte-identical to the uninterrupted run's.
                let mut snap = SnapshotObserver::new(&platform, "journaled");
                let r = resume_with(&mut snap);
                if r.is_ok() {
                    if let Some(mp) = &metrics_path {
                        write_metrics(mp, snap.registry());
                    }
                    if let Some(sp) = &metrics_stream_path {
                        if let Err(e) = fs::write(sp, snap.stream()) {
                            eprintln!("cannot write metrics stream {sp}: {e}");
                            exit(1);
                        }
                    }
                }
                r
            } else {
                resume_with(&mut hetero_runtime::NullObserver)
            };
            match result {
                Ok((report, full_text, salvaged)) => {
                    if let Some(s) = &salvaged {
                        eprintln!("resume: {s}");
                    }
                    if let Err(e) = fs::write(path, &full_text) {
                        eprintln!("cannot write completed journal {path}: {e}");
                        exit(1);
                    }
                    eprintln!("resume: completed journal regenerated -> {path}");
                    match config {
                        Some(config) => println!("{}", report_line(config, &report)),
                        None => {
                            println!("report: {} {}", report.makespan, report.faults.task_faults)
                        }
                    }
                }
                Err(e) => {
                    eprintln!("resume failed: {path}: {e}");
                    exit(1);
                }
            }
        }
        "serve" => {
            // One-shot in-process service: read HTTP/1.1-framed requests
            // from stdin to EOF, answer each on stdout. Arrivals are
            // spaced one virtual microsecond apart, so the whole exchange
            // is a pure function of the input bytes.
            let platform = platform_by_name(&platform_name);
            let mut input = Vec::new();
            use std::io::Read as _;
            if let Err(e) = std::io::stdin().read_to_end(&mut input) {
                eprintln!("cannot read stdin: {e}");
                exit(1);
            }
            let arrivals: Vec<Arrival> = split_frames(&input)
                .into_iter()
                .enumerate()
                .map(|(i, bytes)| Arrival {
                    at: SimTime::from_micros(i as u64 + 1),
                    client: "stdin".into(),
                    bytes,
                })
                .collect();
            let mut service = PlanService::new(
                &platform,
                ServiceConfig::default(),
                ChaosSchedule::calm(seed),
            );
            for outcome in service.run(&arrivals) {
                println!("{}", encode_response(&outcome.result));
            }
            if let Some(mp) = &metrics_path {
                write_metrics(mp, service.registry());
            }
        }
        "load" => {
            let platform = platform_by_name(&platform_name);
            let load_cfg = LoadConfig {
                requests,
                seed,
                ..LoadConfig::default()
            };
            // The chaos windows cover the healthy-gap span of the load; the
            // burst compresses arrivals inside the middle half of it.
            let span = SimTime::from_micros(requests.saturating_mul(load_cfg.mean_gap_us));
            let schedule = if chaos {
                ChaosSchedule::burst(seed, 10, span)
            } else {
                ChaosSchedule::calm(seed)
            };
            let out = run_load(&platform, &ServiceConfig::default(), &load_cfg, &schedule);
            print!("{}", out.summary);
            if let Some(mp) = &metrics_path {
                write_metrics(mp, &out.registry);
            }
            if let Some(bp) = &bench_out {
                if let Err(e) = fs::write(bp, load_bench_json(&out)) {
                    eprintln!("cannot write bench file {bp}: {e}");
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}

/// Split a raw byte stream into HTTP/1.1 request frames: each frame is a
/// header block (terminated by `\r\n\r\n`) plus `content-length` body
/// bytes. A stream whose tail has no terminator or no parseable length is
/// passed through as one final frame — the codec answers it with a typed
/// `ServiceError` rather than this splitter guessing.
fn split_frames(mut buf: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while !buf.is_empty() {
        let Some(he) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
            frames.push(buf.to_vec());
            break;
        };
        let len = std::str::from_utf8(&buf[..he]).ok().and_then(|head| {
            head.lines().find_map(|l| {
                let (k, v) = l.split_once(':')?;
                if k.trim().eq_ignore_ascii_case("content-length") {
                    v.trim().parse::<usize>().ok()
                } else {
                    None
                }
            })
        });
        let Some(len) = len else {
            frames.push(buf.to_vec());
            break;
        };
        let end = (he + 4).saturating_add(len).min(buf.len());
        frames.push(buf[..end].to_vec());
        buf = &buf[end..];
    }
    frames
}

/// Render a `matchmake load` outcome in the `BENCH_*.json` trajectory
/// shape: virtual-latency quantiles plus served/shed counts.
fn load_bench_json(out: &matchmaker::LoadOutcome) -> String {
    let served = out.outcomes.iter().filter(|o| o.result.is_ok()).count() as u64;
    let shed = out.outcomes.len() as u64 - served;
    let q = |name: &str, seconds: f64, units: u64, unit: &str| {
        format!(
            "    {{\"name\": \"{name}\", \"mean_ns\": {:.1}, \"units\": {units}, \
             \"unit\": \"{unit}\"}}",
            seconds * 1e9
        )
    };
    let quantile = |p: f64| {
        let mut h = hetero_runtime::LogHistogram::default();
        for o in &out.outcomes {
            h.observe(o.done.saturating_sub(o.arrival));
        }
        h.quantile(p)
    };
    let results = [
        q("latency_p50", quantile(0.50), served, "request"),
        q("latency_p95", quantile(0.95), served, "request"),
        q("latency_p99", quantile(0.99), served, "request"),
        q("shed", shed as f64 * 1e-9, shed.max(1), "request"),
    ];
    format!(
        "{{\n  \"pr\": 10,\n  \"bench\": \"service_load\",\n  \"samples\": 1,\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n")
    )
}
