//! `matchmake` — the application analyzer as a command-line tool.
//!
//! Applications are described as JSON (`matchmaker::AppDescriptor`'s serde
//! form); the tool classifies them, ranks the suitable strategies, and —
//! on request — simulates every configuration on a chosen platform.
//!
//! ```text
//! matchmake template                    # print a JSON descriptor template
//! matchmake analyze  app.json           # class + Table I ranking + choice
//! matchmake compare  app.json           # simulate baselines + strategies
//! matchmake timeline app.json           # ASCII utilisation timeline of the best strategy
//! matchmake tune     app.json           # auto-tune the dynamic task size
//! matchmake platforms                   # list built-in platform presets
//!
//! options:
//!   --platform icpp15|icpp15-phi        # preset (default icpp15)
//!   --refined                           # enable MK-DAG chain refinement
//! ```

use hetero_platform::Platform;
use matchmaker::{tune_task_size, Analyzer, AppDescriptor, ExecutionConfig, Strategy};
use std::env;
use std::fs;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: matchmake <template|analyze|compare|timeline|tune|platforms> [app.json] \
         [--platform icpp15|icpp15-phi] [--refined]"
    );
    exit(2);
}

fn platform_by_name(name: &str) -> Platform {
    match name {
        "icpp15" => Platform::icpp15(),
        "icpp15-phi" => Platform::icpp15_with_phi(),
        other => {
            eprintln!("unknown platform '{other}' (try: icpp15, icpp15-phi)");
            exit(2);
        }
    }
}

fn load_descriptor(path: &str) -> AppDescriptor {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    let desc: AppDescriptor = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path}: invalid descriptor JSON: {e}");
        exit(1);
    });
    if let Err(e) = desc.validate() {
        eprintln!("{path}: invalid descriptor: {e}");
        exit(1);
    }
    desc
}

fn main() {
    // Restore the default SIGPIPE disposition so `repro ... | head` ends
    // quietly instead of panicking on a broken pipe.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }

    let args: Vec<String> = env::args().skip(1).collect();
    let mut command = None;
    let mut file = None;
    let mut platform_name = "icpp15".to_string();
    let mut refined = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--platform" => {
                platform_name = it.next().cloned().unwrap_or_else(|| usage());
            }
            "--refined" => refined = true,
            _ if command.is_none() => command = Some(a.clone()),
            _ if file.is_none() => file = Some(a.clone()),
            _ => usage(),
        }
    }
    let Some(command) = command else { usage() };

    match command.as_str() {
        "platforms" => {
            for (name, p) in [
                ("icpp15", Platform::icpp15()),
                ("icpp15-phi", Platform::icpp15_with_phi()),
            ] {
                println!("{name}:");
                for d in &p.devices {
                    println!(
                        "  {:<26} {} slots, {:.0} GFLOPS SP, {:.0} GB/s",
                        d.spec.name,
                        d.spec.kind.slots(),
                        d.spec.peak_gflops_sp,
                        d.spec.mem_bandwidth_gbs
                    );
                }
            }
        }
        "template" => {
            let template = hetero_apps::synth::single_kernel(
                "my-app",
                1 << 20,
                64.0,
                matchmaker::ExecutionFlow::Sequence,
                false,
            );
            println!("{}", serde_json::to_string_pretty(&template).unwrap());
        }
        "analyze" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let analyzer = Analyzer::new(&platform);
            let analysis = if refined {
                analyzer.analyze_refined(&desc)
            } else {
                analyzer.analyze(&desc)
            };
            println!("application : {}", analysis.app);
            println!(
                "class       : {} (class {})",
                analysis.class,
                analysis.class.number()
            );
            println!(
                "sync        : {}",
                if analysis.sync == matchmaker::SyncMode::WithSync {
                    "inter-kernel synchronisation required"
                } else {
                    "no inter-kernel synchronisation"
                }
            );
            println!(
                "ranking     : {}",
                analysis
                    .ranking
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("{}. {s}", i + 1))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            println!("selected    : {}", analysis.best);
        }
        "compare" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let analyzer = Analyzer::new(&platform);
            println!(
                "{:<14} {:>12} {:>11} {:>12} {:>10}",
                "config", "time", "GPU share", "transferred", "decisions"
            );
            for (config, report) in analyzer.compare_all(&desc) {
                println!(
                    "{:<14} {:>12} {:>10.1}% {:>9.2} GB {:>10}",
                    config.to_string(),
                    report.makespan.to_string(),
                    100.0 * report.gpu_item_share(),
                    report.counters.transfers.bytes as f64 / 1e9,
                    report.counters.sched_decisions
                );
            }
        }
        "timeline" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let analyzer = Analyzer::new(&platform);
            let analysis = analyzer.analyze(&desc);
            let plan = analyzer.plan(&desc, ExecutionConfig::Strategy(analysis.best));
            let (report, trace) = match analysis.best {
                Strategy::DpDep => {
                    let mut s = hetero_runtime::DepScheduler::new(&platform);
                    hetero_runtime::simulate_traced(&plan.program, &platform, &mut s)
                }
                Strategy::DpPerf => {
                    let mut warm = hetero_runtime::PerfScheduler::new(&platform);
                    let _ = hetero_runtime::simulate(&plan.program, &platform, &mut warm);
                    let mut seeded =
                        hetero_runtime::PerfScheduler::seeded(&platform, warm.rates().clone());
                    hetero_runtime::simulate_traced(&plan.program, &platform, &mut seeded)
                }
                _ => hetero_runtime::simulate_traced(
                    &plan.program,
                    &platform,
                    &mut hetero_runtime::PinnedScheduler,
                ),
            };
            println!(
                "{} under {} — {}",
                analysis.app, analysis.best, report.makespan
            );
            print!("{}", trace.gantt(&platform, 72));
        }
        "tune" => {
            let desc = load_descriptor(file.as_deref().unwrap_or_else(|| usage()));
            let platform = platform_by_name(&platform_name);
            let mut analyzer = Analyzer::new(&platform);
            let result = tune_task_size(&mut analyzer, &desc, Strategy::DpPerf, None);
            println!("{:<10} {:>12}", "m", "DP-Perf time");
            for (m, t) in &result.sweep {
                let mark = if *m == result.best_m { "  <- best" } else { "" };
                println!("{:<10} {:>12}{mark}", m, t.to_string());
            }
            println!(
                "sensitivity: worst/best = {:.2}x (the paper's §V observation)",
                result.sensitivity()
            );
        }
        _ => usage(),
    }
}
