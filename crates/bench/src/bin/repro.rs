//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything below, in order
//! repro table1|table2|table3
//! repro fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12
//! repro validate            # Table I empirical validation
//! repro coverage            # §III-B 86-application coverage study
//! repro accuracy            # Glinda model prediction vs simulated time
//! repro strategy-map        # winning strategy per (capability, link) cell
//! repro ablation-tasksize   # §V task-size sensitivity sweep
//! repro json                # full result matrix as JSON (for EXPERIMENTS.md)
//! repro markdown            # regenerated markdown evaluation report
//! ```

use bench::experiments::{self, AppRun};
use bench::{report, validation};
use hetero_platform::Platform;
use std::env;

fn main() {
    // Restore the default SIGPIPE disposition so `repro ... | head` ends
    // quietly instead of panicking on a broken pipe.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }

    let args: Vec<String> = env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    const TARGETS: &[&str] = &[
        "all",
        "table1",
        "table2",
        "table3",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "validate",
        "coverage",
        "accuracy",
        "strategy-map",
        "ablation-tasksize",
        "json",
        "markdown",
    ];
    if !TARGETS.contains(&what) {
        eprintln!(
            "unknown target '{what}'; valid targets: {}",
            TARGETS.join(", ")
        );
        std::process::exit(2);
    }
    let platform = Platform::icpp15();

    // Every figure slices the same evaluation matrix; run it once.
    let needs_matrix = !matches!(
        what,
        "table1" | "table3" | "coverage" | "accuracy" | "strategy-map" | "ablation-tasksize"
    );
    let runs: Vec<AppRun> = if needs_matrix {
        eprintln!("running the evaluation matrix (8 app variants x all configurations)...");
        experiments::run_all(&platform)
    } else {
        Vec::new()
    };
    let by_name = |names: &[&str]| -> Vec<&AppRun> {
        names
            .iter()
            .map(|n| runs.iter().find(|r| r.app == *n).expect("variant"))
            .collect()
    };

    let mut sections: Vec<String> = Vec::new();
    let want = |k: &str| what == "all" || what == k;

    if want("table1") {
        sections.push(report::table1());
    }
    if want("table2") {
        sections.push(report::table2(&runs));
    }
    if want("table3") {
        sections.push(report::table3(&platform));
    }
    if want("fig5") {
        sections.push(report::figure_times(
            "Figure 5 — execution time, SK-One class",
            &by_name(&["MatrixMul", "BlackScholes"]),
        ));
    }
    if want("fig6") {
        sections.push(report::figure_ratios(
            "Figure 6 — partitioning ratios, SK-One class",
            &by_name(&["MatrixMul", "BlackScholes"]),
            &[],
        ));
    }
    if want("fig7") {
        sections.push(report::figure_times(
            "Figure 7 — execution time, SK-Loop class",
            &by_name(&["Nbody", "HotSpot"]),
        ));
    }
    if want("fig8") {
        sections.push(report::figure_ratios(
            "Figure 8 — partitioning ratios, SK-Loop class",
            &by_name(&["Nbody", "HotSpot"]),
            &[],
        ));
    }
    if want("fig9") {
        sections.push(report::figure_times(
            "Figure 9 — execution time, MK-Seq class (STREAM-Seq, w/o and w sync)",
            &by_name(&["STREAM-Seq-w/o", "STREAM-Seq-w"]),
        ));
    }
    if want("fig10") {
        sections.push(report::figure_ratios(
            "Figure 10 — partitioning ratios, MK-Seq class (SP-Varied per kernel)",
            &by_name(&["STREAM-Seq-w/o", "STREAM-Seq-w"]),
            &["SP-Varied"],
        ));
    }
    if want("fig11") {
        sections.push(report::figure_times(
            "Figure 11 — execution time, MK-Loop class (STREAM-Loop, w/o and w sync)",
            &by_name(&["STREAM-Loop-w/o", "STREAM-Loop-w"]),
        ));
    }
    if want("fig12") {
        let (rows, avg_og, avg_oc) = experiments::fig12_speedups(&runs);
        sections.push(report::figure12(&rows, avg_og, avg_oc));
    }
    if want("validate") {
        let checks = validation::validate_rankings(&runs);
        sections.push(report::validation_report(&checks));
        if !validation::all_valid(&checks) {
            eprintln!("RANKING VALIDATION FAILED");
            std::process::exit(1);
        }
    }
    if want("coverage") {
        sections.push(report::coverage_report(&experiments::coverage_study()));
    }
    if want("accuracy") {
        sections.push(report::accuracy_report(&experiments::model_accuracy(
            &platform,
        )));
    }
    if want("strategy-map") {
        let caps = [0.125, 0.25, 0.5, 1.0, 2.0];
        let links = [0.75, 1.5, 3.0, 6.0, 12.0, 24.0, 48.0];
        let cells = experiments::strategy_map(&caps, &links);
        sections.push(report::strategy_map_report(&cells, &caps, &links));
    }
    if want("ablation-tasksize") {
        let mut out =
            String::from("Task-size ablation (§V): DP-Perf time vs dynamic task granularity\n");
        for desc in [
            hetero_apps::stream::paper_seq(false),
            hetero_apps::blackscholes::paper_descriptor(),
            hetero_apps::hotspot::paper_descriptor(),
        ] {
            out.push_str(&format!("  {}\n", desc.name));
            for (m, ms) in
                experiments::task_size_ablation(&platform, &desc, &[12, 24, 48, 96, 192, 384])
            {
                out.push_str(&format!("    m = {m:>4} instances/kernel: {ms:>9.1} ms\n"));
            }
        }
        sections.push(out);
    }
    if what == "json" {
        println!("{}", serde_json::to_string_pretty(&runs).unwrap());
        return;
    }
    if what == "markdown" {
        let checks = validation::validate_rankings(&runs);
        let (rows, avg_og, avg_oc) = experiments::fig12_speedups(&runs);
        let accuracy = experiments::model_accuracy(&platform);
        println!(
            "{}",
            report::markdown_report(&runs, &checks, &rows, avg_og, avg_oc, &accuracy)
        );
        return;
    }

    if sections.is_empty() {
        eprintln!("unknown target '{what}'; see the module docs for options");
        std::process::exit(2);
    }
    for s in sections {
        println!("{s}");
    }
}
