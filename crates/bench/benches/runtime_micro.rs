//! Runtime micro-benchmarks: the substrate costs behind the experiments —
//! dependence-graph construction, coherence bookkeeping, interval
//! operations, scheduler binding throughput, and full-simulation throughput
//! per task.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hetero_platform::{KernelProfile, Platform};
use hetero_runtime::{
    simulate, Access, DepScheduler, Interval, IntervalSet, PinnedScheduler, Program, Region,
    TaskGraph,
};
use std::hint::black_box;

/// An MK-Loop-like program: `kernels` kernels × `iters` iterations ×
/// `parts` partitions over two ping-pong buffers.
fn chain_program(n: u64, kernels: usize, iters: u32, parts: u64, pin_cpu: bool) -> Program {
    let mut b = Program::builder();
    let ping = b.buffer("ping", n, 4);
    let pong = b.buffer("pong", n, 4);
    let kids: Vec<_> = (0..kernels)
        .map(|k| b.kernel(&format!("k{k}"), KernelProfile::memory_only(8.0)))
        .collect();
    for _ in 0..iters {
        for (k, &kid) in kids.iter().enumerate() {
            let (src, dst) = if k % 2 == 0 {
                (ping, pong)
            } else {
                (pong, ping)
            };
            for (s, e) in hetero_runtime::split_even(n, parts) {
                let accesses = vec![
                    Access::read(Region::new(src, s, e)),
                    Access::write(Region::new(dst, s, e)),
                ];
                if pin_cpu {
                    b.submit_pinned(kid, e - s, accesses, hetero_platform::DeviceId(0));
                } else {
                    b.submit_dynamic(kid, e - s, accesses);
                }
            }
        }
        b.taskwait();
    }
    b.build()
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_build");
    for tasks in [100u64, 1000] {
        let p = chain_program(1 << 20, 4, 5, tasks / 20, false);
        let n = p.task_count() as u64;
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("{n}_tasks"), |b| {
            b.iter(|| black_box(TaskGraph::build(&p).edge_count()))
        });
    }
    group.finish();
}

fn bench_interval_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_set");
    group.bench_function("insert_remove_1000_runs", |b| {
        b.iter(|| {
            let mut s = IntervalSet::new();
            for i in 0..1000u64 {
                s.insert(Interval::new(i * 10, i * 10 + 5));
            }
            for i in (0..1000u64).step_by(2) {
                s.remove(Interval::new(i * 10, i * 10 + 3));
            }
            black_box(s.total_len())
        })
    });
    group.bench_function("gaps_within_fragmented", |b| {
        let mut s = IntervalSet::new();
        for i in 0..1000u64 {
            s.insert(Interval::new(i * 10, i * 10 + 5));
        }
        b.iter(|| black_box(s.gaps_within(Interval::new(0, 10_000)).len()))
    });
    group.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let platform = Platform::icpp15();
    let mut group = c.benchmark_group("simulation_throughput");
    for (label, pinned) in [("pinned", true), ("dp_dep", false)] {
        let p = chain_program(1 << 22, 4, 10, 96, pinned);
        let n = p.task_count() as u64;
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("{label}_{n}_tasks"), |b| {
            b.iter(|| {
                if pinned {
                    black_box(simulate(&p, &platform, &mut PinnedScheduler).makespan)
                } else {
                    let mut s = DepScheduler::new(&platform);
                    black_box(simulate(&p, &platform, &mut s).makespan)
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_interval_set,
    bench_simulation_throughput
);
criterion_main!(benches);
