//! Native-kernel benches: the *real, computing* host implementations of the
//! six applications at reduced problem sizes. These measure actual Rust
//! kernel performance (not simulated time) and exercise the crossbeam
//! parallel reference paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hetero_apps::{blackscholes, hotspot, matrixmul, nbody, stream};
use hetero_runtime::{run_native, ExecOrder, HostBuffers};
use matchmaker::{ExecutionConfig, Planner};
use std::hint::black_box;

fn bench_matrixmul(c: &mut Criterion) {
    let n = 192usize;
    let mut group = c.benchmark_group("native_matrixmul");
    group.throughput(Throughput::Elements((2 * n * n * n) as u64));
    let mut a = vec![0.0f32; n * n];
    let mut b = vec![0.0f32; n * n];
    for i in 0..n * n {
        a[i] = (i % 13) as f32 * 0.25;
        b[i] = (i % 17) as f32 * 0.125;
    }
    group.bench_function(format!("reference_{n}"), |bch| {
        bch.iter(|| black_box(matrixmul::reference(&a, &b, n)))
    });
    group.finish();
}

fn bench_blackscholes(c: &mut Criterion) {
    let n = 100_000usize;
    let mut group = c.benchmark_group("native_blackscholes");
    group.throughput(Throughput::Elements(n as u64));
    let mut input = vec![0.0f32; n * 5];
    for i in 0..n {
        input[i * 5] = 50.0 + (i % 100) as f32;
        input[i * 5 + 1] = 55.0;
        input[i * 5 + 2] = 1.0;
        input[i * 5 + 3] = 0.02;
        input[i * 5 + 4] = 0.25;
    }
    group.bench_function(format!("reference_{n}"), |bch| {
        bch.iter(|| black_box(blackscholes::reference(&input, n)))
    });
    group.finish();
}

fn bench_hotspot(c: &mut Criterion) {
    let n = 512usize;
    let mut group = c.benchmark_group("native_hotspot");
    group.throughput(Throughput::Elements((n * n) as u64));
    let t = vec![330.0f32; n * n];
    let p = vec![0.02f32; n * n];
    group.bench_function(format!("reference_step_{n}x{n}"), |bch| {
        bch.iter(|| black_box(hotspot::reference_step(&t, &p, n)))
    });
    group.finish();
}

fn bench_stream_chain(c: &mut Criterion) {
    // Full partitioned program executed natively (the runtime's validation
    // path): STREAM chain over 3 iterations under the SP-Varied plan.
    let n = 1u64 << 16;
    let platform = hetero_platform::Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = stream::descriptor(n, Some(3), true);
    let plan = planner.plan(
        &desc,
        ExecutionConfig::Strategy(matchmaker::Strategy::SpVaried),
    );
    let kernels = stream::host_kernels();
    let mut group = c.benchmark_group("native_stream_chain");
    group.throughput(Throughput::Elements(n * 4 * 3));
    group.bench_function(format!("sp_varied_{n}x3iters"), |bch| {
        bch.iter(|| {
            let hb = HostBuffers::for_program(&plan.program);
            stream::init(&hb, n);
            run_native(&plan.program, &kernels, &hb, ExecOrder::Submission);
            black_box(hb.snapshot(hetero_runtime::BufferId(0)))
        })
    });
    group.finish();
}

fn bench_nbody(c: &mut Criterion) {
    let n = 2048u64;
    let interactions = 128u64;
    let platform = hetero_platform::Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = nbody::descriptor(n, interactions, 1);
    let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
    let kernels = nbody::host_kernels(n, interactions);
    let mut group = c.benchmark_group("native_nbody");
    group.throughput(Throughput::Elements(n * interactions));
    group.bench_function(format!("step_{n}bodies_{interactions}inter"), |bch| {
        bch.iter(|| {
            let hb = HostBuffers::for_program(&plan.program);
            nbody::init(&hb, n);
            run_native(&plan.program, &kernels, &hb, ExecOrder::Submission);
            black_box(hb.snapshot(hetero_runtime::BufferId(1)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matrixmul,
    bench_blackscholes,
    bench_hotspot,
    bench_stream_chain,
    bench_nbody
);
criterion_main!(benches);
