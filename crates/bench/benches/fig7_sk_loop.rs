//! Figure 7 bench: SK-Loop class (Nbody, HotSpot).
//!
//! Simulates each (application, configuration) bar; the simulated virtual
//! times are printed once and regenerated exactly by `repro fig7`.

use bench::experiments::run_app;
use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::{hotspot, nbody};
use hetero_platform::Platform;
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let platform = Platform::icpp15();
    let mut group = c.benchmark_group("fig7_sk_loop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for desc in [nbody::paper_descriptor(), hotspot::paper_descriptor()] {
        let run = run_app(&platform, &desc);
        for cfg in &run.configs {
            eprintln!(
                "fig7 {:<10} {:<12} {:>10.1} ms (GPU share {:.1}%)",
                run.app,
                cfg.config,
                cfg.time_ms,
                100.0 * cfg.gpu_item_share
            );
        }
        for config in [
            ExecutionConfig::OnlyGpu,
            ExecutionConfig::OnlyCpu,
            ExecutionConfig::Strategy(Strategy::SpSingle),
            ExecutionConfig::Strategy(Strategy::DpPerf),
            ExecutionConfig::Strategy(Strategy::DpDep),
        ] {
            let analyzer = Analyzer::new(&platform);
            group.bench_function(format!("{}/{}", desc.name, config), |b| {
                b.iter(|| black_box(analyzer.simulate(&desc, config).makespan))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
