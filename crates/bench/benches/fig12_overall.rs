//! Figure 12 bench: the analyzer end-to-end — classify, select the best
//! strategy, plan and simulate — for every application variant. Prints the
//! speedup rows (best vs Only-GPU / Only-CPU) once; regenerated exactly by
//! `repro fig12`.

use bench::experiments::{fig12_speedups, paper_variants, run_all};
use criterion::{criterion_group, criterion_main, Criterion};
use hetero_platform::Platform;
use matchmaker::Analyzer;
use std::hint::black_box;

fn bench_fig12(c: &mut Criterion) {
    let platform = Platform::icpp15();

    let runs = run_all(&platform);
    let (rows, avg_og, avg_oc) = fig12_speedups(&runs);
    for r in &rows {
        eprintln!(
            "fig12 {:<16} best={:<12} vs OG {:>5.2}x, vs OC {:>5.2}x",
            r.app, r.best, r.vs_only_gpu, r.vs_only_cpu
        );
    }
    eprintln!(
        "fig12 average: {avg_og:.2}x vs Only-GPU, {avg_oc:.2}x vs Only-CPU (paper: 3.0x / 5.3x)"
    );

    let mut group = c.benchmark_group("fig12_analyzer_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for desc in paper_variants() {
        let analyzer = Analyzer::new(&platform);
        group.bench_function(&desc.name, |b| {
            b.iter(|| black_box(analyzer.run_best(&desc).1.makespan))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
