//! Figure 9 bench: MK-Seq class (STREAM-Seq, with and without inter-kernel
//! synchronisation). Simulated virtual times are printed once and
//! regenerated exactly by `repro fig9`.

use bench::experiments::run_app;
use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::stream;
use hetero_platform::Platform;
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let platform = Platform::icpp15();
    let mut group = c.benchmark_group("fig9_mk_seq");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for sync in [false, true] {
        let desc = stream::paper_seq(sync);
        let run = run_app(&platform, &desc);
        for cfg in &run.configs {
            eprintln!(
                "fig9 {:<15} {:<12} {:>10.1} ms (GPU share {:.1}%)",
                run.app,
                cfg.config,
                cfg.time_ms,
                100.0 * cfg.gpu_item_share
            );
        }
        for config in [
            ExecutionConfig::OnlyGpu,
            ExecutionConfig::OnlyCpu,
            ExecutionConfig::Strategy(Strategy::SpUnified),
            ExecutionConfig::Strategy(Strategy::DpPerf),
            ExecutionConfig::Strategy(Strategy::DpDep),
            ExecutionConfig::Strategy(Strategy::SpVaried),
        ] {
            let analyzer = Analyzer::new(&platform);
            group.bench_function(format!("{}/{}", desc.name, config), |b| {
                b.iter(|| black_box(analyzer.simulate(&desc, config).makespan))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
