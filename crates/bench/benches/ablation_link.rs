//! Ablation: interconnect bandwidth vs the partitioning crossover.
//!
//! The G metric (GPU compute to data-transfer gap) predicts where the
//! split flips between GPU-heavy and CPU-heavy. This bench sweeps the PCIe
//! bandwidth on the paper platform and prints the SP-Unified split and the
//! winning configuration for STREAM-Seq — the crossover the paper's
//! discussion attributes to the transfer bottleneck.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::stream;
use hetero_platform::{LinkSpec, Platform, SimTime};
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn with_link(gbs: f64) -> Platform {
    let base = Platform::icpp15();
    Platform::builder()
        .cpu(base.cpu().spec.clone())
        .accelerator(
            base.gpu().unwrap().spec.clone(),
            LinkSpec::new(gbs, SimTime::from_micros(15)),
        )
        .sched_overhead(base.sched_overhead)
        .build()
}

fn bench_link(c: &mut Criterion) {
    let desc = stream::paper_seq(false);
    println!("PCIe bandwidth sweep (STREAM-Seq, no sync):");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12}",
        "link GB/s", "GPU share", "SP-Unified", "Only-GPU", "Only-CPU"
    );
    for gbs in [1.5, 3.0, 6.0, 12.0, 24.0, 48.0] {
        let platform = with_link(gbs);
        let analyzer = Analyzer::new(&platform);
        let sp = analyzer.simulate(&desc, ExecutionConfig::Strategy(Strategy::SpUnified));
        let og = analyzer.simulate(&desc, ExecutionConfig::OnlyGpu);
        let oc = analyzer.simulate(&desc, ExecutionConfig::OnlyCpu);
        println!(
            "{:>10.1} {:>9.1}% {:>12} {:>12} {:>12}",
            gbs,
            100.0 * sp.gpu_item_share(),
            sp.makespan.to_string(),
            og.makespan.to_string(),
            oc.makespan.to_string()
        );
    }

    let mut group = c.benchmark_group("ablation_link_bandwidth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for gbs in [1.5, 48.0] {
        let platform = with_link(gbs);
        group.bench_function(format!("sp_unified_{gbs}gbs"), |b| {
            let analyzer = Analyzer::new(&platform);
            b.iter(|| {
                black_box(
                    analyzer
                        .simulate(&desc, ExecutionConfig::Strategy(Strategy::SpUnified))
                        .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_link);
criterion_main!(benches);
