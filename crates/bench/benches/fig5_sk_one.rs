//! Figure 5 bench: SK-One class (MatrixMul, BlackScholes).
//!
//! Each Criterion benchmark simulates one (application, configuration) bar
//! of the figure and reports the wall time of the *simulation*; the
//! simulated (virtual) execution times — the figure's actual content — are
//! printed once per run and regenerated exactly by `repro fig5`.

use bench::experiments::run_app;
use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::{blackscholes, matrixmul};
use hetero_platform::Platform;
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let platform = Platform::icpp15();
    let mut group = c.benchmark_group("fig5_sk_one");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for desc in [
        matrixmul::paper_descriptor(),
        blackscholes::paper_descriptor(),
    ] {
        // Print the figure row once (the reproduced numbers).
        let run = run_app(&platform, &desc);
        for cfg in &run.configs {
            eprintln!(
                "fig5 {:<14} {:<12} {:>10.1} ms (GPU share {:.1}%)",
                run.app,
                cfg.config,
                cfg.time_ms,
                100.0 * cfg.gpu_item_share
            );
        }
        for config in [
            ExecutionConfig::OnlyGpu,
            ExecutionConfig::OnlyCpu,
            ExecutionConfig::Strategy(Strategy::SpSingle),
            ExecutionConfig::Strategy(Strategy::DpPerf),
            ExecutionConfig::Strategy(Strategy::DpDep),
        ] {
            let analyzer = Analyzer::new(&platform);
            group.bench_function(format!("{}/{}", desc.name, config), |b| {
                b.iter(|| black_box(analyzer.simulate(&desc, config).makespan))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
