//! §V ablation bench: dynamic-partitioning task-size sensitivity. The paper
//! observes that "the task size variation leads to performance variation"
//! and recommends auto-tuning; this bench sweeps the dynamic granularity
//! for DP-Perf and prints the simulated time per setting.

use bench::experiments::task_size_ablation;
use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::{blackscholes, stream};
use hetero_platform::Platform;
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn bench_task_size(c: &mut Criterion) {
    let platform = Platform::icpp15();
    let counts = [12u64, 48, 192];

    for desc in [stream::paper_seq(false), blackscholes::paper_descriptor()] {
        for (m, ms) in task_size_ablation(&platform, &desc, &[12, 24, 48, 96, 192, 384]) {
            eprintln!("ablation {:<15} m={m:>4}: {ms:>9.1} ms", desc.name);
        }
    }

    let mut group = c.benchmark_group("ablation_task_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &counts {
        let desc = stream::paper_seq(false);
        group.bench_function(format!("stream_seq_dp_perf_m{m}"), |b| {
            let mut analyzer = Analyzer::new(&platform);
            analyzer.planner_mut().dynamic_instances_per_kernel = m;
            b.iter(|| {
                black_box(
                    analyzer
                        .simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
                        .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_task_size);
criterion_main!(benches);
