//! Observability-path micro-benchmarks (PR 9): streaming-snapshot
//! emission overhead vs a plain run, delta-stream folding, span-tree
//! lifting from a recorded trace, and the run-diff engine — over a
//! repro-corpus app (STREAM with synchronisation, one snapshot per loop
//! barrier).
//!
//! Prints one summary line per benchmark and writes the measurements as
//! machine-readable `BENCH_9.json` at the workspace root, extending the
//! `BENCH_*.json` perf trajectory.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use hetero_apps::stream;
use hetero_platform::Platform;
use hetero_runtime::{fold_stream, MetricsRegistry, RunDiff, SpanTree, TraceObserver};
use matchmaker::{Analyzer, ExecutionConfig, RunSpec, Strategy, STREAM_STRATEGY_LABEL};
use serde::Serialize;

/// Mean wall-clock nanoseconds per call over `samples` calls (after one
/// warm-up call), in the same spirit as the vendored criterion stand-in.
fn measure<O, F: FnMut() -> O>(samples: u32, mut f: F) -> f64 {
    black_box(f());
    let start = Instant::now();
    for _ in 0..samples {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(samples)
}

#[derive(Serialize)]
struct BenchResult {
    name: String,
    mean_ns: f64,
    /// Logical units processed per call (snapshots, spans, series, ...).
    units: u64,
    unit: &'static str,
}

#[derive(Serialize)]
struct BenchFile {
    pr: u32,
    bench: &'static str,
    samples: u32,
    results: Vec<BenchResult>,
}

fn main() {
    const SAMPLES: u32 = 20;
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = stream::descriptor(1 << 20, Some(8), true);
    let config = ExecutionConfig::Strategy(Strategy::SpUnified);
    let spec = RunSpec::plain();

    // One reference streamed run supplies the snapshot lines, registry
    // JSON and trace every benchmark below chews on.
    let (_, obs) = analyzer
        .simulate_streamed(&desc, config, &spec)
        .expect("reference streamed run");
    let stream_text = obs.stream();
    let snapshots = obs.lines().len() as u64;
    assert!(snapshots >= 4, "want a multi-epoch stream, got {snapshots}");
    let registry_json = obs.registry().to_json();
    let series = obs.registry().series.len() as u64;

    let mut tobs = TraceObserver::new();
    analyzer.simulate_observed(&desc, config, &mut tobs);
    let tree = SpanTree::from_trace(tobs.trace(), &platform);
    let spans = tree.span_count() as u64;
    let events = tobs.trace().events.len() as u64;

    let mut results = Vec::new();
    let mut push = |name: &str, mean_ns: f64, units: u64, unit: &'static str| {
        let per = mean_ns / units.max(1) as f64;
        eprintln!("bench obs_stream/{name:<26} {mean_ns:>12.0} ns/iter  ({per:.0} ns/{unit})");
        results.push(BenchResult {
            name: name.to_string(),
            mean_ns,
            units,
            unit,
        });
    };

    // Emission overhead: the same run bare vs with the snapshot observer
    // delta-encoding a line at every barrier.
    let plain = measure(SAMPLES, || analyzer.simulate(&desc, config).makespan);
    push("simulate_plain", plain, snapshots, "snapshot");
    let streamed = measure(SAMPLES, || {
        analyzer
            .simulate_streamed(&desc, config, &spec)
            .unwrap()
            .0
            .makespan
    });
    push("simulate_streamed", streamed, snapshots, "snapshot");

    // Consumer side: fold the delta lines back into a full registry (the
    // `stream-fold-equivalence` path a monitoring client replays).
    let fold = measure(SAMPLES, || fold_stream(&stream_text).unwrap().series.len());
    push("fold_stream", fold, snapshots, "snapshot");

    // Span profiling: lift the flat trace into the causal span tree.
    let lift = measure(SAMPLES, || {
        SpanTree::from_trace(tobs.trace(), &platform).span_count()
    });
    push("span_tree_from_trace", lift, events, "event");

    // Span export: tile the tree into hm_span_seconds gauges.
    let export = measure(SAMPLES, || {
        let mut registry = MetricsRegistry::new();
        tree.export_metrics(&mut registry, STREAM_STRATEGY_LABEL);
        registry.series.len()
    });
    push("span_export_metrics", export, spans, "span");

    // Run-diff engine: compare a registry against itself (worst case for
    // the matcher — every series pairs up).
    let diff = measure(SAMPLES, || {
        RunDiff::between(&registry_json, &registry_json, 5.0)
            .unwrap()
            .entries
            .len()
    });
    push("run_diff_between", diff, series, "series");

    let out = BenchFile {
        pr: 9,
        bench: "obs_stream",
        samples: SAMPLES,
        results,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_9.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .expect("write BENCH_9.json");
    eprintln!("wrote {}", path.display());
}
