//! Ablation: runtime scheduling overhead vs the static/dynamic gap.
//!
//! The paper attributes dynamic partitioning's deficit to "runtime
//! scheduling overhead (including multiple data transfers)". This bench
//! sweeps the per-decision overhead and prints how the DP-Perf : SP gap
//! grows with it, while the static strategies are unaffected — the
//! mechanism behind Proposition 2.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::blackscholes;
use hetero_platform::{Platform, SimTime};
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn with_overhead(us: u64) -> Platform {
    let mut p = Platform::icpp15();
    p.sched_overhead = SimTime::from_micros(us);
    p
}

fn bench_overheads(c: &mut Criterion) {
    let desc = blackscholes::paper_descriptor();
    println!("sched overhead sweep (BlackScholes):");
    println!(
        "{:>12} {:>12} {:>12} {:>8}",
        "overhead", "SP-Single", "DP-Perf", "gap"
    );
    for us in [0u64, 8, 32, 128, 512] {
        let platform = with_overhead(us);
        let analyzer = Analyzer::new(&platform);
        let sp = analyzer
            .simulate(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
            .makespan;
        let dp = analyzer
            .simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
            .makespan;
        println!(
            "{:>10}us {:>12} {:>12} {:>7.2}x",
            us,
            sp.to_string(),
            dp.to_string(),
            dp.as_secs_f64() / sp.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("ablation_sched_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for us in [0u64, 128] {
        let platform = with_overhead(us);
        group.bench_function(format!("dp_perf_{us}us"), |b| {
            let analyzer = Analyzer::new(&platform);
            b.iter(|| {
                black_box(
                    analyzer
                        .simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
                        .makespan,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overheads);
criterion_main!(benches);
