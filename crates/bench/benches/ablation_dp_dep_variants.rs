//! Ablation: how the breadth-first scheduler is modelled.
//!
//! The paper's DP-Dep observations (MatrixMul: "only one task instance is
//! assigned to the GPU") pin OmpSs's breadth-first scheduler as *eager*:
//! instances are bound to workers round-robin at submission. A
//! work-conserving variant (idle workers pull) behaves very differently on
//! capability-skewed workloads. This bench runs both — plus DP-Perf — on
//! MatrixMul and STREAM-Seq, showing the eager model reproduces the paper
//! and the work-conserving variant would not have.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_apps::{matrixmul, stream};
use hetero_platform::Platform;
use hetero_runtime::{simulate, DepScheduler, WorkConservingScheduler};
use matchmaker::{Analyzer, ExecutionConfig, Strategy};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);

    println!("breadth-first scheduler variants:");
    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "application", "DP-Dep(eager)", "BF(work-cons.)", "DP-Perf"
    );
    for desc in [matrixmul::paper_descriptor(), stream::paper_seq(false)] {
        let plan = analyzer.plan(&desc, ExecutionConfig::Strategy(Strategy::DpDep));
        let eager = {
            let mut s = DepScheduler::new(&platform);
            simulate(&plan.program, &platform, &mut s).makespan
        };
        let wc = {
            let mut s = WorkConservingScheduler::new(&platform);
            simulate(&plan.program, &platform, &mut s).makespan
        };
        let perf = analyzer
            .simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
            .makespan;
        println!(
            "{:<16} {:>14} {:>14} {:>12}",
            desc.name,
            eager.to_string(),
            wc.to_string(),
            perf.to_string()
        );
    }

    let mut group = c.benchmark_group("ablation_bf_variants");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let desc = matrixmul::paper_descriptor();
    let plan = analyzer.plan(&desc, ExecutionConfig::Strategy(Strategy::DpDep));
    group.bench_function("eager_ring", |b| {
        b.iter(|| {
            let mut s = DepScheduler::new(&platform);
            black_box(simulate(&plan.program, &platform, &mut s).makespan)
        })
    });
    group.bench_function("work_conserving", |b| {
        b.iter(|| {
            let mut s = WorkConservingScheduler::new(&platform);
            black_box(simulate(&plan.program, &platform, &mut s).makespan)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
