//! Journal-path micro-benchmarks (PR 8): record-side append/encode and
//! recovery-side decode + redo-replay, over a repro-corpus app (STREAM
//! with synchronisation — one committed record per loop barrier).
//!
//! Prints one summary line per benchmark and writes the measurements as
//! machine-readable `BENCH_8.json` at the workspace root — the first
//! point of the `BENCH_*.json` perf trajectory ROADMAP.md asks for.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use hetero_apps::stream;
use hetero_platform::{KillSchedule, Platform};
use matchmaker::{Analyzer, ExecutionConfig, JournalSink, RunJournal, RunSpec, Strategy};
use serde::Serialize;

/// Mean wall-clock nanoseconds per call over `samples` calls (after one
/// warm-up call), in the same spirit as the vendored criterion stand-in.
fn measure<O, F: FnMut() -> O>(samples: u32, mut f: F) -> f64 {
    black_box(f());
    let start = Instant::now();
    for _ in 0..samples {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / f64::from(samples)
}

#[derive(Serialize)]
struct BenchResult {
    name: String,
    mean_ns: f64,
    /// Logical units processed per call (records, bytes, ...).
    units: u64,
    unit: &'static str,
}

#[derive(Serialize)]
struct BenchFile {
    pr: u32,
    bench: &'static str,
    samples: u32,
    results: Vec<BenchResult>,
}

fn main() {
    const SAMPLES: u32 = 20;
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = stream::descriptor(1 << 20, Some(8), true);
    let config = ExecutionConfig::Strategy(Strategy::SpUnified);
    let spec = RunSpec::plain();

    // One full journaled run supplies the header, the committed records,
    // and the journal text every benchmark below chews on.
    let mut sink = JournalSink::record();
    analyzer
        .simulate_journaled(&desc, config, &spec, &mut sink)
        .expect("reference journaled run");
    let text = sink.text();
    let journal = RunJournal::load(&text).expect("reference journal loads");
    let records = journal.records.len() as u64;
    assert!(records >= 4, "want a multi-epoch journal, got {records}");

    // A crashed prefix (half the records, torn final line) for the
    // recovery-side benchmarks.
    let mut crashed =
        JournalSink::record_with_kill(KillSchedule::after_records(records / 2).torn());
    let partial = match analyzer.simulate_journaled(&desc, config, &spec, &mut crashed) {
        Err(matchmaker::JournalError::Killed { .. }) => crashed.text(),
        other => panic!("expected the injected kill to fire, got {other:?}"),
    };

    let mut results = Vec::new();
    let mut push = |name: &str, mean_ns: f64, units: u64, unit: &'static str| {
        let per = mean_ns / units.max(1) as f64;
        eprintln!("bench journal/{name:<28} {mean_ns:>12.0} ns/iter  ({per:.0} ns/{unit})");
        results.push(BenchResult {
            name: name.to_string(),
            mean_ns,
            units,
            unit,
        });
    };

    // Record side: encode + hash + append every epoch record through the
    // sink, header included — the per-barrier cost a journaled run adds.
    let append = measure(SAMPLES, || {
        let mut sink = JournalSink::record();
        sink.begin(&journal.header).unwrap();
        for rec in &journal.records {
            sink.append_epoch(rec).unwrap();
        }
        sink.records()
    });
    push("append_encode", append, records, "record");

    // Recovery side, cold half: parse + hash-check + sequence-validate
    // the full journal text.
    let load = measure(SAMPLES, || RunJournal::load(&text).unwrap().record_count());
    push("load_decode", load, text.len() as u64, "byte");

    // Recovery side, full path: load the crashed prefix, redo-replay the
    // validated records, and finish the run.
    let resume = measure(SAMPLES, || analyzer.resume(&partial).unwrap().0.makespan);
    push("resume_redo_replay", resume, records, "record");

    // Context: the same run journaled vs unjournaled, so the trajectory
    // can watch the observer overhead too.
    let plain = measure(SAMPLES, || analyzer.simulate(&desc, config).makespan);
    push("simulate_plain", plain, records, "epoch");
    let journaled = measure(SAMPLES, || {
        let mut sink = JournalSink::record();
        analyzer
            .simulate_journaled(&desc, config, &spec, &mut sink)
            .unwrap()
            .makespan
    });
    push("simulate_journaled", journaled, records, "epoch");

    let out = BenchFile {
        pr: 8,
        bench: "journal",
        samples: SAMPLES,
        results,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_8.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .expect("write BENCH_8.json");
    eprintln!("wrote {}", path.display());
}
