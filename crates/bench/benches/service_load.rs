//! Planning-service load benchmark (PR 10): 10⁵ seeded requests through
//! the overload-hardened service front-end, calm and under the canonical
//! 10× burst chaos schedule, publishing terminal-latency percentiles
//! (virtual time) and wall-clock throughput as `BENCH_10.json` at the
//! workspace root — the acceptance run for the `shed-or-serve` oracle.

use std::path::Path;
use std::time::Instant;

use hetero_platform::{Platform, SimTime};
use hetero_runtime::LogHistogram;
use matchmaker::{check_shed_or_serve, run_load, ChaosSchedule, LoadConfig, ServiceConfig};
use serde::Serialize;

#[derive(Serialize)]
struct BenchResult {
    name: String,
    mean_ns: f64,
    /// Logical units behind the number (requests answered, shed, ...).
    units: u64,
    unit: &'static str,
}

#[derive(Serialize)]
struct BenchFile {
    pr: u32,
    bench: &'static str,
    samples: u32,
    results: Vec<BenchResult>,
}

fn main() {
    const REQUESTS: u64 = 100_000;
    let platform = Platform::icpp15();
    let load = LoadConfig {
        requests: REQUESTS,
        seed: 7,
        ..LoadConfig::default()
    };
    let span = SimTime::from_micros(REQUESTS * load.mean_gap_us);

    let mut results = Vec::new();
    let mut push = |name: &str, mean_ns: f64, units: u64, unit: &'static str| {
        eprintln!("bench service_load/{name:<22} {mean_ns:>14.0} ns  ({units} {unit}s)");
        results.push(BenchResult {
            name: name.to_string(),
            mean_ns,
            units,
            unit,
        });
    };

    for (what, chaos) in [
        ("calm", ChaosSchedule::calm(7)),
        ("chaos", ChaosSchedule::burst(7, 10, span)),
    ] {
        let start = Instant::now();
        let out = run_load(&platform, &ServiceConfig::default(), &load, &chaos);
        let wall = start.elapsed().as_nanos() as f64;
        check_shed_or_serve(REQUESTS as usize, &out.outcomes)
            .expect("every request gets exactly one terminal response");

        let served = out.outcomes.iter().filter(|o| o.result.is_ok()).count() as u64;
        let shed = REQUESTS - served;
        let mut hist = LogHistogram::default();
        for o in &out.outcomes {
            hist.observe(o.done.saturating_sub(o.arrival));
        }
        // Virtual terminal latency (arrival -> response) percentiles: the
        // service-level numbers the hm_service_latency_seconds histogram
        // exports, here pinned into the perf trajectory.
        push(
            &format!("{what}/latency_p50"),
            hist.quantile(0.50) * 1e9,
            served,
            "request",
        );
        push(
            &format!("{what}/latency_p95"),
            hist.quantile(0.95) * 1e9,
            served,
            "request",
        );
        push(
            &format!("{what}/latency_p99"),
            hist.quantile(0.99) * 1e9,
            served,
            "request",
        );
        // Wall-clock cost of planning the whole load (real solver work on
        // every cache miss), as mean nanoseconds per request.
        push(
            &format!("{what}/wall_per_request"),
            wall / REQUESTS as f64,
            REQUESTS,
            "request",
        );
        push(&format!("{what}/shed"), shed as f64, shed.max(1), "request");
        eprintln!("{}", out.summary);
    }

    let out = BenchFile {
        pr: 10,
        bench: "service_load",
        samples: 1,
        results,
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json");
    std::fs::write(&path, serde_json::to_string_pretty(&out).unwrap() + "\n")
        .expect("write BENCH_10.json");
    eprintln!("wrote {}", path.display());
}
