//! MK-DAG refinement (the paper's §VII future work).
//!
//! "We also want to investigate the possibility to refine the
//! classification of MK-DAG applications for a better selection of their
//! preferred partitioning." The observation: a DAG classification only
//! forces dynamic partitioning when the flow actually has *width* — when
//! kernels can run concurrently. A DAG that is structurally a chain is an
//! MK-Seq application in disguise, and the static strategies apply to it.
//!
//! [`analyze_dag`] computes the structural profile of a DAG flow (width,
//! depth, chain-ness) and [`refine_class`] folds chain-shaped DAGs back
//! into MK-Seq, unlocking SP-Unified/SP-Varied for them.

use crate::class::{classify, AppClass};
use crate::descriptor::{AppDescriptor, ExecutionFlow};
use serde::{Deserialize, Serialize};

/// Structural profile of a DAG flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagProfile {
    /// Maximum number of kernels at the same depth level — the available
    /// inter-kernel parallelism (1 = a chain).
    pub width: usize,
    /// Length of the longest kernel chain (levels).
    pub depth: usize,
    /// `true` when the flow is a simple chain covering all kernels.
    pub is_chain: bool,
}

/// Analyse a descriptor's DAG flow; `None` for sequence/loop flows.
pub fn analyze_dag(desc: &AppDescriptor) -> Option<DagProfile> {
    let ExecutionFlow::Dag { edges } = &desc.flow else {
        return None;
    };
    let n = desc.kernels.len();
    // Level = longest path from any root (edges point forward by
    // validation, so a simple forward scan computes levels).
    let mut level = vec![0usize; n];
    for &(a, b) in edges {
        level[b] = level[b].max(level[a] + 1);
    }
    // Re-run until fixed point (edges are forward-sorted by construction
    // but not necessarily topologically ordered in the list).
    let mut changed = true;
    while changed {
        changed = false;
        for &(a, b) in edges {
            if level[b] < level[a] + 1 {
                level[b] = level[a] + 1;
                changed = true;
            }
        }
    }
    let depth = level.iter().max().copied().unwrap_or(0) + 1;
    let mut level_counts = vec![0usize; depth];
    for &l in &level {
        level_counts[l] += 1;
    }
    let width = level_counts.iter().max().copied().unwrap_or(1);

    // Chain: every kernel has at most one in-edge and one out-edge, and the
    // edges connect all kernels into one path.
    let mut indeg = vec![0usize; n];
    let mut outdeg = vec![0usize; n];
    for &(a, b) in edges {
        outdeg[a] += 1;
        indeg[b] += 1;
    }
    let is_chain = n >= 1
        && edges.len() == n.saturating_sub(1)
        && indeg.iter().all(|&d| d <= 1)
        && outdeg.iter().all(|&d| d <= 1)
        && width == 1;

    Some(DagProfile {
        width,
        depth,
        is_chain,
    })
}

/// Classify with DAG refinement: a chain-shaped DAG is reclassified as
/// MK-Seq (static strategies become applicable); everything else keeps the
/// paper's classification.
pub fn refine_class(desc: &AppDescriptor) -> AppClass {
    let base = classify(desc);
    if base == AppClass::MkDag {
        if let Some(profile) = analyze_dag(desc) {
            if profile.is_chain {
                return AppClass::MkSeq;
            }
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::tests_support::toy_descriptor;

    fn dag_desc(nk: usize, edges: Vec<(usize, usize)>) -> AppDescriptor {
        toy_descriptor(nk, ExecutionFlow::Dag { edges })
    }

    #[test]
    fn non_dag_flows_yield_none() {
        assert!(analyze_dag(&toy_descriptor(2, ExecutionFlow::Sequence)).is_none());
        assert!(analyze_dag(&toy_descriptor(2, ExecutionFlow::Loop { iterations: 3 })).is_none());
    }

    #[test]
    fn chain_dag_profile() {
        let d = dag_desc(4, vec![(0, 1), (1, 2), (2, 3)]);
        let p = analyze_dag(&d).unwrap();
        assert_eq!(
            p,
            DagProfile {
                width: 1,
                depth: 4,
                is_chain: true
            }
        );
    }

    #[test]
    fn fork_join_profile() {
        // 0 -> {1,2,3} -> 4
        let d = dag_desc(5, vec![(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]);
        let p = analyze_dag(&d).unwrap();
        assert_eq!(p.width, 3);
        assert_eq!(p.depth, 3);
        assert!(!p.is_chain);
    }

    #[test]
    fn disconnected_kernels_widen_the_dag() {
        // Two independent kernels, no edges: width 2 at level 0.
        let d = dag_desc(2, vec![]);
        let p = analyze_dag(&d).unwrap();
        assert_eq!(p.width, 2);
        assert!(!p.is_chain);
    }

    #[test]
    fn refinement_reclassifies_chains_only() {
        let chain = dag_desc(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(classify(&chain), AppClass::MkDag);
        assert_eq!(refine_class(&chain), AppClass::MkSeq);

        let fork = dag_desc(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(refine_class(&fork), AppClass::MkDag);

        // Non-DAG classes pass through untouched.
        let seq = toy_descriptor(3, ExecutionFlow::Sequence);
        assert_eq!(refine_class(&seq), AppClass::MkSeq);
    }

    #[test]
    fn out_of_order_edge_lists_converge() {
        // Edges listed sink-first still produce correct levels.
        let d = dag_desc(4, vec![(2, 3), (1, 2), (0, 1)]);
        let p = analyze_dag(&d).unwrap();
        assert_eq!(p.depth, 4);
        assert!(p.is_chain);
    }
}
