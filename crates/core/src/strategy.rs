//! The five partitioning strategies (§III-C of the paper).

use crate::class::AppClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A partitioning strategy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Strategy {
    /// **SP-Single** — static partitioning of a single kernel (Glinda):
    /// one GPU partition + the rest split over CPU threads. For SK-Loop
    /// the partitioning is computed for one iteration and reused.
    SpSingle,
    /// **SP-Unified** — all kernels regarded as one fused kernel with a
    /// single, unified partitioning point; no inter-kernel synchronisation,
    /// so each device keeps its data resident (one transfer in before the
    /// first kernel, one out after the last).
    SpUnified,
    /// **SP-Varied** — SP-Single applied kernel by kernel, giving each
    /// kernel its own partitioning point; requires a global synchronisation
    /// (and thus data transfers) between kernels.
    SpVaried,
    /// **DP-Dep** — dynamic partitioning, breadth-first scheduling with
    /// data-dependency-chain affinity; capability-blind.
    DpDep,
    /// **DP-Perf** — dynamic partitioning with a performance-aware
    /// scheduling policy (profiling warm-up + earliest-finisher).
    DpPerf,
}

impl Strategy {
    /// All five strategies.
    pub const ALL: [Strategy; 5] = [
        Strategy::SpSingle,
        Strategy::SpUnified,
        Strategy::SpVaried,
        Strategy::DpDep,
        Strategy::DpPerf,
    ];

    /// `true` for the static strategies.
    pub fn is_static(self) -> bool {
        matches!(
            self,
            Strategy::SpSingle | Strategy::SpUnified | Strategy::SpVaried
        )
    }

    /// `true` for the dynamic strategies.
    pub fn is_dynamic(self) -> bool {
        !self.is_static()
    }

    /// The dynamic strategy a static plan falls back to when adaptive
    /// re-solving is exhausted: SP-* → DP-Perf (the performance-aware
    /// policy, which Table I ranks for *every* class, so the escalation is
    /// always legal — see `ranking::escalation_target`). Dynamic
    /// strategies are their own sibling.
    pub fn dynamic_sibling(self) -> Strategy {
        match self {
            Strategy::SpSingle | Strategy::SpUnified | Strategy::SpVaried => Strategy::DpPerf,
            dynamic => dynamic,
        }
    }

    /// Is this strategy *applicable* to an application class at all
    /// (independently of how well it ranks)?
    ///
    /// * SP-Single targets the single-kernel classes (for multi-kernel
    ///   applications it is subsumed by SP-Unified/SP-Varied);
    /// * SP-Unified and SP-Varied target the multi-kernel sequence/loop
    ///   classes;
    /// * the dynamic strategies apply everywhere;
    /// * MK-DAG admits only the dynamic strategies (§III-C: the flow is too
    ///   dynamic for a static split without adding synchronisation).
    pub fn applicable(self, class: AppClass) -> bool {
        use AppClass::*;
        use Strategy::*;
        match self {
            SpSingle => matches!(class, SkOne | SkLoop),
            SpUnified | SpVaried => matches!(class, MkSeq | MkLoop),
            DpDep | DpPerf => true,
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::SpSingle => "SP-Single",
            Strategy::SpUnified => "SP-Unified",
            Strategy::SpVaried => "SP-Varied",
            Strategy::DpDep => "DP-Dep",
            Strategy::DpPerf => "DP-Perf",
        };
        write!(f, "{name}")
    }
}

/// How an application should be executed: one of the two single-device
/// baselines the paper compares against, one of the five strategies, or the
/// §V conversion that makes a dynamic runtime "behave like" a static plan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ExecutionConfig {
    /// OmpSs on the CPU only (the paper's Only-CPU baseline).
    OnlyCpu,
    /// OpenCL on the GPU only (the paper's Only-GPU baseline).
    OnlyGpu,
    /// One of the five partitioning strategies.
    Strategy(Strategy),
    /// §V: dynamic runtime with task counts converted from the static
    /// ratio — `k` instances pinned to the CPU, `l` to the GPU, all of
    /// equal size.
    ConvertedStatic,
}

impl fmt::Display for ExecutionConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionConfig::OnlyCpu => write!(f, "Only-CPU"),
            ExecutionConfig::OnlyGpu => write!(f, "Only-GPU"),
            ExecutionConfig::Strategy(s) => write!(f, "{s}"),
            ExecutionConfig::ConvertedStatic => write!(f, "Converted-Static"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_dynamic_split() {
        assert!(Strategy::SpSingle.is_static());
        assert!(Strategy::SpUnified.is_static());
        assert!(Strategy::SpVaried.is_static());
        assert!(Strategy::DpDep.is_dynamic());
        assert!(Strategy::DpPerf.is_dynamic());
    }

    #[test]
    fn dynamic_sibling_maps_static_to_dp_perf() {
        for s in Strategy::ALL {
            let sib = s.dynamic_sibling();
            assert!(sib.is_dynamic());
            if s.is_static() {
                assert_eq!(sib, Strategy::DpPerf);
            } else {
                assert_eq!(sib, s);
            }
        }
    }

    #[test]
    fn applicability_matrix() {
        use AppClass::*;
        use Strategy::*;
        for class in AppClass::ALL {
            assert!(DpDep.applicable(class));
            assert!(DpPerf.applicable(class));
        }
        assert!(SpSingle.applicable(SkOne));
        assert!(SpSingle.applicable(SkLoop));
        assert!(!SpSingle.applicable(MkSeq));
        assert!(SpUnified.applicable(MkSeq));
        assert!(SpUnified.applicable(MkLoop));
        assert!(!SpUnified.applicable(SkOne));
        assert!(!SpUnified.applicable(MkDag));
        assert!(SpVaried.applicable(MkLoop));
        assert!(!SpVaried.applicable(MkDag));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Strategy::SpSingle.to_string(), "SP-Single");
        assert_eq!(Strategy::DpPerf.to_string(), "DP-Perf");
        assert_eq!(ExecutionConfig::OnlyGpu.to_string(), "Only-GPU");
        assert_eq!(
            ExecutionConfig::Strategy(Strategy::SpVaried).to_string(),
            "SP-Varied"
        );
    }
}
