//! Profile persistence: recorded per-kernel rate estimates that can be
//! saved to disk and replayed into a [`crate::Planner`].
//!
//! The planner normally probes every kernel against the platform's roofline
//! model at plan time ([`crate::Planner::kernel_model`]). A [`ProfileStore`]
//! decouples *when rates were measured* from *when plans are built*: record
//! once (`Planner::record_profiles`), save the JSON, and later plans —
//! including misprediction experiments on a platform that has since changed,
//! or `matchmake --profile <path>` runs — reuse the recorded numbers instead
//! of re-probing. Recorded rates are raw measurements: the planner's
//! `profile_skew` is applied on top when the store is replayed, so one
//! recording serves both faithful and mispredicted planning.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Whole-device sustained rates for one kernel, items/s.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateProfile {
    /// Whole-CPU sustained rate.
    pub cpu_rate: f64,
    /// Whole-GPU sustained rate (kernel only, transfers excluded).
    pub gpu_rate: f64,
}

/// A set of recorded kernel profiles, keyed by kernel name.
///
/// Serialization is deterministic: the map is a `BTreeMap`, so the JSON key
/// order is the sorted kernel-name order regardless of recording order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileStore {
    /// Recorded rates per kernel name.
    pub kernels: BTreeMap<String, RateProfile>,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recorded rates for `kernel`, if present.
    pub fn get(&self, kernel: &str) -> Option<RateProfile> {
        self.kernels.get(kernel).copied()
    }

    /// Record (or overwrite) one kernel's rates.
    pub fn record(&mut self, kernel: &str, rates: RateProfile) {
        self.kernels.insert(kernel.to_string(), rates);
    }

    /// Number of recorded kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the store has no recordings.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile store serializes")
    }

    /// Parse from JSON text.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid profile store: {e:?}"))
    }

    /// Write the store to `path` as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a store previously written by [`ProfileStore::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ProfileStore {
        let mut s = ProfileStore::new();
        s.record(
            "grayscale",
            RateProfile {
                cpu_rate: 1.5e8,
                gpu_rate: 9.25e8,
            },
        );
        s.record(
            "hist",
            RateProfile {
                cpu_rate: 2.0e7,
                gpu_rate: 4.0e7,
            },
        );
        s
    }

    #[test]
    fn json_roundtrip_preserves_rates() {
        let s = store();
        let back = ProfileStore::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn json_is_deterministic_and_name_sorted() {
        let mut reordered = ProfileStore::new();
        // Insert in the opposite order; BTreeMap sorts on serialization.
        let s = store();
        reordered.record("hist", s.get("hist").unwrap());
        reordered.record("grayscale", s.get("grayscale").unwrap());
        assert_eq!(reordered.to_json(), s.to_json());
    }

    #[test]
    fn save_load_roundtrip() {
        let s = store();
        let dir = std::env::temp_dir().join("matchmaker-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiles.json");
        s.save(&path).unwrap();
        let back = ProfileStore::load(&path).unwrap();
        assert_eq!(back, s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(ProfileStore::from_json("not json").is_err());
    }
}
