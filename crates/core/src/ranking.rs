//! Table I: suitable strategies and their performance ranking per class.
//!
//! The ranking is *theoretical* — derived from Propositions 1–3 of the
//! paper — and the repository's experiment harness validates it
//! empirically, as §IV of the paper does:
//!
//! * **Proposition 1**: `DP-Perf ≥ DP-Dep` for all classes (a
//!   performance-aware policy distinguishes device capabilities).
//! * **Proposition 2**: for SK-One/SK-Loop, `SP-Single > DP-Perf ≥ DP-Dep`
//!   (the static optimum has no scheduling overhead).
//! * **Proposition 3**: for MK-Seq/MK-Loop, without required inter-kernel
//!   synchronisation `SP-Unified > DP-Perf ≥ DP-Dep ≥ SP-Varied`; with it,
//!   `SP-Varied > DP-Perf ≥ DP-Dep ≥ SP-Unified`.
//! * MK-DAG: only the dynamic strategies are feasible, `DP-Perf ≥ DP-Dep`.

use crate::class::AppClass;
use crate::descriptor::SyncPolicy;
use crate::strategy::Strategy;
use serde::{Deserialize, Serialize};

/// Whether the application requires inter-kernel synchronisation — the
/// discriminator in Proposition 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SyncMode {
    /// No global synchronisation required between kernels.
    WithoutSync,
    /// The application originally uses, or needs, inter-kernel sync.
    WithSync,
}

impl From<SyncPolicy> for SyncMode {
    fn from(p: SyncPolicy) -> Self {
        if p.between_kernels {
            SyncMode::WithSync
        } else {
            SyncMode::WithoutSync
        }
    }
}

/// The suitable strategies for a class, ordered best → worst (Table I).
pub fn ranking(class: AppClass, sync: SyncMode) -> Vec<Strategy> {
    use Strategy::*;
    match class {
        AppClass::SkOne | AppClass::SkLoop => vec![SpSingle, DpPerf, DpDep],
        AppClass::MkSeq | AppClass::MkLoop => match sync {
            SyncMode::WithoutSync => vec![SpUnified, DpPerf, DpDep, SpVaried],
            SyncMode::WithSync => vec![SpVaried, DpPerf, DpDep, SpUnified],
        },
        AppClass::MkDag => vec![DpPerf, DpDep],
    }
}

/// The best-ranked strategy — what the analyzer selects.
pub fn best_strategy(class: AppClass, sync: SyncMode) -> Strategy {
    ranking(class, sync)[0]
}

/// The position (0 = best) of a strategy in a class's ranking, if suitable.
pub fn rank_of(strategy: Strategy, class: AppClass, sync: SyncMode) -> Option<usize> {
    ranking(class, sync).iter().position(|&s| s == strategy)
}

/// The strategy an adaptive run escalates to when `from`'s static plan
/// keeps missing its balance target: the [`Strategy::dynamic_sibling`],
/// provided both `from` and the sibling appear in the class's Table I
/// ranking. Because DP-Perf is ranked for every class, escalation from any
/// *suitable* static strategy is always legal; `None` means `from` itself
/// was never a legal choice for this class (nothing to escalate from) —
/// the controller must not "launder" an unsuitable plan into a dynamic one.
pub fn escalation_target(from: Strategy, class: AppClass, sync: SyncMode) -> Option<Strategy> {
    rank_of(from, class, sync)?;
    let sibling = from.dynamic_sibling();
    rank_of(sibling, class, sync).map(|_| sibling)
}

#[cfg(test)]
mod tests {
    use super::*;
    use AppClass::*;
    use Strategy::*;

    #[test]
    fn table_i_rows() {
        assert_eq!(
            ranking(SkOne, SyncMode::WithoutSync),
            vec![SpSingle, DpPerf, DpDep]
        );
        assert_eq!(
            ranking(SkLoop, SyncMode::WithSync),
            vec![SpSingle, DpPerf, DpDep]
        );
        assert_eq!(
            ranking(MkSeq, SyncMode::WithoutSync),
            vec![SpUnified, DpPerf, DpDep, SpVaried]
        );
        assert_eq!(
            ranking(MkSeq, SyncMode::WithSync),
            vec![SpVaried, DpPerf, DpDep, SpUnified]
        );
        assert_eq!(
            ranking(MkLoop, SyncMode::WithoutSync),
            vec![SpUnified, DpPerf, DpDep, SpVaried]
        );
        assert_eq!(
            ranking(MkLoop, SyncMode::WithSync),
            vec![SpVaried, DpPerf, DpDep, SpUnified]
        );
        assert_eq!(ranking(MkDag, SyncMode::WithoutSync), vec![DpPerf, DpDep]);
    }

    #[test]
    fn best_strategies() {
        assert_eq!(best_strategy(SkOne, SyncMode::WithoutSync), SpSingle);
        assert_eq!(best_strategy(MkSeq, SyncMode::WithoutSync), SpUnified);
        assert_eq!(best_strategy(MkLoop, SyncMode::WithSync), SpVaried);
        assert_eq!(best_strategy(MkDag, SyncMode::WithSync), DpPerf);
    }

    #[test]
    fn proposition_1_dp_perf_above_dp_dep_everywhere() {
        for class in AppClass::ALL {
            for sync in [SyncMode::WithoutSync, SyncMode::WithSync] {
                let r = ranking(class, sync);
                let perf = r.iter().position(|&s| s == DpPerf).unwrap();
                let dep = r.iter().position(|&s| s == DpDep).unwrap();
                assert!(perf < dep, "{class} {sync:?}");
            }
        }
    }

    #[test]
    fn every_ranked_strategy_is_applicable() {
        for class in AppClass::ALL {
            for sync in [SyncMode::WithoutSync, SyncMode::WithSync] {
                for s in ranking(class, sync) {
                    assert!(
                        s.applicable(class),
                        "{s} ranked but not applicable to {class}"
                    );
                }
            }
        }
    }

    #[test]
    fn rank_of_lookup() {
        assert_eq!(rank_of(SpSingle, SkOne, SyncMode::WithoutSync), Some(0));
        assert_eq!(rank_of(SpUnified, MkSeq, SyncMode::WithSync), Some(3));
        assert_eq!(rank_of(SpSingle, MkDag, SyncMode::WithSync), None);
    }

    #[test]
    fn escalation_is_legal_from_every_ranked_static_strategy() {
        for class in AppClass::ALL {
            for sync in [SyncMode::WithoutSync, SyncMode::WithSync] {
                for s in ranking(class, sync) {
                    // Any ranked strategy (static or dynamic) has a legal
                    // escalation target, and it is always ranked too.
                    let target = escalation_target(s, class, sync);
                    assert_eq!(target, Some(s.dynamic_sibling()), "{s} in {class}");
                    if s.is_static() {
                        assert_eq!(target, Some(DpPerf));
                    }
                }
            }
        }
    }

    #[test]
    fn escalation_from_unsuitable_strategy_is_refused() {
        // SP-Single is not ranked for MK-DAG: there is no static plan to
        // escalate *from*, so the helper refuses.
        assert_eq!(escalation_target(SpSingle, MkDag, SyncMode::WithSync), None);
        assert_eq!(
            escalation_target(SpUnified, SkOne, SyncMode::WithoutSync),
            None
        );
    }

    #[test]
    fn sync_mode_from_policy() {
        assert_eq!(SyncMode::from(SyncPolicy::NONE), SyncMode::WithoutSync);
        assert_eq!(SyncMode::from(SyncPolicy::FULL), SyncMode::WithSync);
        // Iteration-only sync doesn't force per-kernel sync.
        assert_eq!(
            SyncMode::from(SyncPolicy {
                between_kernels: false,
                between_iterations: true
            }),
            SyncMode::WithoutSync
        );
    }
}
