//! Streaming simulation surfaces: run any [`RunSpec`] with a
//! [`SnapshotObserver`] attached, getting a per-epoch delta-encoded
//! metrics feed alongside the final report.
//!
//! These are the `Analyzer::simulate_*` variants behind
//! `matchmake run --metrics-stream <path>`: one `EpochSnapshot` JSON line
//! per committed taskwait barrier plus a final run-end line. The hard
//! invariant (fuzz oracle 9, `stream-fold-equivalence`) is that
//! [`fold_stream`](hetero_runtime::fold_stream) over the emitted lines
//! reproduces the end-of-run [`MetricsRegistry`]
//! (hetero_runtime::MetricsRegistry) byte-for-byte.

use crate::analyzer::Analyzer;
use crate::descriptor::AppDescriptor;
use crate::journal::RunSpec;
use crate::strategy::ExecutionConfig;
use hetero_runtime::{JournalError, JournalSink, RunReport, SnapshotObserver};

/// The strategy label streamed snapshots are tagged with, matching the
/// label `matchmake run`/`resume` use for journaled metrics exports.
pub const STREAM_STRATEGY_LABEL: &str = "journaled";

impl Analyzer<'_> {
    /// Simulate `spec` with a streaming [`SnapshotObserver`] attached.
    /// Returns the final report and the observer, whose
    /// [`stream()`](SnapshotObserver::stream) holds one `EpochSnapshot`
    /// JSON line per committed barrier (plus the run-end line) and whose
    /// [`registry()`](SnapshotObserver::registry) holds the cumulative
    /// end-of-run metrics.
    pub fn simulate_streamed(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        spec: &RunSpec,
    ) -> Result<(RunReport, SnapshotObserver), JournalError> {
        let mut obs = SnapshotObserver::new(self.planner().platform, STREAM_STRATEGY_LABEL);
        let mut sink = JournalSink::record();
        let report = self.simulate_journaled_observed(desc, config, spec, &mut sink, &mut obs)?;
        Ok((report, obs))
    }

    /// [`Analyzer::simulate_streamed`] with a live line sink: `sink` is
    /// called with each snapshot line the moment its barrier commits,
    /// before the run finishes — the live feed behind
    /// `matchmake run --metrics-stream`.
    pub fn simulate_streaming(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        spec: &RunSpec,
        sink: impl FnMut(&str) + 'static,
    ) -> Result<(RunReport, SnapshotObserver), JournalError> {
        let mut obs =
            SnapshotObserver::new(self.planner().platform, STREAM_STRATEGY_LABEL).with_sink(sink);
        let mut journal = JournalSink::record();
        let report =
            self.simulate_journaled_observed(desc, config, spec, &mut journal, &mut obs)?;
        Ok((report, obs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::tests_support::toy_descriptor;
    use crate::descriptor::ExecutionFlow;
    use crate::strategy::Strategy;
    use hetero_platform::{DeviceId, FaultSchedule, Platform, SimTime};
    use hetero_runtime::fold_stream;

    fn desc() -> AppDescriptor {
        let mut d = toy_descriptor(2, ExecutionFlow::Sequence);
        d.buffers[0].items = 1 << 18;
        for k in &mut d.kernels {
            k.domain = 1 << 18;
        }
        d.sync.between_kernels = true;
        d
    }

    #[test]
    fn streamed_run_folds_back_to_its_registry() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        let config = ExecutionConfig::Strategy(Strategy::SpVaried);
        let schedule = FaultSchedule::new(29).with_flaky(
            DeviceId(1),
            0.3,
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        let (report, obs) = analyzer
            .simulate_streamed(&desc(), config, &RunSpec::faulty(schedule))
            .expect("streamed run");
        assert!(!report.makespan.is_zero());
        assert!(obs.lines().len() >= 2, "per-epoch lines plus run-end line");
        let folded = fold_stream(&obs.stream()).expect("stream folds");
        assert_eq!(folded.to_json(), obs.registry().to_json());
    }

    #[test]
    fn live_sink_sees_every_line_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        let config = ExecutionConfig::Strategy(Strategy::SpVaried);
        let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        let tap = seen.clone();
        let (_, obs) = analyzer
            .simulate_streaming(&desc(), config, &RunSpec::plain(), move |line| {
                tap.borrow_mut().push(line.to_string());
            })
            .expect("streaming run");
        assert_eq!(*seen.borrow(), obs.lines());
    }
}
