//! The scenario fuzzing harness (DESIGN.md §8.5, PROPERTY-TESTS.md).
//!
//! Every hand-written test in this repository exercises a scenario someone
//! thought of. This module generates the ones nobody thought of: a
//! seed-deterministic [`Scenario`] bundles a random application DAG, a
//! random platform, a random-but-valid fault schedule and an execution
//! config; [`run_oracles`] checks the full invariant bank against it
//! (differential native execution, the blame identity, the adaptive
//! no-regression guarantees, double-run and trace-replay determinism);
//! [`shrink`] greedily minimizes any failing scenario to a small
//! reproducer; and the corpus functions persist failures as JSON under
//! `tests/fuzz_corpus/`, where `tests/fuzz_corpus.rs` replays them as
//! ordinary regression tests.
//!
//! Everything is deterministic: `Scenario::generate(seed)` is a pure
//! function of `seed`, oracle verdicts are pure functions of the scenario,
//! and the campaign summary renders byte-identically across runs — which
//! is itself one of the invariants CI checks.

use crate::descriptor::{AccessPattern, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};
use crate::{classify, Analyzer, AppDescriptor, ExecutionConfig, Planner, Strategy};
use hetero_platform::fuzz::{
    chance, gen_fault_schedule, gen_platform_spec, pick, range_f64, PlatformSpec,
};
use hetero_platform::{
    DeviceKind, Efficiency, FaultEvent, FaultRng, FaultSchedule, FaultTrace, KernelProfile,
    Precision, RetryPolicy, SimTime,
};
use hetero_runtime::{
    check_blame_identity, check_identical, run_native, AccessMode, AdaptConfig, BufferId,
    ExecOrder, HealthConfig, HostBuffers, KernelFn, OracleKind, OracleViolation, ReplanConfig,
    TimeBreakdown,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One generated fuzz scenario: everything needed to reproduce a run. The
/// whole struct serializes to JSON (that is the corpus format), so the
/// platform is stored as a [`PlatformSpec`] and rebuilt on use.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// The generator seed this scenario was derived from.
    pub seed: u64,
    /// Human-readable name (`fuzz-<seed>` for generated scenarios).
    pub name: String,
    /// The platform, in buildable/serializable form.
    pub platform: PlatformSpec,
    /// The generated application.
    pub descriptor: AppDescriptor,
    /// The generated fault schedule (valid for `platform`).
    pub schedule: FaultSchedule,
    /// The execution configuration under test.
    pub config: ExecutionConfig,
}

impl Scenario {
    /// Generate the scenario for `seed`: platform, app DAG and config come
    /// straight off the seed's RNG stream; the fault schedule's windows are
    /// sized against the scenario's own healthy makespan so faults land
    /// *inside* the run instead of after it.
    pub fn generate(seed: u64) -> Scenario {
        let mut rng = FaultRng::new(seed);
        let platform_spec = gen_platform_spec(&mut rng);
        let descriptor = gen_descriptor(&mut rng);
        let config = gen_config(&mut rng, &descriptor);
        let platform = platform_spec.build();
        let healthy = Analyzer::new(&platform).simulate(&descriptor, config);
        let horizon = healthy.makespan.max(SimTime::from_micros(10));
        let schedule = gen_fault_schedule(&mut rng, &platform, horizon);
        Scenario {
            seed,
            name: format!("fuzz-{seed:016x}"),
            platform: platform_spec,
            descriptor,
            schedule,
            config,
        }
    }

    /// Whether the scenario is internally consistent: the descriptor
    /// validates, the schedule validates against the platform, and the
    /// config is applicable to the app's class. The shrinker discards any
    /// mutation that breaks this.
    pub fn is_valid(&self) -> bool {
        if self.platform.accels.is_empty() || self.descriptor.validate().is_err() {
            return false;
        }
        if self.schedule.validate_for(&self.platform.build()).is_err() {
            return false;
        }
        match self.config {
            ExecutionConfig::Strategy(s) => s.applicable(classify(&self.descriptor)),
            _ => true,
        }
    }

    /// Total task-instance count of one planned run — the "tasks" a shrunk
    /// reproducer is measured in.
    pub fn task_count(&self) -> usize {
        let platform = self.platform.build();
        let planner = Planner::new(&platform);
        planner
            .plan(&self.descriptor, self.config)
            .program
            .task_count()
    }
}

// ---------------------------------------------------------------------------
// Application generator
// ---------------------------------------------------------------------------

/// Generate a random app descriptor: 1–4 kernels over a shared domain of
/// 256–4096 items, wired as a chain (`Sequence`/`Loop`) or a fork–join
/// `Dag`; buffer `k+1` is written by kernel `k` (Out or InOut), buffer 0 is
/// the input. Item width is 4 or 8 bytes, one kernel may carry per-item
/// weights (the imbalanced-workload path), and the sync policy is drawn at
/// random. The shape mirrors the SK/MK structure of the paper's corpus at
/// fuzz-friendly sizes.
pub fn gen_descriptor(rng: &mut FaultRng) -> AppDescriptor {
    let nk = 1 + pick(rng, 4);
    let domain = 1u64 << (8 + pick(rng, 5)); // 256, 512, …, 4096
    let item_bytes = [4u64, 8][pick(rng, 2)];
    let buffers: Vec<BufferSpec> = (0..=nk)
        .map(|b| BufferSpec {
            name: format!("b{b}"),
            items: domain,
            item_bytes,
        })
        .collect();

    // Flow: chains iterate or run once; a fork–join DAG needs ≥ 3 kernels.
    let flow = match pick(rng, if nk >= 3 { 3 } else { 2 }) {
        0 => ExecutionFlow::Sequence,
        1 => ExecutionFlow::Loop {
            iterations: 2 + pick(rng, 3) as u32,
        },
        _ => {
            let mut edges = Vec::new();
            for mid in 1..nk - 1 {
                edges.push((0, mid));
                edges.push((mid, nk - 1));
            }
            ExecutionFlow::Dag { edges }
        }
    };
    let is_dag = matches!(flow, ExecutionFlow::Dag { .. });

    let mut kernels = Vec::with_capacity(nk);
    for k in 0..nk {
        // Reads: chain position k (or the fork/join buffers for a DAG);
        // writes: buffer k+1.
        let mut accesses = Vec::new();
        if is_dag && k == nk - 1 {
            for mid in 1..nk - 1 {
                accesses.push(AccessPattern::part(mid + 1, AccessMode::In));
            }
        } else if is_dag && k > 0 {
            accesses.push(AccessPattern::part(1, AccessMode::In));
        } else {
            accesses.push(AccessPattern::part(k, AccessMode::In));
            if k > 0 && chance(rng, 0.3) {
                accesses.push(AccessPattern::part(0, AccessMode::In));
            }
        }
        let wmode = if chance(rng, 0.5) {
            AccessMode::Out
        } else {
            AccessMode::InOut
        };
        accesses.push(AccessPattern::part(k + 1, wmode));

        let reads = accesses.len() as f64; // every access moves item_bytes
        kernels.push(KernelSpec {
            name: format!("k{k}"),
            profile: KernelProfile {
                flops_per_item: range_f64(rng, 50.0, 5000.0),
                bytes_per_item: item_bytes as f64 * reads,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency::uniform(range_f64(rng, 0.2, 0.7)),
                gpu_efficiency: Efficiency::uniform(range_f64(rng, 0.3, 0.8)),
            },
            domain,
            accesses,
            weights: None,
        });
    }

    // One kernel may be imbalanced (kept small so corpus JSON stays small).
    if domain <= 512 && chance(rng, 0.25) {
        let k = pick(rng, nk);
        kernels[k].weights = Some(
            (0..domain)
                .map(|_| range_f64(rng, 0.1, 4.0) as f32)
                .collect(),
        );
    }

    AppDescriptor {
        name: "fuzz-app".into(),
        buffers,
        kernels,
        flow,
        sync: SyncPolicy {
            between_kernels: chance(rng, 0.4),
            between_iterations: chance(rng, 0.6),
        },
    }
}

/// Pick a random execution config applicable to `desc` (both baselines,
/// every applicable strategy, and the §V static→dynamic conversion).
pub fn gen_config(rng: &mut FaultRng, desc: &AppDescriptor) -> ExecutionConfig {
    let class = classify(desc);
    let mut pool = vec![
        ExecutionConfig::OnlyCpu,
        ExecutionConfig::OnlyGpu,
        ExecutionConfig::ConvertedStatic,
    ];
    pool.extend(
        Strategy::ALL
            .iter()
            .filter(|s| s.applicable(class))
            .map(|&s| ExecutionConfig::Strategy(s)),
    );
    pool[pick(rng, pool.len())]
}

// ---------------------------------------------------------------------------
// Native kernels for the differential oracle
// ---------------------------------------------------------------------------

/// Build executable host kernels for a *generated* descriptor. Each kernel
/// computes, for every item `i` of its written buffer's span:
/// `out[i] = c·(Σ inputs[i] [+ out[i] if InOut]) + c + (i mod 97)/8`,
/// replicated across the item's floats with a per-float offset. The op is
/// per-item pure (reads only aligned item `i`), so any partitioning in any
/// execution order must produce identical results — that is exactly the
/// property the differential oracle checks.
pub fn native_kernels(desc: &AppDescriptor) -> Vec<KernelFn<'static>> {
    desc.kernels
        .iter()
        .enumerate()
        .map(|(k, spec)| {
            let ins: Vec<usize> = spec
                .accesses
                .iter()
                .filter(|a| a.mode().reads())
                .map(|a| a.buffer())
                .collect();
            let outs: Vec<usize> = spec
                .accesses
                .iter()
                .filter(|a| a.mode().writes())
                .map(|a| a.buffer())
                .collect();
            // Per-kernel coefficient; < 0.5 keeps chained values bounded.
            let c = 0.25 + 0.03125 * (k % 8) as f32;
            let f: KernelFn<'static> = Box::new(move |hb: &HostBuffers, task| {
                for &o in &outs {
                    let span = task
                        .accesses
                        .iter()
                        .find(|a| a.region.buffer == BufferId(o) && a.mode.writes())
                        .expect("task writes its kernel's output buffer")
                        .region
                        .span;
                    let (s, e) = (span.start as usize, span.end as usize);
                    // Gather input sums first: `get`/`get_mut` on the same
                    // buffer would alias, so the InOut self-read happens
                    // against the mutable borrow below.
                    let mut sums = vec![0f32; e - s];
                    for &ib in ins.iter().filter(|&&ib| ib != o) {
                        let fpi = hb.floats_per_item(BufferId(ib));
                        let buf = hb.get(BufferId(ib));
                        for (i, acc) in sums.iter_mut().enumerate() {
                            *acc += buf[(s + i) * fpi];
                        }
                    }
                    let self_in = ins.contains(&o);
                    let fpo = hb.floats_per_item(BufferId(o));
                    let mut out = hb.get_mut(BufferId(o));
                    for i in s..e {
                        let mut acc = sums[i - s];
                        if self_in {
                            acc += out[i * fpo];
                        }
                        let v = c * acc + c + 0.125 * ((i % 97) as f32);
                        for j in 0..fpo {
                            out[i * fpo + j] = v + j as f32 * 0.25;
                        }
                    }
                }
            });
            f
        })
        .collect()
}

/// Deterministic initial contents for every buffer: exact-in-f32 values so
/// the differential comparison starts from identical bits everywhere.
pub fn native_init(hb: &HostBuffers, n_buffers: usize) {
    for b in 0..n_buffers {
        let mut v = hb.get_mut(BufferId(b));
        for (x, slot) in v.iter_mut().enumerate() {
            *slot = 1.0 + (x % 61) as f32 * 0.015625;
        }
    }
}

// ---------------------------------------------------------------------------
// The oracle bank
// ---------------------------------------------------------------------------

/// Deliberate invariant breaks for self-testing the harness: the fuzzer
/// must be able to catch a bug planted in its own pipeline, and the
/// shrinker-soundness proptest shrinks against these. `NONE` for real
/// fuzzing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedBreak {
    /// Zero the largest blame component before the identity check —
    /// simulates an executor path that forgets to account a category.
    pub skip_blame_component: bool,
    /// Perturb the second run's makespan before the double-run comparison —
    /// simulates hidden nondeterminism.
    pub break_double_run: bool,
    /// Perturb the first resumed report's makespan before the crash–resume
    /// comparison — simulates a resume that reconstructs the wrong state.
    pub break_resume: bool,
    /// Drop the final run-end snapshot line before folding the metrics
    /// stream — simulates an observer that loses a delta, so the folded
    /// registry misses the run-end-only series.
    pub break_stream_fold: bool,
    /// Drop the last terminal outcome before the shed-or-serve check —
    /// simulates a service that silently loses a request under overload.
    pub break_service: bool,
}

impl InjectedBreak {
    /// No injected breaks (real fuzzing).
    pub const NONE: InjectedBreak = InjectedBreak {
        skip_blame_component: false,
        break_double_run: false,
        break_resume: false,
        break_stream_fold: false,
        break_service: false,
    };
}

/// Zero the largest component in the breakdown (used by
/// [`InjectedBreak::skip_blame_component`]). Returns `false` if every
/// component is already zero.
fn zero_largest_component(bd: &mut TimeBreakdown) -> bool {
    let mut best: Option<(usize, &'static str, SimTime)> = None;
    for (d, b) in bd.per_device.iter().enumerate() {
        for (name, v) in b.components() {
            if best.is_none_or(|(_, _, bv)| v > bv) {
                best = Some((d, name, v));
            }
        }
    }
    let Some((d, name, v)) = best else {
        return false;
    };
    if v == SimTime::ZERO {
        return false;
    }
    let b = &mut bd.per_device[d];
    match name {
        "compute" => b.compute = SimTime::ZERO,
        "transfer" => b.transfer = SimTime::ZERO,
        "link_degraded" => b.link_degraded = SimTime::ZERO,
        "scheduling" => b.scheduling = SimTime::ZERO,
        "adaptation" => b.adaptation = SimTime::ZERO,
        "replan" => b.replan = SimTime::ZERO,
        "fault_loss" => b.fault_loss = SimTime::ZERO,
        "hedge_waste" => b.hedge_waste = SimTime::ZERO,
        "rollback" => b.rollback = SimTime::ZERO,
        "verify" => b.verify = SimTime::ZERO,
        "dead" => b.dead = SimTime::ZERO,
        "idle" => b.idle = SimTime::ZERO,
        _ => unreachable!("components() names are exhaustive"),
    }
    true
}

/// The static-hybrid strategies the adaptive controller can actually
/// correct (it re-solves their `AdaptPlan`; dynamic strategies have none).
fn is_static_hybrid(config: ExecutionConfig) -> bool {
    matches!(
        config,
        ExecutionConfig::Strategy(Strategy::SpSingle)
            | ExecutionConfig::Strategy(Strategy::SpUnified)
            | ExecutionConfig::Strategy(Strategy::SpVaried)
    )
}

/// Run the full oracle bank on `scenario`, returning every violation plus
/// per-oracle check counts (for the campaign summary).
pub fn run_oracles_counted(
    scenario: &Scenario,
    inject: &InjectedBreak,
) -> (Vec<OracleViolation>, BTreeMap<&'static str, u64>) {
    let mut violations = Vec::new();
    let mut checks: BTreeMap<&'static str, u64> = BTreeMap::new();
    let count = |k: OracleKind, checks: &mut BTreeMap<&'static str, u64>| {
        *checks.entry(k.name()).or_insert(0) += 1;
    };
    let platform = scenario.platform.build();
    let analyzer = Analyzer::new(&platform);
    let planner = Planner::new(&platform);
    let desc = &scenario.descriptor;
    let config = scenario.config;
    let policy = RetryPolicy::default();

    // (a) Differential: simulated plan lowerings execute natively to the
    // same result as the whole-domain reference, in both execution orders.
    count(OracleKind::Differential, &mut checks);
    {
        let kernels = native_kernels(desc);
        let run = |config: ExecutionConfig, order: ExecOrder| -> Vec<Vec<f32>> {
            let plan = planner.plan(desc, config);
            let hb = HostBuffers::for_program(&plan.program);
            native_init(&hb, desc.buffers.len());
            run_native(&plan.program, &kernels, &hb, order);
            (0..desc.buffers.len())
                .map(|b| hb.snapshot(BufferId(b)))
                .collect()
        };
        let reference = run(ExecutionConfig::OnlyGpu, ExecOrder::Submission);
        'orders: for order in [ExecOrder::Submission, ExecOrder::ReadyLifo] {
            let got = run(config, order);
            for (b, (g, w)) in got.iter().zip(&reference).enumerate() {
                for (i, (x, y)) in g.iter().zip(w).enumerate() {
                    if (x - y).abs() > 1e-4 * y.abs().max(1.0) {
                        violations.push(OracleViolation::new(
                            OracleKind::Differential,
                            format!(
                                "{config} ({order:?}): buffer {b} item {i}: {x} vs reference {y}"
                            ),
                        ));
                        break 'orders;
                    }
                }
            }
        }
    }

    // (b) Blame identity on the healthy and the faulty path, plus
    // (d) double-run determinism of the faulty path.
    let faulty = analyzer.simulate_faulty(desc, config, &scenario.schedule, policy);
    {
        count(OracleKind::BlameIdentity, &mut checks);
        let healthy = analyzer.simulate(desc, config);
        if let Err(v) = check_blame_identity(&healthy) {
            violations.push(v);
        }
        count(OracleKind::BlameIdentity, &mut checks);
        let mut blamed = faulty.clone();
        if inject.skip_blame_component {
            zero_largest_component(&mut blamed.breakdown);
        }
        if let Err(v) = check_blame_identity(&blamed) {
            violations.push(v);
        }

        count(OracleKind::DoubleRunDeterminism, &mut checks);
        let mut second = analyzer.simulate_faulty(desc, config, &scenario.schedule, policy);
        if inject.break_double_run {
            second.makespan += SimTime::from_nanos(1);
        }
        if let Err(v) = check_identical(
            OracleKind::DoubleRunDeterminism,
            "faulty double run",
            &faulty,
            &second,
        ) {
            violations.push(v);
        }
    }

    // (d) FaultTrace record/replay determinism: the recorded disturbance,
    // replayed with triggering disabled, reproduces the run.
    count(OracleKind::ReplayDeterminism, &mut checks);
    {
        let (recorded, trace) =
            analyzer.record_fault_trace(desc, config, &scenario.schedule, policy);
        match FaultTrace::from_json(&trace.to_json()) {
            Err(e) => violations.push(OracleViolation::new(
                OracleKind::ReplayDeterminism,
                format!("trace JSON round-trip failed: {e}"),
            )),
            Ok(parsed) if parsed != trace => violations.push(OracleViolation::new(
                OracleKind::ReplayDeterminism,
                "trace JSON round-trip changed the trace",
            )),
            Ok(parsed) => {
                let replayed =
                    analyzer.simulate_faulty(desc, config, &parsed.replay_schedule(), policy);
                if replayed.makespan != recorded.makespan
                    || replayed.breakdown != recorded.breakdown
                    || replayed.faults.task_faults != recorded.faults.task_faults
                    || replayed.faults.failovers != recorded.faults.failovers
                {
                    violations.push(OracleViolation::new(
                        OracleKind::ReplayDeterminism,
                        format!(
                            "replay diverged: makespan {} vs {}, task_faults {} vs {}",
                            replayed.makespan,
                            recorded.makespan,
                            replayed.faults.task_faults,
                            recorded.faults.task_faults
                        ),
                    ));
                } else if replayed.faults.correlated_triggers != 0 {
                    violations.push(OracleViolation::new(
                        OracleKind::ReplayDeterminism,
                        "replay re-triggered correlated faults",
                    ));
                }
            }
        }
    }

    // (c) Adaptive no-regression oracles, on the ProfilePerturb-only slice
    // of the schedule (the misprediction envelope PR 3/5 prove the
    // guarantees for) and only for static hybrid strategies — the only
    // plans the controller can re-solve.
    // The perturbation windows are normalized to whole-run span: the
    // misprediction planner samples `profile_factor` at t=0 (a window that
    // opens later never mispredicts the plan), and the no-regression
    // theorems are stated for a *persistently* wrong profile, not one that
    // flickers mid-run.
    let perturb: Vec<FaultEvent> = scenario
        .schedule
        .events
        .iter()
        .filter_map(|e| match e {
            FaultEvent::ProfilePerturb { dev, factor, .. } => Some(FaultEvent::ProfilePerturb {
                dev: *dev,
                factor: *factor,
                from: SimTime::ZERO,
                until: SimTime::MAX,
            }),
            _ => None,
        })
        .collect();
    if !perturb.is_empty() && is_static_hybrid(config) {
        let pschedule = FaultSchedule {
            seed: scenario.schedule.seed,
            events: perturb.clone(),
            domains: Vec::new(),
            synthesized_after: None,
        };
        let health = HealthConfig::disabled();

        count(OracleKind::AdaptiveNeverLoses, &mut checks);
        let mis = analyzer.simulate_adaptive(
            desc,
            config,
            &pschedule,
            policy,
            &health,
            &AdaptConfig::disabled(),
        );
        let adaptive = analyzer.simulate_adaptive(
            desc,
            config,
            &pschedule,
            policy,
            &health,
            &AdaptConfig {
                escalation: false,
                ..AdaptConfig::enabled_default()
            },
        );
        if adaptive.makespan.as_secs_f64() > mis.makespan.as_secs_f64() * (1.0 + 1e-9) {
            violations.push(OracleViolation::new(
                OracleKind::AdaptiveNeverLoses,
                format!(
                    "adaptive {} > mispredicted {}",
                    adaptive.makespan, mis.makespan
                ),
            ));
        }
        if let Err(v) = check_blame_identity(&adaptive) {
            violations.push(v);
        }

        // De-escalation is proven for *severely* under-estimated devices
        // (the stale profile drowns a device; see `correlated_faults.rs`):
        // gate on every factor ≤ 0.5. Mild skews (0.5..1.0) can make the
        // reinstated static plan and the escalated one trade places within
        // noise, which is outside the guarantee.
        let underestimated = perturb.iter().all(|e| match e {
            FaultEvent::ProfilePerturb { factor, .. } => *factor <= 0.5,
            _ => true,
        });
        if underestimated {
            count(OracleKind::DeescalationNeverLoses, &mut checks);
            let stay = AdaptConfig {
                repartition: false,
                max_resolves: 1,
                reinstate_after: 0,
                ..AdaptConfig::enabled_default()
            };
            let stayed =
                analyzer.simulate_adaptive(desc, config, &pschedule, policy, &health, &stay);
            let deescalated = analyzer.simulate_adaptive(
                desc,
                config,
                &pschedule,
                policy,
                &health,
                &AdaptConfig {
                    reinstate_after: 2,
                    ..stay
                },
            );
            if deescalated.makespan.as_secs_f64() > stayed.makespan.as_secs_f64() * (1.0 + 1e-9) {
                violations.push(OracleViolation::new(
                    OracleKind::DeescalationNeverLoses,
                    format!(
                        "de-escalated {} > stayed escalated {}",
                        deescalated.makespan, stayed.makespan
                    ),
                ));
            }
        }
    }

    // (e) Plan repair never loses to naive host failover, on the
    // permanent-dropout slice of the schedule (the envelope PR 7 proves
    // the guard for: repair applies a rebinding only when the model
    // predicts it strictly beats the chunk-by-chunk failover of the same
    // wave) and only for static hybrid strategies — dynamic chunks are
    // re-placed by the scheduler and repair leaves them alone.
    let dropouts: Vec<FaultEvent> = scenario
        .schedule
        .events
        .iter()
        .filter(|e| matches!(e, FaultEvent::DeviceDropout { .. }))
        .cloned()
        .collect();
    if !dropouts.is_empty() && is_static_hybrid(config) {
        let dschedule = FaultSchedule {
            seed: scenario.schedule.seed,
            events: dropouts,
            domains: Vec::new(),
            synthesized_after: None,
        };
        let health = HealthConfig::disabled();
        count(OracleKind::RepairNeverLoses, &mut checks);
        let naive = analyzer.simulate_resilient(desc, config, &dschedule, policy, &health);
        // Adaptation stays off so the only delta between the runs is the
        // repair subsystem itself.
        // The repair subsystem giving up (budget exhausted, nothing to
        // re-plan onto) is the documented fall-back to naive failover, not
        // a regression — the guarantee covers applied repairs (the `Ok`s).
        if let Ok(repaired) = analyzer.simulate_repairing(
            desc,
            config,
            &dschedule,
            policy,
            &health,
            &AdaptConfig::disabled(),
            &ReplanConfig::enabled_default(),
        ) {
            if repaired.makespan.as_secs_f64() > naive.makespan.as_secs_f64() * (1.0 + 1e-9) {
                violations.push(OracleViolation::new(
                    OracleKind::RepairNeverLoses,
                    format!(
                        "repaired {} > naive failover {}",
                        repaired.makespan, naive.makespan
                    ),
                ));
            }
            if let Err(v) = check_blame_identity(&repaired) {
                violations.push(v);
            }
        }
    }

    // (f) Crash–resume equivalence: a journaled run must be byte-identical
    // to its unjournaled twin, and for every kill point — after each
    // committed record (the last one additionally torn) plus one mid-run
    // time kill — crash + resume must reproduce the uninterrupted run's
    // report *and* regenerate the identical journal text. Checked on the
    // faulty path always, and on the repairing path when the schedule
    // carries a permanent dropout (crash × plan-repair).
    {
        use crate::journal::RunSpec;
        use hetero_platform::KillSchedule;
        use hetero_runtime::{JournalError, JournalSink, RunReport};

        let check_crash = |spec: &RunSpec,
                           what: &str,
                           twin: Option<&RunReport>,
                           violations: &mut Vec<OracleViolation>,
                           checks: &mut BTreeMap<&'static str, u64>| {
            *checks
                .entry(OracleKind::CrashResumeEquivalence.name())
                .or_insert(0) += 1;
            let mut full = JournalSink::record();
            let reference = match analyzer.simulate_journaled(desc, config, spec, &mut full) {
                Ok(r) => r,
                Err(e) => {
                    violations.push(OracleViolation::new(
                        OracleKind::CrashResumeEquivalence,
                        format!("{what}: uninterrupted journaled run failed: {e}"),
                    ));
                    return;
                }
            };
            if let Some(twin) = twin {
                if let Err(v) = check_identical(
                    OracleKind::CrashResumeEquivalence,
                    &format!("{what}: journaled vs unjournaled"),
                    twin,
                    &reference,
                ) {
                    violations.push(v);
                    return;
                }
            }
            let full_text = full.text();
            let records = full.records();
            let mut kills: Vec<(String, KillSchedule)> = (0..records)
                .map(|k| {
                    (
                        format!("killed after {k} records"),
                        KillSchedule::after_records(k),
                    )
                })
                .collect();
            if records > 0 {
                kills.push((
                    format!("killed torn after {} records", records - 1),
                    KillSchedule::after_records(records - 1).torn(),
                ));
            }
            kills.push((
                "killed mid-run".into(),
                KillSchedule::at_time(reference.makespan / 2),
            ));
            for (i, (label, kill)) in kills.into_iter().enumerate() {
                let mut sink = JournalSink::record_with_kill(kill);
                match analyzer.simulate_journaled(desc, config, spec, &mut sink) {
                    Err(JournalError::Killed { .. }) => {}
                    // A kill point past the end of the run never fires; the
                    // complete journal must still resume cleanly below.
                    Ok(_) => {}
                    Err(e) => {
                        violations.push(OracleViolation::new(
                            OracleKind::CrashResumeEquivalence,
                            format!("{what} ({label}): journaled run failed: {e}"),
                        ));
                        continue;
                    }
                }
                match analyzer.resume(&sink.text()) {
                    Err(e) => violations.push(OracleViolation::new(
                        OracleKind::CrashResumeEquivalence,
                        format!("{what} ({label}): resume failed: {e}"),
                    )),
                    Ok((mut resumed, resumed_text)) => {
                        if inject.break_resume && i == 0 {
                            resumed.makespan += SimTime::from_nanos(1);
                        }
                        if let Err(v) = check_identical(
                            OracleKind::CrashResumeEquivalence,
                            &format!("{what} ({label})"),
                            &reference,
                            &resumed,
                        ) {
                            violations.push(v);
                        } else if resumed_text != full_text {
                            violations.push(OracleViolation::new(
                                OracleKind::CrashResumeEquivalence,
                                format!("{what} ({label}): regenerated journal text diverges"),
                            ));
                        }
                    }
                }
            }
        };

        check_crash(
            &RunSpec::faulty(scenario.schedule.clone()),
            "faulty",
            Some(&faulty),
            &mut violations,
            &mut checks,
        );
        let dropouts: Vec<FaultEvent> = scenario
            .schedule
            .events
            .iter()
            .filter(|e| matches!(e, FaultEvent::DeviceDropout { .. }))
            .cloned()
            .collect();
        if !dropouts.is_empty() && is_static_hybrid(config) {
            let dschedule = FaultSchedule {
                seed: scenario.schedule.seed,
                events: dropouts,
                domains: Vec::new(),
                synthesized_after: None,
            };
            check_crash(
                &RunSpec::repairing(
                    dschedule,
                    HealthConfig::disabled(),
                    AdaptConfig::disabled(),
                    ReplanConfig::enabled_default(),
                ),
                "repairing",
                None,
                &mut violations,
                &mut checks,
            );
        }
    }

    // (g) Stream-fold equivalence: folding the per-epoch `EpochSnapshot`
    // delta stream emitted by a `SnapshotObserver` reproduces the
    // end-of-run `MetricsRegistry` JSON byte-for-byte, on every execution
    // path this scenario can exercise (plain, faulty, resilient always;
    // adaptive and repairing for static hybrid configs, where the
    // controller and re-planner apply).
    {
        use crate::journal::RunSpec;
        use hetero_runtime::fold_stream;

        let mut first_stream_check = true;
        let mut check_stream =
            |spec: &RunSpec,
             what: &str,
             violations: &mut Vec<OracleViolation>,
             checks: &mut BTreeMap<&'static str, u64>| {
                *checks
                    .entry(OracleKind::StreamFoldEquivalence.name())
                    .or_insert(0) += 1;
                let break_here = inject.break_stream_fold && first_stream_check;
                first_stream_check = false;
                match analyzer.simulate_streamed(desc, config, spec) {
                    Err(e) => violations.push(OracleViolation::new(
                        OracleKind::StreamFoldEquivalence,
                        format!("{what}: streamed run failed: {e}"),
                    )),
                    Ok((_, obs)) => {
                        let mut stream = obs.stream();
                        if break_here {
                            // Lose the final (run-end) delta line.
                            let cut = stream
                                .trim_end_matches('\n')
                                .rfind('\n')
                                .map(|i| i + 1)
                                .unwrap_or(0);
                            stream.truncate(cut);
                        }
                        match fold_stream(&stream) {
                            Err(e) => violations.push(OracleViolation::new(
                                OracleKind::StreamFoldEquivalence,
                                format!("{what}: stream does not fold: {e}"),
                            )),
                            Ok(folded) => {
                                let (fa, fb) = (folded.to_json(), obs.registry().to_json());
                                if fa != fb {
                                    let at = fa
                                        .bytes()
                                        .zip(fb.bytes())
                                        .position(|(x, y)| x != y)
                                        .unwrap_or_else(|| fa.len().min(fb.len()));
                                    let lo = at.saturating_sub(40);
                                    violations.push(OracleViolation::new(
                                        OracleKind::StreamFoldEquivalence,
                                        format!(
                                            "{what}: folded stream diverges from the end-of-run \
                                         registry at byte {at}: fold ..{:?}.. vs registry \
                                         ..{:?}..",
                                            &fa[lo..fa.len().min(at + 40)],
                                            &fb[lo..fb.len().min(at + 40)],
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
            };

        check_stream(&RunSpec::plain(), "plain", &mut violations, &mut checks);
        check_stream(
            &RunSpec::faulty(scenario.schedule.clone()),
            "faulty",
            &mut violations,
            &mut checks,
        );
        check_stream(
            &RunSpec::resilient(scenario.schedule.clone(), HealthConfig::monitored()),
            "resilient",
            &mut violations,
            &mut checks,
        );
        if is_static_hybrid(config) {
            check_stream(
                &RunSpec::adaptive(
                    scenario.schedule.clone(),
                    HealthConfig::monitored(),
                    AdaptConfig::enabled_default(),
                ),
                "adaptive",
                &mut violations,
                &mut checks,
            );
            check_stream(
                &RunSpec::repairing(
                    scenario.schedule.clone(),
                    HealthConfig::monitored(),
                    AdaptConfig::disabled(),
                    ReplanConfig::enabled_default(),
                ),
                "repairing",
                &mut violations,
                &mut checks,
            );
        }
    }

    // (h) Shed-or-serve: a small chaos-burst service load seeded from the
    // scenario's fault seed, run twice on the scenario's platform. Every
    // arrival must get exactly one terminal response, in arrival order,
    // never before it arrived — and the two same-seed runs must agree
    // byte-for-byte on both the responses and the metrics registry.
    count(OracleKind::ShedOrServe, &mut checks);
    {
        use crate::service::{
            check_shed_or_serve, encode_response, generate_load, ChaosSchedule, LoadConfig,
            PlanService, ServiceConfig,
        };
        let seed = scenario.schedule.seed;
        let load = LoadConfig {
            requests: 48,
            seed,
            ..LoadConfig::default()
        };
        let span = SimTime::from_micros(load.requests * load.mean_gap_us);
        let chaos = ChaosSchedule::burst(seed, 10, span);
        let arrivals = generate_load(&load, &chaos);
        // A deliberately tight pool so the burst actually queues and sheds.
        let svc_cfg = ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            degrade_depth: 4,
            ..ServiceConfig::default()
        };
        let mut s1 = PlanService::new(&platform, svc_cfg.clone(), chaos.clone());
        let mut o1 = s1.run(&arrivals);
        if inject.break_service {
            o1.pop();
        }
        if let Err(v) = check_shed_or_serve(arrivals.len(), &o1) {
            violations.push(v);
        }
        let mut s2 = PlanService::new(&platform, svc_cfg, chaos);
        let o2 = s2.run(&arrivals);
        let wire = |outs: &[crate::service::ServiceOutcome]| {
            outs.iter()
                .map(|o| encode_response(&o.result))
                .collect::<Vec<_>>()
                .join("\n")
        };
        if wire(&o1) != wire(&o2) {
            violations.push(OracleViolation::new(
                OracleKind::ShedOrServe,
                "same-seed service runs answered differently",
            ));
        } else if s1.registry().to_json() != s2.registry().to_json() {
            violations.push(OracleViolation::new(
                OracleKind::ShedOrServe,
                "same-seed service runs exported different metrics",
            ));
        }
    }

    (violations, checks)
}

/// [`run_oracles_counted`] without the bookkeeping: just the violations.
pub fn run_oracles(scenario: &Scenario, inject: &InjectedBreak) -> Vec<OracleViolation> {
    run_oracles_counted(scenario, inject).0
}

/// The result of fuzzing one seed — also the return type of
/// [`Analyzer::fuzz_one`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuzzOutcome {
    /// The generated scenario.
    pub scenario: Scenario,
    /// Oracle violations (empty = the seed passes).
    pub violations: Vec<OracleViolation>,
}

/// Generate and check a single seed.
pub fn run_seed(seed: u64, inject: &InjectedBreak) -> FuzzOutcome {
    let scenario = Scenario::generate(seed);
    let violations = run_oracles(&scenario, inject);
    FuzzOutcome {
        scenario,
        violations,
    }
}

impl Analyzer<'_> {
    /// Fuzz a single seed: generate the scenario (its own platform, app,
    /// schedule and config) and run the full oracle bank. The entry point
    /// behind `matchmake fuzz`; see `matchmaker::fuzz` for the campaign
    /// driver, the shrinker and the corpus.
    pub fn fuzz_one(seed: u64) -> FuzzOutcome {
        run_seed(seed, &InjectedBreak::NONE)
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// All one-step simplifications of `scenario`, most aggressive first. The
/// shrinker accepts a candidate only if it remains valid and still fails
/// the same oracle.
fn candidates(cur: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let push = |out: &mut Vec<Scenario>, f: &dyn Fn(&mut Scenario)| {
        let mut c = cur.clone();
        f(&mut c);
        out.push(c);
    };

    // Drop the whole disturbance, then individual events.
    if !cur.schedule.events.is_empty() || !cur.schedule.domains.is_empty() {
        push(&mut out, &|c| {
            c.schedule.events.clear();
            c.schedule.domains.clear();
        });
    }
    for i in 0..cur.schedule.events.len() {
        push(&mut out, &|c| {
            c.schedule.events.remove(i);
        });
    }

    // Drop the last accelerator. Any event or domain naming a removed
    // device goes with it (a domain below two members dissolves, taking
    // its outage events along).
    if cur.platform.accels.len() >= 2 {
        push(&mut out, &|c| {
            c.platform.accels.pop();
            let n = c.platform.device_count();
            let names_removed = |e: &FaultEvent| match e {
                FaultEvent::TaskFaults { dev: Some(d), .. }
                | FaultEvent::DeviceDropout { dev: d, .. }
                | FaultEvent::ThrottleRamp { dev: d, .. }
                | FaultEvent::SilentCorruption { dev: d, .. }
                | FaultEvent::Flaky { dev: d, .. }
                | FaultEvent::ProfilePerturb { dev: d, .. }
                | FaultEvent::LinkDegrade { dev: d, .. } => d.0 >= n,
                _ => false,
            };
            c.schedule.events.retain(|e| !names_removed(e));
            for d in &mut c.schedule.domains {
                d.members.retain(|m| m.0 < n);
            }
            if c.schedule.domains.iter().any(|d| d.members.len() < 2) {
                c.schedule.domains.clear();
                c.schedule
                    .events
                    .retain(|e| !matches!(e, FaultEvent::DomainOutage { .. }));
            }
        });
    }

    // Shrink the CPU to one core / one thread. The planner sizes the task
    // pool from the CPU's thread count (2× for static configs, 8× for the
    // dynamic strategies), so the reproducer's task count falls with it.
    if !matches!(
        cur.platform.cpu.kind,
        DeviceKind::Cpu {
            cores: 1,
            threads: 1
        }
    ) {
        push(&mut out, &|c| {
            c.platform.cpu.kind = DeviceKind::Cpu {
                cores: 1,
                threads: 1,
            };
        });
    }

    // Swap to the simplest config: Only-CPU plans just 2×threads tasks and
    // exercises none of the partitioning machinery.
    if cur.config != ExecutionConfig::OnlyCpu {
        push(&mut out, &|c| {
            c.config = ExecutionConfig::OnlyCpu;
        });
    }

    // Remove one kernel (and its buffer stays as plain initial data).
    if cur.descriptor.kernels.len() >= 2 {
        for k in 0..cur.descriptor.kernels.len() {
            push(&mut out, &|c| {
                let nk = c.descriptor.kernels.len();
                c.descriptor.kernels.remove(k);
                // Rewire chain reads: any In access pointing at removed
                // kernel's output keeps reading the (now initial) buffer —
                // still valid. DAG edges need reindexing.
                if let ExecutionFlow::Dag { edges } = &mut c.descriptor.flow {
                    edges.retain(|&(a, b)| a != k && b != k);
                    for e in edges.iter_mut() {
                        if e.0 > k {
                            e.0 -= 1;
                        }
                        if e.1 > k {
                            e.1 -= 1;
                        }
                    }
                    if nk - 1 < 3 || edges.is_empty() {
                        c.descriptor.flow = ExecutionFlow::Sequence;
                    }
                }
                // Shift every access past the removed kernel's output
                // buffer down by one, and drop that buffer.
                let removed_buf = k + 1;
                c.descriptor.buffers.remove(removed_buf);
                for kk in &mut c.descriptor.kernels {
                    kk.accesses.retain(|a| a.buffer() != removed_buf);
                    for a in &mut kk.accesses {
                        let (AccessPattern::Partitioned { buffer, .. }
                        | AccessPattern::Full { buffer, .. }) = a;
                        if *buffer > removed_buf {
                            *buffer -= 1;
                        }
                    }
                }
                // A kernel must still write something; if its write access
                // was dropped, re-point it at the last buffer.
                let last = c.descriptor.buffers.len() - 1;
                for kk in &mut c.descriptor.kernels {
                    if !kk.accesses.iter().any(|a| a.mode().writes()) {
                        kk.accesses.push(AccessPattern::part(last, AccessMode::Out));
                    }
                }
            });
        }
    }

    // Halve the domain (and buffers with it).
    if cur.descriptor.kernels.iter().any(|k| k.domain > 64) {
        push(&mut out, &|c| {
            for k in &mut c.descriptor.kernels {
                k.domain = (k.domain / 2).max(64);
                if let Some(w) = &mut k.weights {
                    w.truncate(k.domain as usize);
                }
            }
            let dom = c.descriptor.kernels.iter().map(|k| k.domain).max().unwrap();
            for b in &mut c.descriptor.buffers {
                b.items = dom;
            }
        });
    }

    // Drop weights, halve loop iterations, drop sync.
    if cur.descriptor.kernels.iter().any(|k| k.weights.is_some()) {
        push(&mut out, &|c| {
            for k in &mut c.descriptor.kernels {
                k.weights = None;
            }
        });
    }
    if let ExecutionFlow::Loop { iterations } = cur.descriptor.flow {
        if iterations > 1 {
            push(&mut out, &|c| {
                c.descriptor.flow = ExecutionFlow::Loop {
                    iterations: (iterations / 2).max(1),
                };
            });
        }
    }
    if cur.descriptor.sync.any() {
        push(&mut out, &|c| {
            c.descriptor.sync = SyncPolicy::NONE;
        });
    }

    out
}

/// Greedily shrink a failing scenario: repeatedly apply the first
/// simplification (drop fault events, drop devices, drop kernels, halve
/// sizes…) under which the scenario stays valid and `fails` still reports
/// the `target` oracle, until a fixpoint or `max_attempts` candidate
/// evaluations. Returns the shrunk scenario and the number of evaluations
/// spent.
pub fn shrink(
    scenario: &Scenario,
    target: OracleKind,
    max_attempts: usize,
    fails: &dyn Fn(&Scenario) -> Vec<OracleViolation>,
) -> (Scenario, usize) {
    let mut cur = scenario.clone();
    let mut attempts = 0;
    'outer: loop {
        for cand in candidates(&cur) {
            if attempts >= max_attempts {
                break 'outer;
            }
            if !cand.is_valid() {
                continue;
            }
            attempts += 1;
            if fails(&cand).iter().any(|v| v.oracle == target) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    (cur, attempts)
}

// ---------------------------------------------------------------------------
// Corpus persistence
// ---------------------------------------------------------------------------

/// One archived scenario: a shrunk fuzz failure (after the underlying bug
/// is fixed, it documents the regression) or a hand-picked interesting
/// scenario. `tests/fuzz_corpus.rs` replays every entry and requires the
/// full oracle bank to pass.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusEntry {
    /// What this scenario is / was (shown in test failures).
    pub description: String,
    /// The oracle the scenario originally failed (`None` for hand-seeded
    /// interesting scenarios).
    pub oracle: Option<OracleKind>,
    /// The scenario itself.
    pub scenario: Scenario,
}

/// Canonical corpus file name for a failure: `fuzz-<oracle>-<seed>.json`.
pub fn corpus_file_name(oracle: OracleKind, seed: u64) -> String {
    format!("fuzz-{}-{seed:016x}.json", oracle.name())
}

/// Write a corpus entry as pretty JSON into `dir` (created if missing),
/// returning the path.
pub fn save_corpus_entry(dir: &Path, name: &str, entry: &CorpusEntry) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut json = serde_json::to_string_pretty(entry).expect("corpus entries serialize");
    json.push('\n');
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Load every `*.json` corpus entry under `dir`, sorted by file name (so
/// replay order is deterministic). A missing directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> Vec<(PathBuf, CorpusEntry)> {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = rd
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("corpus entry {}: {e}", p.display()));
            let entry: CorpusEntry = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("corpus entry {}: {e}", p.display()));
            (p, entry)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Configuration of a fuzz campaign (`matchmake fuzz`).
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of seeds to fuzz.
    pub iters: u64,
    /// Base seed; iteration `i` fuzzes `splitmix(base_seed + i)`.
    pub base_seed: u64,
    /// Shrink failures to minimal reproducers.
    pub shrink: bool,
    /// Where to persist failing scenarios (`None` = don't persist).
    pub corpus: Option<PathBuf>,
    /// Deliberate invariant breaks (harness self-test).
    pub inject: InjectedBreak,
    /// Stop the campaign after this many failures (0 = unlimited).
    pub max_failures: usize,
}

impl FuzzConfig {
    /// A campaign over `iters` seeds from `base_seed`, no shrinking, no
    /// corpus, no injection, stopping after 5 failures.
    pub fn new(iters: u64, base_seed: u64) -> Self {
        FuzzConfig {
            iters,
            base_seed,
            shrink: false,
            corpus: None,
            inject: InjectedBreak::NONE,
            max_failures: 5,
        }
    }
}

/// One recorded campaign failure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuzzFailure {
    /// The failing seed.
    pub seed: u64,
    /// The first violated oracle (the shrink target).
    pub oracle: OracleKind,
    /// The original violation detail.
    pub detail: String,
    /// Kernel count of the (shrunk) reproducer.
    pub kernels: usize,
    /// Device count of the (shrunk) reproducer.
    pub devices: usize,
    /// Task-instance count of the (shrunk) reproducer's plan.
    pub tasks: usize,
    /// Corpus file the reproducer was written to, if any.
    pub corpus_file: Option<String>,
}

/// The deterministic result of a fuzz campaign. [`FuzzReport::summary`]
/// renders byte-identically for identical configs — CI diffs two runs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FuzzReport {
    /// Seeds fuzzed (may be fewer than requested if `max_failures` hit).
    pub scenarios: u64,
    /// Requested iteration count.
    pub iters: u64,
    /// The campaign base seed.
    pub base_seed: u64,
    /// Oracle-check counts by oracle name.
    pub checks: BTreeMap<String, u64>,
    /// Every failure, in seed order.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// Render the deterministic campaign summary.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "fuzz campaign: iters={} base_seed={:#x} scenarios={}\n",
            self.iters, self.base_seed, self.scenarios
        );
        out.push_str("checks:");
        for (name, n) in &self.checks {
            out.push_str(&format!(" {name}={n}"));
        }
        out.push('\n');
        out.push_str(&format!("failures: {}\n", self.failures.len()));
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(&format!(
                "failure[{i}]: seed={:#018x} oracle={} kernels={} devices={} tasks={}{}\n  {}\n",
                f.seed,
                f.oracle,
                f.kernels,
                f.devices,
                f.tasks,
                f.corpus_file
                    .as_deref()
                    .map(|p| format!(" corpus={p}"))
                    .unwrap_or_default(),
                f.detail,
            ));
        }
        out
    }
}

/// Run a fuzz campaign: generate + check `iters` seeds, optionally shrink
/// each failure to a minimal reproducer and persist it to the corpus.
pub fn fuzz_campaign(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        scenarios: 0,
        iters: cfg.iters,
        base_seed: cfg.base_seed,
        checks: BTreeMap::new(),
        failures: Vec::new(),
    };
    for i in 0..cfg.iters {
        let seed = FaultRng::new(cfg.base_seed.wrapping_add(i)).next_u64();
        let scenario = Scenario::generate(seed);
        let (violations, checks) = run_oracles_counted(&scenario, &cfg.inject);
        report.scenarios += 1;
        for (name, n) in checks {
            *report.checks.entry(name.to_string()).or_insert(0) += n;
        }
        if let Some(first) = violations.first() {
            let target = first.oracle;
            let detail = first.detail.clone();
            let reproducer = if cfg.shrink {
                let inject = cfg.inject;
                let (shrunk, _) = shrink(&scenario, target, 400, &|s| run_oracles(s, &inject));
                shrunk
            } else {
                scenario
            };
            let corpus_file = cfg.corpus.as_ref().map(|dir| {
                let name = corpus_file_name(target, seed);
                let entry = CorpusEntry {
                    description: format!(
                        "shrunk reproducer for {} (seed {seed:#018x}); \
                         archived by `matchmake fuzz`",
                        target
                    ),
                    oracle: Some(target),
                    scenario: reproducer.clone(),
                };
                save_corpus_entry(dir, &name, &entry).expect("corpus dir is writable");
                name
            });
            report.failures.push(FuzzFailure {
                seed,
                oracle: target,
                detail,
                kernels: reproducer.descriptor.kernels.len(),
                devices: reproducer.platform.device_count(),
                tasks: reproducer.task_count(),
                corpus_file,
            });
            if cfg.max_failures > 0 && report.failures.len() >= cfg.max_failures {
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_seed_deterministic() {
        for seed in [0u64, 1, 0xC0FFEE, u64::MAX] {
            let a = Scenario::generate(seed);
            let b = Scenario::generate(seed);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
            assert!(a.is_valid());
        }
    }

    #[test]
    fn generated_scenarios_round_trip_through_json() {
        let s = Scenario::generate(7);
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&s).unwrap()
        );
        assert!(back.is_valid());
    }

    #[test]
    fn injected_blame_break_is_caught() {
        let inject = InjectedBreak {
            skip_blame_component: true,
            ..InjectedBreak::NONE
        };
        let outcome = run_seed(3, &inject);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.oracle == OracleKind::BlameIdentity),
            "planted blame break must be caught: {:?}",
            outcome.violations
        );
        // And without the injection the same seed is clean.
        assert!(Analyzer::fuzz_one(3).violations.is_empty());
    }

    #[test]
    fn injected_stream_fold_break_is_caught() {
        let inject = InjectedBreak {
            break_stream_fold: true,
            ..InjectedBreak::NONE
        };
        let outcome = run_seed(3, &inject);
        assert!(
            outcome
                .violations
                .iter()
                .any(|v| v.oracle == OracleKind::StreamFoldEquivalence),
            "planted stream-fold break must be caught: {:?}",
            outcome.violations
        );
        // And without the injection the same seed is clean.
        assert!(Analyzer::fuzz_one(3).violations.is_empty());
    }

    #[test]
    fn shrinker_reaches_a_minimal_reproducer() {
        let inject = InjectedBreak {
            skip_blame_component: true,
            ..InjectedBreak::NONE
        };
        // Find a seed whose generated scenario is big enough to shrink.
        let scenario = Scenario::generate(11);
        let (shrunk, _) = shrink(&scenario, OracleKind::BlameIdentity, 400, &|s| {
            run_oracles(s, &inject)
        });
        assert!(shrunk.is_valid());
        assert!(shrunk.descriptor.kernels.len() <= 5);
        assert!(shrunk.platform.device_count() <= 2);
        assert!(shrunk.schedule.events.is_empty());
        assert!(run_oracles(&shrunk, &inject)
            .iter()
            .any(|v| v.oracle == OracleKind::BlameIdentity));
    }

    #[test]
    fn campaign_summary_is_deterministic() {
        let cfg = FuzzConfig::new(3, 0xFACE);
        let a = fuzz_campaign(&cfg).summary();
        let b = fuzz_campaign(&cfg).summary();
        assert_eq!(a, b);
        assert!(a.contains("failures: 0"), "{a}");
    }
}
