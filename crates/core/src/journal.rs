//! Crash-consistent analyzer runs: journaled execution and resume.
//!
//! The executor-level journal (`hetero_runtime::journal`) records *one*
//! run; this module makes a whole analyzer invocation durable. A
//! [`RunSpec`] names which executor path the run takes and carries every
//! configuration knob beyond the descriptor/config pair;
//! [`Analyzer::simulate_journaled`] serializes the descriptor, platform,
//! execution config, and spec into the journal header and executes the
//! run with a `JournalSink` committing one record per epoch. A later
//! [`Analyzer::resume`] reconstructs the entire run *from the journal
//! alone* — descriptor, config, and spec are parsed back out of the
//! header (the platform is byte-validated against the resuming analyzer's
//! own), the prefix is re-executed under byte-exact redo-replay
//! validation, and the run continues past the crash point to a final
//! report byte-identical to the uninterrupted run. See DESIGN.md §8.7.

use crate::analyzer::Analyzer;
use crate::descriptor::AppDescriptor;
use crate::strategy::{ExecutionConfig, Strategy};
use hetero_platform::{FaultSchedule, RetryPolicy};
use hetero_runtime::{
    simulate_journaled_observed, AdaptConfig, DepScheduler, HealthConfig, JournalError,
    JournalHeader, JournalSink, Observer, PerfScheduler, PinnedScheduler, ReplanConfig, RunJournal,
    RunReport,
};
use serde::{Deserialize, Serialize};

/// Which executor path a journaled run takes — the journal-header analog
/// of choosing between `Analyzer::simulate`, `simulate_faulty`,
/// `simulate_resilient`, `simulate_adaptive`, and `simulate_repairing`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Fault-free execution (`Analyzer::simulate`).
    Plain,
    /// Fault injection with retries, mitigation off
    /// (`Analyzer::simulate_faulty`).
    Faulty,
    /// Faults plus the gray-failure health subsystem
    /// (`Analyzer::simulate_resilient`).
    Resilient,
    /// Faults, health, and the adaptive-repartitioning controller
    /// (`Analyzer::simulate_adaptive`).
    Adaptive,
    /// The full stack including degraded-mode plan repair
    /// (`Analyzer::simulate_repairing`).
    Repairing,
}

/// Everything beyond the descriptor and execution config that shapes a
/// journaled run. Serialized whole into the journal header, so resume
/// re-creates the exact executor configuration without any side channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// The executor path.
    pub mode: RunMode,
    /// The fault schedule (required for every mode but [`RunMode::Plain`]).
    pub schedule: Option<FaultSchedule>,
    /// Retry/failover budgets for the faulty paths.
    pub policy: RetryPolicy,
    /// Gray-failure mitigation ([`RunMode::Resilient`] and up; the faulty
    /// mode runs with it disabled regardless).
    pub health: HealthConfig,
    /// The adaptation controller ([`RunMode::Adaptive`] and up).
    pub adapt: AdaptConfig,
    /// Degraded-mode plan repair ([`RunMode::Repairing`] only).
    pub replan: ReplanConfig,
}

impl RunSpec {
    /// A fault-free run.
    pub fn plain() -> Self {
        RunSpec {
            mode: RunMode::Plain,
            schedule: None,
            policy: RetryPolicy::default(),
            health: HealthConfig::disabled(),
            adapt: AdaptConfig::disabled(),
            replan: ReplanConfig::disabled(),
        }
    }

    /// A faulty run under `schedule` with default retry budgets.
    pub fn faulty(schedule: FaultSchedule) -> Self {
        RunSpec {
            mode: RunMode::Faulty,
            schedule: Some(schedule),
            ..RunSpec::plain()
        }
    }

    /// A resilient run: `schedule` plus `health`.
    pub fn resilient(schedule: FaultSchedule, health: HealthConfig) -> Self {
        RunSpec {
            mode: RunMode::Resilient,
            schedule: Some(schedule),
            health,
            ..RunSpec::plain()
        }
    }

    /// An adaptive run: `schedule`, `health`, and the controller `adapt`.
    pub fn adaptive(schedule: FaultSchedule, health: HealthConfig, adapt: AdaptConfig) -> Self {
        RunSpec {
            mode: RunMode::Adaptive,
            schedule: Some(schedule),
            health,
            adapt,
            ..RunSpec::plain()
        }
    }

    /// A repairing run: the full stack.
    pub fn repairing(
        schedule: FaultSchedule,
        health: HealthConfig,
        adapt: AdaptConfig,
        replan: ReplanConfig,
    ) -> Self {
        RunSpec {
            mode: RunMode::Repairing,
            schedule: Some(schedule),
            health,
            adapt,
            replan,
            ..RunSpec::plain()
        }
    }

    /// The schedule, or a typed error for a mode that requires one.
    fn require_schedule(&self) -> Result<&FaultSchedule, JournalError> {
        self.schedule
            .as_ref()
            .ok_or_else(|| JournalError::HeaderMismatch {
                field: format!("run mode {:?} requires a fault schedule", self.mode),
            })
    }
}

fn json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("journal inputs always serialize")
}

fn parse_input<T: serde::Deserialize>(
    header: &JournalHeader,
    key: &str,
) -> Result<T, JournalError> {
    let raw = header.require_input(key)?;
    serde_json::from_str(raw).map_err(|e| JournalError::BadParse {
        line: 1,
        error: format!("header input `{key}`: {e}"),
    })
}

impl<'a> Analyzer<'a> {
    /// [`Analyzer::simulate`] and its faulty/resilient/adaptive/repairing
    /// siblings, selected by `spec.mode`, with `sink` committing one
    /// journal record per epoch flush. The sink is opened here: the header
    /// (descriptor, platform, config, and spec serialized as named inputs)
    /// is written before the first event executes, making the journal
    /// self-contained. Returns [`JournalError::Killed`] when the sink's
    /// kill schedule fires — the journal text accumulated in the sink is
    /// valid and resumable — and never fails for an unkilled record-mode
    /// run. A repairing run that gave up reports through
    /// `RunReport::adapt.replan_error`, exactly like
    /// `Analyzer::simulate_repairing_observed`'s error channel.
    pub fn simulate_journaled(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        spec: &RunSpec,
        sink: &mut JournalSink,
    ) -> Result<RunReport, JournalError> {
        self.simulate_journaled_observed(
            desc,
            config,
            spec,
            sink,
            &mut hetero_runtime::NullObserver,
        )
    }

    /// [`Analyzer::simulate_journaled`] with a pluggable [`Observer`]
    /// (DP-Perf's warm-up pass runs unobserved *and* unjournaled — it is
    /// a pure function of the schedule, so resume regenerates it).
    pub fn simulate_journaled_observed(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        spec: &RunSpec,
        sink: &mut JournalSink,
        obs: &mut dyn Observer,
    ) -> Result<RunReport, JournalError> {
        sink.begin(&self.journal_header(desc, config, spec))?;
        self.dispatch_journaled(desc, config, spec, sink, obs)
    }

    /// Resume a run from loaded journal `text`: validate and parse the
    /// journal, reconstruct the descriptor/config/spec from its header,
    /// byte-validate the platform against this analyzer's, then re-execute
    /// under redo-replay validation and run to completion. Returns the
    /// final report plus the *complete* journal text — byte-identical to
    /// what the uninterrupted run would have written, ready to be stored
    /// in place of the truncated file.
    pub fn resume(&self, text: &str) -> Result<(RunReport, String), JournalError> {
        self.resume_observed(text, &mut hetero_runtime::NullObserver)
    }

    /// [`Analyzer::resume`] with a pluggable [`Observer`]. The observer
    /// sees the whole run from `t = 0` (redo-replay re-executes the
    /// prefix), so traces and metrics exports match the uninterrupted run
    /// byte-for-byte.
    pub fn resume_observed(
        &self,
        text: &str,
        obs: &mut dyn Observer,
    ) -> Result<(RunReport, String), JournalError> {
        let journal = RunJournal::load(text)?;
        self.resume_from_journal(&journal, obs)
    }

    /// [`Analyzer::resume`] in salvage mode: load the journal through
    /// [`RunJournal::load_salvaged`], resume from the longest valid record
    /// prefix, and report what was cut. Where strict resume refuses a
    /// mid-file corruption outright, salvage treats everything from the
    /// first bad committed line as if it had never been written — redo-
    /// replay re-executes the salvaged prefix and runs to completion, so
    /// the regenerated journal and report are byte-identical to the
    /// uninterrupted run's. The error path is reserved for journals with
    /// nothing to salvage (empty, unreadable header, wrong version) and
    /// for salvaged prefixes that fail resume's own header validation.
    pub fn resume_salvaged(
        &self,
        text: &str,
        obs: &mut dyn Observer,
    ) -> Result<(RunReport, String, Option<hetero_runtime::SalvageReport>), JournalError> {
        let (journal, salvage) = RunJournal::load_salvaged(text)?;
        let (report, full_text) = self.resume_from_journal(&journal, obs)?;
        Ok((report, full_text, salvage))
    }

    /// Shared tail of the resume paths: header validation, redo-replay,
    /// run to completion.
    fn resume_from_journal(
        &self,
        journal: &RunJournal,
        obs: &mut dyn Observer,
    ) -> Result<(RunReport, String), JournalError> {
        let desc: AppDescriptor = parse_input(&journal.header, "descriptor")?;
        let config: ExecutionConfig = parse_input(&journal.header, "config")?;
        let spec: RunSpec = parse_input(&journal.header, "run")?;
        let stored_platform = journal.header.require_input("platform")?;
        if stored_platform != json(self.planner().platform) {
            return Err(JournalError::HeaderMismatch {
                field: "platform (the journal was recorded on a different platform)".into(),
            });
        }
        let mut sink = JournalSink::resume(journal);
        sink.begin(&self.journal_header(&desc, config, &spec))?;
        let report = self.dispatch_journaled(&desc, config, &spec, &mut sink, obs)?;
        Ok((report, sink.text()))
    }

    /// The journal header for one run: seed, stream constants, and the
    /// four input documents resume needs.
    fn journal_header(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        spec: &RunSpec,
    ) -> JournalHeader {
        JournalHeader::new(spec.schedule.as_ref().map(|s| s.seed))
            .with_input("descriptor", json(desc))
            .with_input("platform", json(self.planner().platform))
            .with_input("config", json(&config))
            .with_input("run", json(spec))
    }

    /// The journaled mirror of the analyzer's five simulate dispatches:
    /// same planner, same scheduler construction, same warm-up handling,
    /// byte-identical event sequences — with the sink observing epoch
    /// commits.
    fn dispatch_journaled(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        spec: &RunSpec,
        sink: &mut JournalSink,
        obs: &mut dyn Observer,
    ) -> Result<RunReport, JournalError> {
        match spec.mode {
            RunMode::Plain => self.journaled_plain(desc, config, sink, obs),
            RunMode::Faulty | RunMode::Resilient => {
                let schedule = spec.require_schedule()?.clone();
                let health = if spec.mode == RunMode::Faulty {
                    HealthConfig::disabled()
                } else {
                    spec.health
                };
                self.journaled_resilient(desc, config, &schedule, spec.policy, health, sink, obs)
            }
            RunMode::Adaptive | RunMode::Repairing => {
                let schedule = spec.require_schedule()?.clone();
                let replan = (spec.mode == RunMode::Repairing).then_some(spec.replan);
                self.journaled_adaptive(desc, config, &schedule, spec, replan, sink, obs)
            }
        }
    }

    /// Journaled [`Analyzer::simulate_observed`].
    fn journaled_plain(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        sink: &mut JournalSink,
        obs: &mut dyn Observer,
    ) -> Result<RunReport, JournalError> {
        let plan = self.plan(desc, config);
        let platform = self.planner().platform;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_journaled_observed(
                    &plan.program,
                    platform,
                    &mut s,
                    None,
                    None,
                    None,
                    None,
                    sink,
                    obs,
                )
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                // The warm-up pass is a pure function of the program and
                // platform; it stays unjournaled and unobserved, exactly
                // as it stays out of the report (resume regenerates it).
                let mut warm = PerfScheduler::new(platform);
                let _ = hetero_runtime::simulate(&plan.program, platform, &mut warm);
                let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
                simulate_journaled_observed(
                    &plan.program,
                    platform,
                    &mut measured,
                    None,
                    None,
                    None,
                    None,
                    sink,
                    obs,
                )
            }
            _ => simulate_journaled_observed(
                &plan.program,
                platform,
                &mut PinnedScheduler,
                None,
                None,
                None,
                None,
                sink,
                obs,
            ),
        }
    }

    /// Journaled [`Analyzer::simulate_resilient_observed`] (the faulty
    /// mode is this with health disabled).
    #[allow(clippy::too_many_arguments)]
    fn journaled_resilient(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: HealthConfig,
        sink: &mut JournalSink,
        obs: &mut dyn Observer,
    ) -> Result<RunReport, JournalError> {
        let plan = self.plan(desc, config);
        let platform = self.planner().platform;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_journaled_observed(
                    &plan.program,
                    platform,
                    &mut s,
                    Some((schedule, policy)),
                    Some(health),
                    None,
                    None,
                    sink,
                    obs,
                )
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                let warm_schedule = hetero_runtime::warmup_schedule(schedule);
                let mut warm = PerfScheduler::new(platform);
                let _ = hetero_runtime::simulate_resilient(
                    &plan.program,
                    platform,
                    &mut warm,
                    &warm_schedule,
                    policy,
                    &health,
                );
                let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
                simulate_journaled_observed(
                    &plan.program,
                    platform,
                    &mut measured,
                    Some((schedule, policy)),
                    Some(health),
                    None,
                    None,
                    sink,
                    obs,
                )
            }
            _ => simulate_journaled_observed(
                &plan.program,
                platform,
                &mut PinnedScheduler,
                Some((schedule, policy)),
                Some(health),
                None,
                None,
                sink,
                obs,
            ),
        }
    }

    /// Journaled [`Analyzer::simulate_adaptive_observed`] /
    /// [`Analyzer::simulate_repairing_observed`] (`replan` present on the
    /// repairing path).
    #[allow(clippy::too_many_arguments)]
    fn journaled_adaptive(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        spec: &RunSpec,
        replan: Option<ReplanConfig>,
        sink: &mut JournalSink,
        obs: &mut dyn Observer,
    ) -> Result<RunReport, JournalError> {
        let planner = self.misprediction_planner(schedule);
        let plan = planner.plan(desc, config);
        let platform = planner.platform;
        let policy = spec.policy;
        let health = spec.health;
        let adapt = spec.adapt;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_journaled_observed(
                    &plan.program,
                    platform,
                    &mut s,
                    Some((schedule, policy)),
                    Some(health),
                    Some((adapt, None)),
                    replan,
                    sink,
                    obs,
                )
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                let warm_schedule = hetero_runtime::warmup_schedule(schedule);
                let mut warm = PerfScheduler::new(platform);
                let _ = hetero_runtime::simulate_resilient(
                    &plan.program,
                    platform,
                    &mut warm,
                    &warm_schedule,
                    policy,
                    &health,
                );
                let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
                simulate_journaled_observed(
                    &plan.program,
                    platform,
                    &mut measured,
                    Some((schedule, policy)),
                    Some(health),
                    Some((adapt, None)),
                    replan,
                    sink,
                    obs,
                )
            }
            _ => simulate_journaled_observed(
                &plan.program,
                platform,
                &mut PinnedScheduler,
                Some((schedule, policy)),
                Some(health),
                Some((adapt, planner.adapt_plan(desc, config))),
                replan,
                sink,
                obs,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::tests_support::toy_descriptor;
    use crate::descriptor::ExecutionFlow;
    use hetero_platform::{DeviceId, KillSchedule, Platform, SimTime};
    use hetero_runtime::{check_identical, OracleKind};

    fn desc() -> AppDescriptor {
        let mut d = toy_descriptor(2, ExecutionFlow::Sequence);
        d.buffers[0].items = 1 << 18;
        for k in &mut d.kernels {
            k.domain = 1 << 18;
        }
        d.sync.between_kernels = true;
        d
    }

    #[test]
    fn journaled_run_matches_unjournaled_and_round_trips() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        let config = ExecutionConfig::Strategy(Strategy::SpVaried);
        let baseline = analyzer.simulate(&desc(), config);
        let mut sink = JournalSink::record();
        let report = analyzer
            .simulate_journaled(&desc(), config, &RunSpec::plain(), &mut sink)
            .unwrap();
        check_identical(
            OracleKind::CrashResumeEquivalence,
            "journaled vs unjournaled",
            &baseline,
            &report,
        )
        .unwrap();
        // The journal is self-contained: a fresh analyzer resumes the
        // *complete* journal (a no-crash resume re-validates every record)
        // and regenerates identical text.
        let text = sink.text();
        let (resumed, resumed_text) = analyzer.resume(&text).unwrap();
        check_identical(
            OracleKind::CrashResumeEquivalence,
            "resume of a complete journal",
            &report,
            &resumed,
        )
        .unwrap();
        assert_eq!(text, resumed_text);
    }

    #[test]
    fn kill_and_resume_reproduce_the_uninterrupted_run() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        let config = ExecutionConfig::Strategy(Strategy::SpVaried);
        let schedule = FaultSchedule::new(11).with_flaky(
            DeviceId(1),
            0.2,
            SimTime::ZERO,
            SimTime::from_millis(50),
        );
        let spec = RunSpec::faulty(schedule);
        let mut full = JournalSink::record();
        let report = analyzer
            .simulate_journaled(&desc(), config, &spec, &mut full)
            .unwrap();
        let full_text = full.text();
        let records = full.records();
        assert!(records >= 2, "toy run should span several epochs");
        for k in 0..records {
            let mut sink = JournalSink::record_with_kill(KillSchedule::after_records(k));
            let err = analyzer
                .simulate_journaled(&desc(), config, &spec, &mut sink)
                .unwrap_err();
            assert!(matches!(err, JournalError::Killed { records, .. } if records == k));
            let (resumed, resumed_text) = analyzer.resume(&sink.text()).unwrap();
            check_identical(
                OracleKind::CrashResumeEquivalence,
                &format!("kill point {k}"),
                &report,
                &resumed,
            )
            .unwrap();
            assert_eq!(full_text, resumed_text, "kill point {k}: journal differs");
        }
    }

    #[test]
    fn resume_rejects_a_different_platform() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        let config = ExecutionConfig::Strategy(Strategy::SpUnified);
        let mut sink = JournalSink::record();
        analyzer
            .simulate_journaled(&desc(), config, &RunSpec::plain(), &mut sink)
            .unwrap();
        let other = Platform::icpp15();
        let resumer = Analyzer::new(&other);
        let err = resumer.resume(&sink.text()).unwrap_err();
        assert!(
            matches!(err, JournalError::HeaderMismatch { field } if field.contains("platform"))
        );
    }

    #[test]
    fn spec_constructors_pick_the_right_mode() {
        let s = FaultSchedule::new(1);
        assert_eq!(RunSpec::plain().mode, RunMode::Plain);
        assert_eq!(RunSpec::faulty(s.clone()).mode, RunMode::Faulty);
        assert_eq!(
            RunSpec::resilient(s.clone(), HealthConfig::disabled()).mode,
            RunMode::Resilient
        );
        assert_eq!(
            RunSpec::adaptive(s.clone(), HealthConfig::disabled(), AdaptConfig::disabled()).mode,
            RunMode::Adaptive
        );
        let spec = RunSpec::repairing(
            s,
            HealthConfig::disabled(),
            AdaptConfig::disabled(),
            ReplanConfig::enabled_default(),
        );
        assert_eq!(spec.mode, RunMode::Repairing);
        // The spec round-trips through its header encoding.
        let back: RunSpec = serde_json::from_str(&json(&spec)).unwrap();
        assert_eq!(back, spec);
    }
}
