//! Task-size auto-tuning for dynamic partitioning.
//!
//! §V of the paper: "we have also varied the task size in dynamic
//! partitioning, and found that the task size variation leads to
//! performance variation. Thus, auto-tuning is recommended to find the
//! best performing one."
//!
//! This module implements that recommendation: sweep candidate dynamic
//! granularities (multiples of the CPU thread count, the paper's own
//! convention for `m`) and keep the fastest. The measurement oracle is the
//! deterministic simulator — in a live deployment the same loop would run
//! against the machine, exactly like Glinda's profiling step.

use crate::analyzer::Analyzer;
use crate::descriptor::AppDescriptor;
use crate::strategy::{ExecutionConfig, Strategy};
use hetero_platform::SimTime;
use serde::{Deserialize, Serialize};

/// Outcome of one auto-tuning run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutotuneResult {
    /// The winning instances-per-kernel granularity.
    pub best_m: u64,
    /// Its simulated execution time.
    pub best_time: SimTime,
    /// The full sweep, in candidate order.
    pub sweep: Vec<(u64, SimTime)>,
}

impl AutotuneResult {
    /// Ratio between the worst and best candidate — how much tuning
    /// mattered.
    pub fn sensitivity(&self) -> f64 {
        let best = self.best_time.as_secs_f64();
        let worst = self
            .sweep
            .iter()
            .map(|(_, t)| t.as_secs_f64())
            .fold(0.0f64, f64::max);
        if best > 0.0 {
            worst / best
        } else {
            1.0
        }
    }
}

/// Default candidate granularities: {1, 2, 4, 8, 16, 32} × CPU threads.
pub fn default_candidates(cpu_threads: u64) -> Vec<u64> {
    [1u64, 2, 4, 8, 16, 32]
        .iter()
        .map(|&f| f * cpu_threads)
        .collect()
}

/// Tune the dynamic task granularity of `strategy` (DP-Dep or DP-Perf) for
/// one application. Returns the sweep and the winner; the analyzer passed
/// in is left configured with the winning granularity.
pub fn tune_task_size(
    analyzer: &mut Analyzer<'_>,
    desc: &AppDescriptor,
    strategy: Strategy,
    candidates: Option<&[u64]>,
) -> AutotuneResult {
    assert!(
        strategy.is_dynamic(),
        "task-size tuning applies to dynamic strategies"
    );
    let threads = analyzer.planner().platform.cpu().spec.kind.slots() as u64;
    let defaults = default_candidates(threads);
    let candidates = candidates.unwrap_or(&defaults);
    assert!(!candidates.is_empty());

    let mut sweep = Vec::with_capacity(candidates.len());
    let mut best: Option<(u64, SimTime)> = None;
    for &m in candidates {
        analyzer.planner_mut().dynamic_instances_per_kernel = m;
        let t = analyzer
            .simulate(desc, ExecutionConfig::Strategy(strategy))
            .makespan;
        sweep.push((m, t));
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((m, t));
        }
    }
    let (best_m, best_time) = best.expect("non-empty sweep");
    analyzer.planner_mut().dynamic_instances_per_kernel = best_m;
    AutotuneResult {
        best_m,
        best_time,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::Platform;

    fn app() -> AppDescriptor {
        crate::descriptor::tests_support::toy_descriptor(
            1,
            crate::descriptor::ExecutionFlow::Sequence,
        )
    }

    fn big_app() -> AppDescriptor {
        let mut d = app();
        d.buffers[0].items = 1 << 20;
        d.kernels[0].domain = 1 << 20;
        d
    }

    #[test]
    fn tuner_returns_the_sweep_minimum_and_configures_the_analyzer() {
        let platform = Platform::icpp15();
        let mut analyzer = Analyzer::new(&platform);
        let desc = big_app();
        let result = tune_task_size(&mut analyzer, &desc, Strategy::DpPerf, None);
        assert_eq!(result.sweep.len(), 6);
        let min = result.sweep.iter().map(|&(_, t)| t).min().unwrap();
        assert_eq!(result.best_time, min);
        assert_eq!(
            analyzer.planner().dynamic_instances_per_kernel,
            result.best_m
        );
        assert!(result.sensitivity() >= 1.0);
    }

    #[test]
    fn custom_candidates_are_respected() {
        let platform = Platform::icpp15();
        let mut analyzer = Analyzer::new(&platform);
        let desc = big_app();
        let result = tune_task_size(&mut analyzer, &desc, Strategy::DpDep, Some(&[13, 39]));
        assert_eq!(result.sweep.len(), 2);
        assert!(result.best_m == 13 || result.best_m == 39);
    }

    #[test]
    #[should_panic(expected = "dynamic strategies")]
    fn rejects_static_strategies() {
        let platform = Platform::icpp15();
        let mut analyzer = Analyzer::new(&platform);
        let desc = app();
        let _ = tune_task_size(&mut analyzer, &desc, Strategy::SpSingle, None);
    }

    #[test]
    fn default_candidates_scale_with_threads() {
        assert_eq!(default_candidates(12), vec![12, 24, 48, 96, 192, 384]);
    }
}
