#![warn(missing_docs)]

//! # matchmaker
//!
//! The primary contribution of *"Matchmaking Applications and Partitioning
//! Strategies for Efficient Execution on Heterogeneous Platforms"* (Shen,
//! Varbanescu, Martorell, Sips — ICPP 2015): an **application analyzer**
//! that selects the best workload-partitioning strategy for a given
//! data-parallel application on a CPU+GPU platform.
//!
//! The pieces, in paper order:
//!
//! * [`descriptor`] — the analyzer's input: kernels, buffer access
//!   patterns, execution flow and required synchronisation.
//! * [`class`] — the five-class application classification by kernel
//!   structure (SK-One, SK-Loop, MK-Seq, MK-Loop, MK-DAG; Fig. 3).
//! * [`strategy`] — the five partitioning strategies (SP-Single,
//!   SP-Unified, SP-Varied, DP-Dep, DP-Perf; Fig. 4) and the baseline
//!   execution configurations.
//! * [`ranking`] — Table I: the suitable strategies and their theoretical
//!   performance ranking per class (Propositions 1–3).
//! * [`plan`] — lowering a strategy to a concrete `hetero-runtime` program
//!   (partition sizes from the `glinda` solver, pinnings, taskwaits).
//! * [`analyzer`] — the end-to-end pipeline of Fig. 2: classify → rank →
//!   select → plan → execute.
//! * [`convert`] — §V's recipe for making a dynamic runtime behave like a
//!   static partitioning with minimal effort.
//! * [`service`] — the analyzer as a long-lived, overload-hardened
//!   planning service: admission control, deadline budgets, load shedding
//!   and deterministic service-level chaos (DESIGN.md §8.9).
//!
//! ```no_run
//! use matchmaker::{Analyzer, ExecutionConfig};
//! use hetero_platform::Platform;
//! # fn descriptor() -> matchmaker::AppDescriptor { unimplemented!() }
//!
//! let platform = Platform::icpp15();
//! let analyzer = Analyzer::new(&platform);
//! let app = descriptor();
//! let (analysis, report) = analyzer.run_best(&app);
//! println!(
//!     "{} is {} -> {} ({} ms, {:.0}% on GPU)",
//!     analysis.app, analysis.class, analysis.best,
//!     report.makespan.as_millis_f64(), 100.0 * report.gpu_item_share()
//! );
//! ```

pub mod analyzer;
pub mod autotune;
pub mod class;
pub mod convert;
pub mod dag;
pub mod descriptor;
pub mod fuzz;
pub mod journal;
pub mod plan;
pub mod profile;
pub mod ranking;
pub mod robustness;
pub mod service;
pub mod strategy;
pub mod stream;

pub use analyzer::{Analysis, Analyzer};
pub use autotune::{tune_task_size, AutotuneResult};
pub use class::{classify, AppClass};
pub use convert::{max_ratio_error, ratio_to_counts, realized_ratio};
pub use dag::{analyze_dag, refine_class, DagProfile};
pub use descriptor::{
    AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy,
};
pub use fuzz::{
    fuzz_campaign, load_corpus, run_oracles, run_seed, save_corpus_entry, shrink, CorpusEntry,
    FuzzConfig, FuzzFailure, FuzzOutcome, FuzzReport, InjectedBreak, Scenario,
};
pub use hetero_runtime::PlanError;
pub use hetero_runtime::{JournalError, JournalSink, RunJournal, SalvageReport};
pub use hetero_runtime::{OracleKind, OracleViolation};
pub use hetero_runtime::{ReplanConfig, ReplanError};
pub use journal::{RunMode, RunSpec};
pub use plan::{KernelModel, KernelSplit, Plan, Planner, SurvivorPlan};
pub use profile::{ProfileStore, RateProfile};
pub use ranking::{best_strategy, escalation_target, rank_of, ranking, SyncMode};
pub use robustness::DegradationEntry;
pub use service::{
    check_shed_or_serve, decode_request, encode_request, encode_response, generate_load, run_load,
    template_app, Arrival, ChaosEvent, ChaosSchedule, LoadConfig, LoadOutcome, PlanRequest,
    PlanResponse, PlanService, RateLimit, ServiceConfig, ServiceError, ServiceOutcome,
    CHAOS_STREAM, LOAD_STREAM,
};
pub use strategy::{ExecutionConfig, Strategy};
pub use stream::STREAM_STRATEGY_LABEL;
