//! Application classification by kernel structure (§III-B of the paper).
//!
//! Two criteria — the number of kernels and the type of kernel execution
//! flow (sequence / loop / DAG) — classify every data-parallel application
//! into one of five classes. The paper's survey of five benchmark suites
//! (86 applications, tech. report PDS-2015-001) found these five classes
//! cover all of them; the `hetero-apps` crate reproduces that coverage
//! study on a synthetic corpus.

use crate::descriptor::{AppDescriptor, ExecutionFlow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five application classes of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AppClass {
    /// Class I — a single kernel, executed once.
    SkOne,
    /// Class II — a single kernel iterated in a loop.
    SkLoop,
    /// Class III — multiple different kernels in a sequence.
    MkSeq,
    /// Class IV — a multi-kernel sequence iterated in a loop.
    MkLoop,
    /// Class V — multiple kernels whose execution forms a DAG.
    MkDag,
}

impl AppClass {
    /// All five classes, in paper order.
    pub const ALL: [AppClass; 5] = [
        AppClass::SkOne,
        AppClass::SkLoop,
        AppClass::MkSeq,
        AppClass::MkLoop,
        AppClass::MkDag,
    ];

    /// The paper's Roman-numeral label.
    pub fn number(self) -> &'static str {
        match self {
            AppClass::SkOne => "I",
            AppClass::SkLoop => "II",
            AppClass::MkSeq => "III",
            AppClass::MkLoop => "IV",
            AppClass::MkDag => "V",
        }
    }

    /// `true` for the single-kernel classes.
    pub fn is_single_kernel(self) -> bool {
        matches!(self, AppClass::SkOne | AppClass::SkLoop)
    }
}

impl fmt::Display for AppClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AppClass::SkOne => "SK-One",
            AppClass::SkLoop => "SK-Loop",
            AppClass::MkSeq => "MK-Seq",
            AppClass::MkLoop => "MK-Loop",
            AppClass::MkDag => "MK-DAG",
        };
        write!(f, "{name}")
    }
}

/// Classify an application by its kernel structure.
///
/// Rules (paper §III-B):
/// * one kernel, straight-line → SK-One; one kernel in a loop → SK-Loop;
/// * multiple kernels in a sequence → MK-Seq; iterated → MK-Loop;
/// * a DAG flow → MK-DAG (a "DAG" over a single kernel degenerates to
///   SK-One — there is nothing dynamic to schedule between kernels);
/// * inner loops around *individual* kernels of a multi-kernel app unfold
///   and do not change the class (the paper's note on Classes III–V).
pub fn classify(desc: &AppDescriptor) -> AppClass {
    let nk = desc.kernels.len();
    assert!(nk > 0, "application has no kernels");
    match (&desc.flow, nk) {
        (ExecutionFlow::Sequence, 1) => AppClass::SkOne,
        (ExecutionFlow::Loop { .. }, 1) => AppClass::SkLoop,
        (ExecutionFlow::Sequence, _) => AppClass::MkSeq,
        (ExecutionFlow::Loop { .. }, _) => AppClass::MkLoop,
        (ExecutionFlow::Dag { .. }, 1) => AppClass::SkOne,
        (ExecutionFlow::Dag { .. }, _) => AppClass::MkDag,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::tests_support::toy_descriptor;

    #[test]
    fn classification_rules() {
        assert_eq!(
            classify(&toy_descriptor(1, ExecutionFlow::Sequence)),
            AppClass::SkOne
        );
        assert_eq!(
            classify(&toy_descriptor(1, ExecutionFlow::Loop { iterations: 5 })),
            AppClass::SkLoop
        );
        assert_eq!(
            classify(&toy_descriptor(3, ExecutionFlow::Sequence)),
            AppClass::MkSeq
        );
        assert_eq!(
            classify(&toy_descriptor(4, ExecutionFlow::Loop { iterations: 2 })),
            AppClass::MkLoop
        );
        assert_eq!(
            classify(&toy_descriptor(
                3,
                ExecutionFlow::Dag {
                    edges: vec![(0, 1), (0, 2)]
                }
            )),
            AppClass::MkDag
        );
    }

    #[test]
    fn single_kernel_dag_degenerates() {
        assert_eq!(
            classify(&toy_descriptor(1, ExecutionFlow::Dag { edges: vec![] })),
            AppClass::SkOne
        );
    }

    #[test]
    fn class_metadata() {
        assert_eq!(AppClass::SkLoop.number(), "II");
        assert_eq!(AppClass::MkDag.to_string(), "MK-DAG");
        assert!(AppClass::SkOne.is_single_kernel());
        assert!(!AppClass::MkLoop.is_single_kernel());
        assert_eq!(AppClass::ALL.len(), 5);
    }
}
