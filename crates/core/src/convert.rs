//! §V: making dynamic partitioning "behave like" static partitioning.
//!
//! For an application already written for a dynamic runtime, the paper
//! recommends a three-step conversion when the best strategy turns out to
//! be static: (1) determine the static partitioning ratio for the full
//! problem, (2) convert the ratio into a task-assignment ratio (`k`
//! instances on the CPU, `l` on the GPU), (3) pin those instance counts.
//! The application then gets a close-to-optimal partitioning with minimal
//! manual effort. The planner's `ExecutionConfig::ConvertedStatic` uses
//! this module.

/// Convert a GPU fraction `beta ∈ [0, 1]` into `(gpu_instances,
/// cpu_instances)` out of `m` equal-size task instances, rounding to the
/// nearest split while keeping at least one instance on a device whose
/// share is non-negligible (> half an instance).
pub fn ratio_to_counts(beta: f64, m: u64) -> (u64, u64) {
    assert!(m > 0, "need at least one instance");
    assert!((0.0..=1.0).contains(&beta), "beta out of range: {beta}");
    let gpu = (beta * m as f64).round().min(m as f64) as u64;
    (gpu, m - gpu)
}

/// [`ratio_to_counts`] with the CPU count aligned to the thread count.
///
/// Equal-size instances execute on the CPU in waves of `cpu_threads`; a
/// CPU count that is not a thread multiple wastes the tail of the last
/// wave (e.g. 10 instances on 12 threads cost a full wave). Rounding the
/// CPU count to the nearest thread multiple trades a small ratio error
/// (bounded by `cpu_threads / 2m`) for perfectly packed waves.
pub fn ratio_to_counts_aligned(beta: f64, m: u64, cpu_threads: u64) -> (u64, u64) {
    assert!(m > 0, "need at least one instance");
    assert!((0.0..=1.0).contains(&beta), "beta out of range: {beta}");
    let align = cpu_threads.max(1).min(m);
    let cpu_ideal = (1.0 - beta) * m as f64;
    let cpu = ((cpu_ideal / align as f64).round() as u64 * align).min(m);
    (m - cpu, cpu)
}

/// The GPU fraction actually realised by a `(gpu, cpu)` instance split.
pub fn realized_ratio(gpu_instances: u64, cpu_instances: u64) -> f64 {
    let total = gpu_instances + cpu_instances;
    if total == 0 {
        0.0
    } else {
        gpu_instances as f64 / total as f64
    }
}

/// Worst-case ratio error introduced by converting to `m` instances: half
/// an instance.
pub fn max_ratio_error(m: u64) -> f64 {
    0.5 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ratios() {
        assert_eq!(ratio_to_counts(0.0, 24), (0, 24));
        assert_eq!(ratio_to_counts(1.0, 24), (24, 0));
        assert_eq!(ratio_to_counts(0.5, 24), (12, 12));
    }

    #[test]
    fn rounding_to_nearest() {
        assert_eq!(ratio_to_counts(0.9, 24), (22, 2)); // 21.6 -> 22
        assert_eq!(ratio_to_counts(0.41, 24), (10, 14)); // 9.84 -> 10
    }

    #[test]
    fn realized_error_within_bound() {
        for m in [8u64, 24, 48] {
            for i in 0..=100 {
                let beta = i as f64 / 100.0;
                let (g, c) = ratio_to_counts(beta, m);
                assert_eq!(g + c, m);
                let err = (realized_ratio(g, c) - beta).abs();
                assert!(
                    err <= max_ratio_error(m) + 1e-12,
                    "m={m} beta={beta} err={err}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "beta out of range")]
    fn rejects_bad_beta() {
        let _ = ratio_to_counts(1.5, 10);
    }

    #[test]
    fn aligned_counts_pack_cpu_waves() {
        // beta = 0.588, m = 96, 12 threads: 39.6 CPU instances round to 36.
        let (g, c) = ratio_to_counts_aligned(0.588, 96, 12);
        assert_eq!(c % 12, 0);
        assert_eq!(g + c, 96);
        assert_eq!(c, 36);
        // Extremes stay clamped.
        assert_eq!(ratio_to_counts_aligned(1.0, 96, 12), (96, 0));
        assert_eq!(ratio_to_counts_aligned(0.0, 96, 12), (0, 96));
        // Alignment larger than m clamps to m.
        let (g, c) = ratio_to_counts_aligned(0.4, 8, 12);
        assert_eq!(g + c, 8);
    }

    #[test]
    fn aligned_ratio_error_is_bounded() {
        for m in [24u64, 96, 192] {
            for t in [6u64, 12] {
                for i in 0..=20 {
                    let beta = i as f64 / 20.0;
                    let (g, c) = ratio_to_counts_aligned(beta, m, t);
                    assert_eq!(g + c, m);
                    let err = (realized_ratio(g, c) - beta).abs();
                    assert!(
                        err <= t as f64 / (2.0 * m as f64) + 1e-12,
                        "m={m} t={t} beta={beta} err={err}"
                    );
                }
            }
        }
    }
}
