//! Application descriptors: the analyzer's view of an application.
//!
//! An [`AppDescriptor`] is what "analysing the application kernel
//! structure from the source code" (paper Fig. 2, step 2) produces: the
//! kernels, the buffers they touch and how, the execution flow, and the
//! synchronisation the application requires. Everything downstream — the
//! classifier, the strategy planner, the Glinda transfer models — is
//! derived mechanically from this description.

use hetero_platform::KernelProfile;
use hetero_runtime::AccessMode;
use serde::{Deserialize, Serialize};

/// A buffer the application owns, partitioned in the same index space as
/// the kernels' data-parallel domain (or accessed whole).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BufferSpec {
    /// Name (diagnostics).
    pub name: String,
    /// Number of items.
    pub items: u64,
    /// Bytes per item.
    pub item_bytes: u64,
}

/// How a kernel touches one buffer, as a function of the partition of the
/// kernel's domain an instance receives.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// The instance touches items `[s−halo, e+halo)` of the buffer when it
    /// computes domain items `[s, e)` (clamped to the buffer). `halo = 0`
    /// is the common aligned case; stencils use `halo ≥ 1`.
    Partitioned {
        /// Index into the descriptor's buffer table.
        buffer: usize,
        /// Read/write mode.
        mode: AccessMode,
        /// Extra items on each side.
        halo: u64,
    },
    /// The instance touches the whole buffer regardless of its partition
    /// (e.g. MatrixMul reads all of `B`; Nbody reads all positions).
    Full {
        /// Index into the descriptor's buffer table.
        buffer: usize,
        /// Read/write mode (whole-buffer writes are only sound for a
        /// single-instance kernel; the planner rejects them otherwise).
        mode: AccessMode,
    },
}

impl AccessPattern {
    /// Shorthand for an aligned partitioned access.
    pub fn part(buffer: usize, mode: AccessMode) -> Self {
        AccessPattern::Partitioned {
            buffer,
            mode,
            halo: 0,
        }
    }

    /// The buffer index touched.
    pub fn buffer(&self) -> usize {
        match self {
            AccessPattern::Partitioned { buffer, .. } | AccessPattern::Full { buffer, .. } => {
                *buffer
            }
        }
    }

    /// The access mode.
    pub fn mode(&self) -> AccessMode {
        match self {
            AccessPattern::Partitioned { mode, .. } | AccessPattern::Full { mode, .. } => *mode,
        }
    }
}

/// One kernel of the application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Name (e.g. `"triad"`).
    pub name: String,
    /// Workload profile (per-item flops/bytes, efficiencies) — drives both
    /// the simulator's device models and Glinda's profiling.
    pub profile: KernelProfile,
    /// Size of the kernel's data-parallel domain (items to partition).
    pub domain: u64,
    /// Buffer access patterns.
    pub accesses: Vec<AccessPattern>,
    /// Optional per-item workload weights for *imbalanced* kernels (the
    /// ICS'14 Glinda extension): item `i` costs `weights[i]` times the
    /// profile's per-item flops/bytes, with weights normalised so their
    /// mean is 1 (the planner normalises on use). `None` = uniform.
    pub weights: Option<Vec<f32>>,
}

/// The kernel execution flow (the second classification criterion).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionFlow {
    /// Kernels run once, in order.
    Sequence,
    /// The kernel sequence is iterated.
    Loop {
        /// Number of iterations.
        iterations: u32,
    },
    /// Kernel execution forms a DAG: `edges[(a, b)]` means kernel `b`
    /// consumes kernel `a`'s output. (Data dependences still come from the
    /// access patterns; the edges document the intended flow and fix the
    /// emission order.)
    Dag {
        /// Flow edges between kernel indices.
        edges: Vec<(usize, usize)>,
    },
}

/// The synchronisation the application *requires* (paper §III-C): does the
/// host need the data between kernels (post-processing, output assembly),
/// and does a loop need per-iteration assembly at the host?
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncPolicy {
    /// A `taskwait` is required between consecutive kernels.
    pub between_kernels: bool,
    /// A `taskwait` is required between loop iterations.
    pub between_iterations: bool,
}

impl SyncPolicy {
    /// No synchronisation required.
    pub const NONE: SyncPolicy = SyncPolicy {
        between_kernels: false,
        between_iterations: false,
    };

    /// Synchronisation required everywhere.
    pub const FULL: SyncPolicy = SyncPolicy {
        between_kernels: true,
        between_iterations: true,
    };

    /// `true` if any synchronisation is required.
    pub fn any(&self) -> bool {
        self.between_kernels || self.between_iterations
    }
}

/// A complete application description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AppDescriptor {
    /// Application name.
    pub name: String,
    /// Buffer table.
    pub buffers: Vec<BufferSpec>,
    /// Kernel table (order = sequence order for `Sequence`/`Loop` flows).
    pub kernels: Vec<KernelSpec>,
    /// Execution flow.
    pub flow: ExecutionFlow,
    /// Required synchronisation.
    pub sync: SyncPolicy,
}

impl AppDescriptor {
    /// Loop iteration count (1 for non-loop flows).
    pub fn iterations(&self) -> u32 {
        match self.flow {
            ExecutionFlow::Loop { iterations } => iterations,
            _ => 1,
        }
    }

    /// Check internal consistency (buffer indices in range, partitioned
    /// buffers at least as large as the kernel domain, DAG edges in range
    /// and acyclic).
    pub fn validate(&self) -> Result<(), String> {
        if self.kernels.is_empty() {
            return Err("no kernels".into());
        }
        for k in &self.kernels {
            if let Some(w) = &k.weights {
                if w.len() as u64 != k.domain {
                    return Err(format!(
                        "kernel '{}': {} weights for a domain of {}",
                        k.name,
                        w.len(),
                        k.domain
                    ));
                }
                if w.iter().any(|x| !x.is_finite() || *x < 0.0) {
                    return Err(format!(
                        "kernel '{}': weights must be finite and non-negative",
                        k.name
                    ));
                }
            }
            for a in &k.accesses {
                let Some(buf) = self.buffers.get(a.buffer()) else {
                    return Err(format!("kernel '{}': buffer index out of range", k.name));
                };
                if let AccessPattern::Partitioned { .. } = a {
                    if buf.items < k.domain {
                        return Err(format!(
                            "kernel '{}': partitioned buffer '{}' smaller than domain",
                            k.name, buf.name
                        ));
                    }
                }
            }
        }
        if let ExecutionFlow::Dag { edges } = &self.flow {
            let n = self.kernels.len();
            for &(a, b) in edges {
                if a >= n || b >= n {
                    return Err(format!("DAG edge ({a}, {b}) out of range"));
                }
                if a >= b {
                    return Err(format!(
                        "DAG edge ({a}, {b}) must point forward in kernel order"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Helpers shared by this crate's unit tests.
#[doc(hidden)]
pub mod tests_support {
    use super::*;
    use hetero_runtime::AccessMode;

    /// A minimal descriptor with `nk` kernels over one buffer.
    pub fn toy_descriptor(nk: usize, flow: ExecutionFlow) -> AppDescriptor {
        let kernels = (0..nk)
            .map(|i| KernelSpec {
                name: format!("k{i}"),
                profile: KernelProfile::compute_only(100.0),
                domain: 1024,
                accesses: vec![AccessPattern::part(0, AccessMode::InOut)],
                weights: None,
            })
            .collect();
        AppDescriptor {
            name: "toy".into(),
            buffers: vec![BufferSpec {
                name: "x".into(),
                items: 1024,
                item_bytes: 4,
            }],
            kernels,
            flow,
            sync: SyncPolicy::NONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tests_support::toy_descriptor;

    #[test]
    fn iterations_accessor() {
        assert_eq!(toy_descriptor(1, ExecutionFlow::Sequence).iterations(), 1);
        assert_eq!(
            toy_descriptor(1, ExecutionFlow::Loop { iterations: 7 }).iterations(),
            7
        );
    }

    #[test]
    fn validation_catches_bad_buffer_index() {
        let mut d = toy_descriptor(1, ExecutionFlow::Sequence);
        d.kernels[0]
            .accesses
            .push(AccessPattern::part(9, hetero_runtime::AccessMode::In));
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_catches_small_partitioned_buffer() {
        let mut d = toy_descriptor(1, ExecutionFlow::Sequence);
        d.buffers[0].items = 10;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_catches_backward_dag_edges() {
        let mut d = toy_descriptor(
            3,
            ExecutionFlow::Dag {
                edges: vec![(2, 1)],
            },
        );
        assert!(d.validate().is_err());
        d.flow = ExecutionFlow::Dag {
            edges: vec![(0, 2), (1, 2)],
        };
        assert!(d.validate().is_ok());
    }

    #[test]
    fn sync_policy() {
        assert!(!SyncPolicy::NONE.any());
        assert!(SyncPolicy::FULL.any());
        assert!(SyncPolicy {
            between_kernels: true,
            between_iterations: false
        }
        .any());
    }
}
