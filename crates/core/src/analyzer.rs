//! The application analyzer (Fig. 2 of the paper).
//!
//! Input: an application descriptor (the "source code" view of the
//! parallelised application). Output: the application's class, the ranked
//! suitable strategies, the selected best strategy, and — on request — the
//! planned program and its simulated execution.

use crate::class::{classify, AppClass};
use crate::descriptor::AppDescriptor;
use crate::plan::{Plan, Planner};
use crate::ranking::{best_strategy, ranking, SyncMode};
use crate::strategy::{ExecutionConfig, Strategy};
use hetero_platform::Platform;
use hetero_runtime::{
    simulate, simulate_dp_perf_warmed, simulate_dp_perf_warmed_observed, simulate_observed,
    DepScheduler, Observer, PinnedScheduler, RunReport,
};
use serde::{Deserialize, Serialize};

/// The analyzer's verdict for one application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Analysis {
    /// Application name.
    pub app: String,
    /// Detected class (Fig. 3).
    pub class: AppClass,
    /// Whether inter-kernel synchronisation is required.
    pub sync: SyncMode,
    /// Suitable strategies, best first (Table I).
    pub ranking: Vec<Strategy>,
    /// The selected strategy.
    pub best: Strategy,
}

/// The application analyzer, bound to a platform.
pub struct Analyzer<'a> {
    planner: Planner<'a>,
}

impl<'a> Analyzer<'a> {
    /// An analyzer with default planning parameters for `platform`.
    pub fn new(platform: &'a Platform) -> Self {
        Analyzer {
            planner: Planner::new(platform),
        }
    }

    /// Access the underlying planner (to tweak `m` or decision floors).
    pub fn planner_mut(&mut self) -> &mut Planner<'a> {
        &mut self.planner
    }

    /// The underlying planner.
    pub fn planner(&self) -> &Planner<'a> {
        &self.planner
    }

    /// Step 2–3 of Fig. 2: classify and select the best strategy.
    pub fn analyze(&self, desc: &AppDescriptor) -> Analysis {
        let class = classify(desc);
        let sync = SyncMode::from(desc.sync);
        Analysis {
            app: desc.name.clone(),
            class,
            sync,
            ranking: ranking(class, sync),
            best: best_strategy(class, sync),
        }
    }

    /// [`Analyzer::analyze`] with MK-DAG refinement (the paper's §VII
    /// future work, implemented in [`crate::dag`]): chain-shaped DAGs are
    /// reclassified as MK-Seq, unlocking the static strategies for them.
    pub fn analyze_refined(&self, desc: &AppDescriptor) -> Analysis {
        let class = crate::dag::refine_class(desc);
        let sync = SyncMode::from(desc.sync);
        Analysis {
            app: desc.name.clone(),
            class,
            sync,
            ranking: ranking(class, sync),
            best: best_strategy(class, sync),
        }
    }

    /// Step 4: plan a program for an execution configuration.
    pub fn plan(&self, desc: &AppDescriptor, config: ExecutionConfig) -> Plan {
        self.planner.plan(desc, config)
    }

    /// Plan and simulate one configuration, using the scheduler the
    /// configuration calls for (DP-Perf runs with the paper's excluded
    /// profiling warm-up).
    pub fn simulate(&self, desc: &AppDescriptor, config: ExecutionConfig) -> RunReport {
        let plan = self.plan(desc, config);
        let platform = self.planner.platform;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate(&plan.program, platform, &mut s)
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                simulate_dp_perf_warmed(&plan.program, platform)
            }
            _ => simulate(&plan.program, platform, &mut PinnedScheduler),
        }
    }

    /// [`Analyzer::simulate`] with an [`Observer`] installed on the run
    /// (for DP-Perf, on the measured run only — the profiling warm-up is
    /// excluded from the observed stream just as it is from the report).
    pub fn simulate_observed(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        obs: &mut dyn Observer,
    ) -> RunReport {
        let plan = self.plan(desc, config);
        let platform = self.planner.platform;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_observed(&plan.program, platform, &mut s, obs)
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                simulate_dp_perf_warmed_observed(&plan.program, platform, obs)
            }
            _ => simulate_observed(&plan.program, platform, &mut PinnedScheduler, obs),
        }
    }

    /// Plan and simulate the analyzer-selected best strategy.
    pub fn run_best(&self, desc: &AppDescriptor) -> (Analysis, RunReport) {
        let analysis = self.analyze(desc);
        let report = self.simulate(desc, ExecutionConfig::Strategy(analysis.best));
        (analysis, report)
    }

    /// The paper's §IV experiment for one application: simulate the two
    /// single-device baselines and every suitable strategy; returns
    /// `(config, report)` pairs with the baselines first and strategies in
    /// Table I rank order.
    pub fn compare_all(&self, desc: &AppDescriptor) -> Vec<(ExecutionConfig, RunReport)> {
        let analysis = self.analyze(desc);
        let mut out = Vec::new();
        for config in [ExecutionConfig::OnlyGpu, ExecutionConfig::OnlyCpu]
            .into_iter()
            .chain(
                analysis
                    .ranking
                    .iter()
                    .map(|&s| ExecutionConfig::Strategy(s)),
            )
        {
            out.push((config, self.simulate(desc, config)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::tests_support::toy_descriptor;
    use crate::descriptor::ExecutionFlow;

    #[test]
    fn analysis_matches_table_i() {
        let platform = Platform::icpp15();
        let a = Analyzer::new(&platform);
        let d = toy_descriptor(1, ExecutionFlow::Sequence);
        let an = a.analyze(&d);
        assert_eq!(an.class, AppClass::SkOne);
        assert_eq!(an.best, Strategy::SpSingle);
        assert_eq!(an.ranking.len(), 3);
    }

    #[test]
    fn run_best_produces_a_report() {
        let platform = Platform::icpp15();
        let a = Analyzer::new(&platform);
        let mut d = toy_descriptor(1, ExecutionFlow::Sequence);
        // Make the kernel big enough for a hybrid split.
        d.buffers[0].items = 1 << 20;
        d.kernels[0].domain = 1 << 20;
        let (an, report) = a.run_best(&d);
        assert_eq!(an.best, Strategy::SpSingle);
        assert!(report.makespan > hetero_platform::SimTime::ZERO);
        assert_eq!(report.scheduler, "pinned");
    }

    #[test]
    fn compare_all_covers_baselines_and_ranking() {
        let platform = Platform::icpp15();
        let a = Analyzer::new(&platform);
        let mut d = toy_descriptor(1, ExecutionFlow::Sequence);
        d.buffers[0].items = 1 << 18;
        d.kernels[0].domain = 1 << 18;
        let results = a.compare_all(&d);
        assert_eq!(results.len(), 2 + 3); // OG, OC + 3 suitable strategies
        assert_eq!(results[0].0, ExecutionConfig::OnlyGpu);
        assert_eq!(results[1].0, ExecutionConfig::OnlyCpu);
        assert_eq!(results[2].0, ExecutionConfig::Strategy(Strategy::SpSingle));
    }
}
