//! Lowering strategies to executable programs.
//!
//! A [`Planner`] turns an [`AppDescriptor`] plus an [`ExecutionConfig`]
//! into a `hetero_runtime::Program`: concrete task instances with regions,
//! pinnings, and taskwait points. This is the mechanical part of the
//! paper's Fig. 2 step 4 — "enable the corresponding partitioning strategy
//! in the source code":
//!
//! * **Only-CPU / Only-GPU** — the paper's baselines: `m` CPU instances,
//!   or one whole-domain GPU instance, per kernel invocation.
//! * **SP-Single** — Glinda's decision per kernel: profile rates, build the
//!   transfer model from the declared accesses, solve, apply the hardware
//!   configuration check; emit one GPU partition + `m` CPU instances.
//! * **SP-Unified** — one β for the fused kernel sequence, solved with the
//!   one-round-trip transfer model (data stays device-resident between
//!   kernels); required taskwaits are still honoured if the application
//!   demands them (the paper evaluates exactly this mis-fit in Fig. 9/11).
//! * **SP-Varied** — a per-kernel β solved with that kernel's own transfer
//!   model; a taskwait is inserted after *every* kernel (the strategy's
//!   defining cost).
//! * **DP-Dep / DP-Perf** — each kernel split into `m` unpinned instances
//!   of size `domain/m`; placement is left to the runtime scheduler.
//! * **Converted-Static** (§V) — `m` equal unpinned-sized instances with
//!   the first `l ≈ β·m` pinned to the GPU and the rest to the CPU.

use crate::convert::ratio_to_counts_aligned;
use crate::descriptor::{AccessPattern, AppDescriptor, ExecutionFlow, KernelSpec};
use crate::profile::{ProfileStore, RateProfile};
use crate::strategy::{ExecutionConfig, Strategy};
use glinda::profiling::{default_probe_items, estimate_device_rate};
use glinda::{
    decide, estimate_rates, solve_multi, AcceleratorSide, DecisionConfig, HardwareConfig,
    MultiDeviceProblem, MultiSolution, PartitionProblem, TransferModel,
};
use hetero_platform::{DeviceId, DeviceKind, MemSpaceId, Platform};
use hetero_runtime::{
    split_even, Access, AdaptPlan, KernelAdaptPlan, KernelId, MultiAdaptPlan, PlanError, Program,
    ProgramBuilder, Region, ReplanError,
};
use serde::{Deserialize, Serialize};

/// Builds programs for one platform.
pub struct Planner<'a> {
    /// Target platform.
    pub platform: &'a Platform,
    /// Task instances per kernel for CPU-side splits — the paper's `m` (a
    /// multiple of the CPU thread count; the paper uses the
    /// best-performing multiple, we default to 2×).
    pub instances_per_kernel: u64,
    /// Task instances per kernel for the *dynamic* strategies. The paper's
    /// §V discussion observes that dynamic partitioning is sensitive to
    /// task size and recommends auto-tuning it; a finer granularity than
    /// the static CPU split lets the performance-aware scheduler balance
    /// devices without wave quantisation (default 8× the thread count; see
    /// also `matchmaker::analyzer` task-size tuning).
    pub dynamic_instances_per_kernel: u64,
    /// Utilisation thresholds for Glinda's decision step.
    pub decision: DecisionConfig,
    /// Multiplicative `(cpu, gpu)` skew applied to every profiled rate in
    /// [`Planner::kernel_model`] — `(1.0, 1.0)` is a faithful profile.
    /// Models a *mispredicted* profiling run (the platform misbehaved, or
    /// was perturbed by `FaultEvent::ProfilePerturb`, while the planner
    /// measured it): the plan is built from the skewed rates while
    /// execution proceeds at the true ones, which is exactly the gap the
    /// adaptive controller closes. Multi-accelerator waterfilling profiles
    /// each accelerator directly and is not skewed (future work).
    pub profile_skew: (f64, f64),
    /// Recorded rate profiles to plan from instead of probing
    /// ([`crate::ProfileStore`], typically loaded from disk). A kernel
    /// found in the store skips the probe; kernels absent from the store
    /// fall back to probing, so a partial recording is usable.
    /// `profile_skew` applies either way.
    pub profiles: Option<ProfileStore>,
}

/// The outcome of planning: the program plus, per kernel, the hardware
/// configuration the static solver chose (informational; `None` for
/// dynamic strategies and baselines).
#[derive(Debug)]
pub struct Plan {
    /// The executable program.
    pub program: Program,
    /// Per-kernel static decision, if a static strategy was planned.
    pub kernel_configs: Vec<Option<KernelSplit>>,
}

/// A static split decision for one kernel: two-way on single-accelerator
/// platforms (the paper's evaluation), N-way when the platform carries
/// several accelerators (Glinda supports "one or more accelerators,
/// identical or non-identical").
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum KernelSplit {
    /// CPU + one GPU (Glinda's decision procedure with utilisation check).
    Single(HardwareConfig),
    /// CPU + k accelerators (equal-finish-time waterfilling).
    Multi(MultiSolution),
}

impl KernelSplit {
    /// Items offloaded to accelerators, in total.
    pub fn gpu_items(&self, total: u64) -> u64 {
        match self {
            KernelSplit::Single(h) => h.gpu_items(total),
            KernelSplit::Multi(m) => m.accel_items.iter().sum(),
        }
    }

    /// Per-accelerator item counts in platform accelerator order (a single
    /// GPU yields a one-element vector).
    pub fn accel_items(&self, total: u64) -> Vec<u64> {
        match self {
            KernelSplit::Single(h) => vec![h.gpu_items(total)],
            KernelSplit::Multi(m) => m.accel_items.clone(),
        }
    }
}

/// Per-kernel profiled rates and transfer model (exposed for reports).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KernelModel {
    /// Whole-CPU sustained rate, items/s.
    pub cpu_rate: f64,
    /// Whole-GPU sustained rate (kernel only), items/s.
    pub gpu_rate: f64,
    /// Transfer model for one offload of this kernel.
    pub transfer: TransferModel,
}

/// The outcome of [`Planner::replan_surviving`]: how to run the rest of
/// the application on the devices that are still alive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurvivorPlan {
    /// The execution configuration for the survivors — the original
    /// strategy, or its downgrade ([`ExecutionConfig::OnlyCpu`] when only
    /// the host survives or no surviving accelerator amortises its
    /// transfers).
    pub config: ExecutionConfig,
    /// Surviving accelerators, in platform order (empty on an Only-CPU
    /// downgrade).
    pub accels: Vec<DeviceId>,
    /// The re-solved N-way split over `accels` (`None` when downgraded to
    /// Only-CPU with no accelerator left to solve for).
    pub multi: Option<MultiSolution>,
}

impl<'a> Planner<'a> {
    /// A planner with the paper's defaults for this platform: `m = 2 ×`
    /// CPU threads, decision floors of one warp-granule ×4 on the GPU and
    /// 16 items per CPU thread.
    pub fn new(platform: &'a Platform) -> Self {
        let threads = platform.cpu().spec.kind.slots() as u64;
        Planner {
            platform,
            instances_per_kernel: 2 * threads,
            dynamic_instances_per_kernel: 8 * threads,
            decision: DecisionConfig {
                min_items_per_cpu_thread: 16,
                min_gpu_granules: 4,
                cpu_threads: threads,
            },
            profile_skew: (1.0, 1.0),
            profiles: None,
        }
    }

    fn gpu(&self) -> &hetero_platform::Device {
        self.platform
            .gpu()
            .expect("planning requires a platform with a GPU")
    }

    fn link_bandwidth(&self) -> f64 {
        let gpu_space = self.gpu().mem_space;
        self.platform
            .link(MemSpaceId::HOST, gpu_space)
            .expect("GPU has a host link")
            .bandwidth_gbs
            * 1e9
    }

    /// Profile one kernel and derive its transfer model.
    ///
    /// Rates come from a recorded [`ProfileStore`] entry when one is
    /// installed and names this kernel, otherwise from a fresh probe
    /// against the platform roofline; `profile_skew` applies either way.
    ///
    /// `per_offload_transfers = false` models device-resident data (the
    /// SP-Unified interior): the transfer model is zeroed.
    pub fn kernel_model(
        &self,
        desc: &AppDescriptor,
        k: usize,
        per_offload_transfers: bool,
    ) -> KernelModel {
        let spec = &desc.kernels[k];
        let rates = self
            .profiles
            .as_ref()
            .and_then(|store| store.get(&spec.name))
            .unwrap_or_else(|| self.probed_rates(spec));
        let transfer = if per_offload_transfers {
            self.transfer_model(desc, &[spec])
        } else {
            TransferModel::NONE
        };
        KernelModel {
            cpu_rate: rates.cpu_rate * self.profile_skew.0,
            gpu_rate: rates.gpu_rate * self.profile_skew.1,
            transfer,
        }
    }

    /// Probe one kernel against the platform roofline (raw rates, no skew).
    fn probed_rates(&self, spec: &KernelSpec) -> RateProfile {
        let probe = default_probe_items(spec.domain, self.gpu().spec.kind.partition_granularity());
        let rates = estimate_rates(self.platform, &spec.profile, probe);
        RateProfile {
            cpu_rate: rates.cpu_rate,
            gpu_rate: rates.gpu_rate,
        }
    }

    /// Probe every kernel of `desc` and return the recordings as a
    /// [`ProfileStore`] (raw, unskewed rates — suitable for
    /// [`ProfileStore::save`] and later replay via [`Planner::profiles`]).
    pub fn record_profiles(&self, desc: &AppDescriptor) -> ProfileStore {
        let mut store = ProfileStore::new();
        for spec in &desc.kernels {
            store.record(&spec.name, self.probed_rates(spec));
        }
        store
    }

    /// Build the transfer model for offloading a *fused* run of `kernels`
    /// (length 1 for a single kernel): inputs are buffers read before being
    /// written within the fusion; outputs are buffers written anywhere.
    fn transfer_model(&self, desc: &AppDescriptor, kernels: &[&KernelSpec]) -> TransferModel {
        let mut written = vec![false; desc.buffers.len()];
        let mut h2d_per_item = 0.0;
        let mut d2h_per_item = 0.0;
        let mut fixed = 0.0;
        let mut d2h_seen = vec![false; desc.buffers.len()];
        let mut h2d_seen = vec![false; desc.buffers.len()];
        for spec in kernels {
            for a in &spec.accesses {
                let b = a.buffer();
                let bytes = desc.buffers[b].item_bytes as f64;
                if a.mode().reads() && !written[b] && !h2d_seen[b] {
                    h2d_seen[b] = true;
                    match a {
                        AccessPattern::Partitioned { .. } => h2d_per_item += bytes,
                        AccessPattern::Full { .. } => fixed += desc.buffers[b].items as f64 * bytes,
                    }
                }
                if a.mode().writes() {
                    written[b] = true;
                    if !d2h_seen[b] {
                        d2h_seen[b] = true;
                        match a {
                            AccessPattern::Partitioned { .. } => d2h_per_item += bytes,
                            AccessPattern::Full { .. } => {
                                fixed += desc.buffers[b].items as f64 * bytes
                            }
                        }
                    }
                }
            }
        }
        TransferModel {
            h2d_bytes_per_item: h2d_per_item,
            d2h_bytes_per_item: d2h_per_item,
            fixed_bytes: fixed,
        }
    }

    /// Glinda decision for one kernel with its own per-offload transfers.
    /// On a multi-accelerator platform this becomes an N-way split.
    ///
    /// Imbalanced kernels (with per-item weights) use the split-by-work
    /// solver on single-accelerator platforms; on multi-accelerator
    /// platforms the N-way solver splits by item count (instance costs are
    /// still weighted at execution time — the split is merely less
    /// sharp). Combining the two solvers is future work.
    pub fn decide_kernel(&self, desc: &AppDescriptor, k: usize) -> KernelSplit {
        let model = self.kernel_model(desc, k, true);
        if self.platform.accelerators().count() > 1 {
            return KernelSplit::Multi(self.decide_multi(
                desc.kernels[k].domain,
                model.cpu_rate,
                &desc.kernels[k].profile,
                model.transfer,
            ));
        }
        if let Some(weights) = &desc.kernels[k].weights {
            return KernelSplit::Single(self.decide_imbalanced(
                desc.kernels[k].domain,
                weights,
                &model,
            ));
        }
        KernelSplit::Single(decide(&self.kernel_problem(desc, k), &self.decision))
    }

    /// The two-way partitioning problem SP-Single/SP-Varied solve for one
    /// kernel on a single-accelerator platform (with the kernel's own
    /// per-offload transfer model). This is also the problem the adaptive
    /// controller re-solves against observed rates mid-run.
    pub fn kernel_problem(&self, desc: &AppDescriptor, k: usize) -> PartitionProblem {
        let model = self.kernel_model(desc, k, true);
        PartitionProblem {
            items: desc.kernels[k].domain,
            cpu_rate: model.cpu_rate,
            gpu_rate: model.gpu_rate,
            transfer: model.transfer,
            link_bandwidth: self.link_bandwidth(),
            gpu_granularity: self.gpu().spec.kind.partition_granularity(),
        }
    }

    /// Glinda's imbalanced-workload split (ICS'14): the GPU takes the item
    /// prefix whose *work* (not count) balances the devices. Weights are
    /// normalised to mean 1 so the profiled items/s rates double as
    /// work-units/s.
    fn decide_imbalanced(
        &self,
        domain: u64,
        weights: &[f32],
        model: &KernelModel,
    ) -> HardwareConfig {
        assert_eq!(weights.len() as u64, domain, "weights length != domain");
        let mean: f64 = weights.iter().map(|&w| w as f64).sum::<f64>() / domain as f64;
        let normalised: Vec<f32> = weights.iter().map(|&w| (w as f64 / mean) as f32).collect();
        let problem = glinda::imbalanced::ImbalancedProblem {
            weights: normalised,
            cpu_rate: model.cpu_rate,
            gpu_rate: model.gpu_rate,
            transfer: model.transfer,
            link_bandwidth: self.link_bandwidth(),
            gpu_granularity: self.gpu().spec.kind.partition_granularity(),
        };
        let sol = glinda::solve_imbalanced(&problem);
        // Apply the same utilisation floors as the uniform decision.
        let gpu_floor =
            self.decision.min_gpu_granules * self.gpu().spec.kind.partition_granularity();
        let cpu_floor = self.decision.min_items_per_cpu_thread * self.decision.cpu_threads;
        let (gpu_items, cpu_items) = (sol.split, domain - sol.split);
        if gpu_items < gpu_floor {
            return HardwareConfig::OnlyCpu;
        }
        if cpu_items < cpu_floor {
            return HardwareConfig::OnlyGpu;
        }
        HardwareConfig::Hybrid(glinda::PartitionSolution {
            gpu_items,
            cpu_items,
            beta: sol.gpu_work_fraction,
            predicted_time: sol.predicted_time,
            metrics: glinda::PartitionMetrics {
                relative_capability: model.gpu_rate / model.cpu_rate,
                compute_transfer_gap: if model.transfer.bytes_per_item() > 0.0 {
                    model.gpu_rate * model.transfer.bytes_per_item() / self.link_bandwidth()
                } else {
                    0.0
                },
            },
        })
    }

    /// N-way split across all accelerators of the platform: profile each
    /// accelerator independently, then waterfill to equal finish times.
    fn decide_multi(
        &self,
        items: u64,
        cpu_rate: f64,
        profile: &hetero_platform::KernelProfile,
        transfer: TransferModel,
    ) -> MultiSolution {
        solve_multi(&self.multi_problem(items, cpu_rate, profile, transfer))
    }

    /// The N-way partitioning problem over *all* platform accelerators:
    /// each accelerator profiled directly against the roofline, the shared
    /// transfer model per side, per-link bandwidths. This is the problem
    /// the static N-way decision solves and the one the adaptive
    /// controller and plan repair re-solve against observed rates.
    fn multi_problem(
        &self,
        items: u64,
        cpu_rate: f64,
        profile: &hetero_platform::KernelProfile,
        transfer: TransferModel,
    ) -> MultiDeviceProblem {
        let accelerators = self
            .platform
            .accelerators()
            .map(|dev| {
                let probe = default_probe_items(items, dev.spec.kind.partition_granularity());
                let link = self
                    .platform
                    .link(MemSpaceId::HOST, dev.mem_space)
                    .expect("accelerator has a host link");
                AcceleratorSide {
                    rate: estimate_device_rate(dev, profile, probe),
                    transfer,
                    link_bandwidth: link.bandwidth_gbs * 1e9,
                    granularity: dev.spec.kind.partition_granularity(),
                }
            })
            .collect();
        MultiDeviceProblem {
            items,
            cpu_rate,
            accelerators,
        }
    }

    /// Glinda decision for the fused kernel sequence (SP-Unified): one
    /// partitioning point, a single transfer round-trip, per-item cost
    /// summed over all kernel invocations of the whole (possibly iterated)
    /// sequence.
    pub fn decide_unified(&self, desc: &AppDescriptor) -> KernelSplit {
        let domain = desc.kernels[0].domain;
        assert!(
            desc.kernels.iter().all(|k| k.domain == domain),
            "SP-Unified requires a common kernel domain"
        );
        let iters = desc.iterations() as f64;
        let mut cpu_tpi = 0.0;
        for k in 0..desc.kernels.len() {
            let m = self.kernel_model(desc, k, false);
            cpu_tpi += 1.0 / m.cpu_rate;
        }
        cpu_tpi *= iters;
        if self.platform.accelerators().count() > 1 {
            return KernelSplit::Multi(solve_multi(
                &self.unified_multi_problem(desc, 1.0 / cpu_tpi),
            ));
        }
        KernelSplit::Single(decide(&self.unified_problem(desc), &self.decision))
    }

    /// The N-way problem for the fused kernel sequence: per-item times of
    /// every kernel summed per accelerator (the device runs the whole
    /// sequence on its segment), one transfer round-trip.
    fn unified_multi_problem(&self, desc: &AppDescriptor, cpu_rate: f64) -> MultiDeviceProblem {
        let domain = desc.kernels[0].domain;
        let kernel_refs: Vec<&KernelSpec> = desc.kernels.iter().collect();
        let transfer = self.transfer_model(desc, &kernel_refs);
        // Fuse per-item times into a synthetic profile-equivalent rate per
        // accelerator; simpler and adequate: waterfill on fused rates
        // computed per device.
        let accelerators = self
            .platform
            .accelerators()
            .map(|dev| {
                let mut tpi = 0.0;
                for k in &desc.kernels {
                    let probe = default_probe_items(domain, dev.spec.kind.partition_granularity());
                    tpi += 1.0 / estimate_device_rate(dev, &k.profile, probe);
                }
                tpi *= desc.iterations() as f64;
                let link = self
                    .platform
                    .link(MemSpaceId::HOST, dev.mem_space)
                    .expect("accelerator has a host link");
                AcceleratorSide {
                    rate: 1.0 / tpi,
                    transfer,
                    link_bandwidth: link.bandwidth_gbs * 1e9,
                    granularity: dev.spec.kind.partition_granularity(),
                }
            })
            .collect();
        MultiDeviceProblem {
            items: domain,
            cpu_rate,
            accelerators,
        }
    }

    /// The fused-sequence partitioning problem SP-Unified solves on a
    /// single-accelerator platform: one partitioning point over the whole
    /// (possibly iterated) kernel sequence, one transfer round-trip. Also
    /// the problem the adaptive controller re-solves for SP-Unified plans.
    pub fn unified_problem(&self, desc: &AppDescriptor) -> PartitionProblem {
        let domain = desc.kernels[0].domain;
        assert!(
            desc.kernels.iter().all(|k| k.domain == domain),
            "SP-Unified requires a common kernel domain"
        );
        let iters = desc.iterations() as f64;
        let mut cpu_tpi = 0.0;
        let mut gpu_tpi = 0.0;
        for k in 0..desc.kernels.len() {
            let m = self.kernel_model(desc, k, false);
            cpu_tpi += 1.0 / m.cpu_rate;
            gpu_tpi += 1.0 / m.gpu_rate;
        }
        cpu_tpi *= iters;
        gpu_tpi *= iters;
        let kernel_refs: Vec<&KernelSpec> = desc.kernels.iter().collect();
        PartitionProblem {
            items: domain,
            cpu_rate: 1.0 / cpu_tpi,
            gpu_rate: 1.0 / gpu_tpi,
            transfer: self.transfer_model(desc, &kernel_refs),
            link_bandwidth: self.link_bandwidth(),
            gpu_granularity: self.gpu().spec.kind.partition_granularity(),
        }
    }

    /// The [`AdaptPlan`] to carry into `simulate_adaptive` for a static
    /// hybrid plan: the partitioning problem this planner solved (with
    /// whatever misprediction `profile_skew` baked in) plus the emitted
    /// split and the accelerator it pins to.
    ///
    /// Returns `None` when the run has nothing the controller could
    /// re-solve: dynamic strategies and single-device baselines, non-hybrid
    /// decisions (Only-CPU/Only-GPU fallbacks of the decision step),
    /// imbalanced weighted kernels (split by work, not count), and
    /// SP-Varied over several kernels (per-kernel re-solving is future
    /// work).
    ///
    /// On a multi-accelerator platform the plan additionally carries the
    /// N-way [`MultiAdaptPlan`] — the waterfilling problem and split over
    /// *all* accelerators — so barrier re-solves and degraded-mode plan
    /// repair can redo the N-way split from observed rates (the two-way
    /// `problem`/`solution` pair is kept against the first accelerator for
    /// reporting continuity).
    pub fn adapt_plan(&self, desc: &AppDescriptor, config: ExecutionConfig) -> Option<AdaptPlan> {
        // SP-Varied over several kernels carries one problem/split *per
        // kernel* instead of the SP-Single projection (each SP-Varied
        // epoch runs exactly one kernel, so barrier re-solves can use
        // that kernel's own problem against its own observed rates).
        if config == ExecutionConfig::Strategy(Strategy::SpVaried) && desc.kernels.len() > 1 {
            return self.varied_adapt_plan(desc);
        }
        let (problem, multi_problem) = match config {
            ExecutionConfig::Strategy(Strategy::SpSingle | Strategy::SpVaried) => {
                if desc.kernels.len() != 1 || desc.kernels[0].weights.is_some() {
                    return None;
                }
                let model = self.kernel_model(desc, 0, true);
                let multi = (self.platform.accelerators().count() > 1).then(|| {
                    self.multi_problem(
                        desc.kernels[0].domain,
                        model.cpu_rate,
                        &desc.kernels[0].profile,
                        model.transfer,
                    )
                });
                (self.kernel_problem(desc, 0), multi)
            }
            ExecutionConfig::Strategy(Strategy::SpUnified) => {
                if desc.kernels.iter().any(|k| k.weights.is_some()) {
                    return None;
                }
                let problem = self.unified_problem(desc);
                let multi = (self.platform.accelerators().count() > 1)
                    .then(|| self.unified_multi_problem(desc, problem.cpu_rate));
                (problem, multi)
            }
            _ => return None,
        };
        match decide(&problem, &self.decision) {
            HardwareConfig::Hybrid(solution) => Some(AdaptPlan {
                problem,
                solution,
                gpu: self.gpu().id,
                multi: multi_problem.map(|problem| {
                    let solution = solve_multi(&problem);
                    MultiAdaptPlan {
                        problem,
                        solution,
                        accels: self.platform.accelerators().map(|d| d.id).collect(),
                    }
                }),
                per_kernel: None,
            }),
            _ => None,
        }
    }

    /// The per-kernel [`AdaptPlan`] behind a multi-kernel SP-Varied run:
    /// one [`KernelAdaptPlan`] per kernel whose decision came out hybrid
    /// (single-device kernels have no split to correct and carry no
    /// entry). The top-level problem/solution pair is the first hybrid
    /// kernel's, kept for reporting continuity; weighted kernels and
    /// multi-accelerator platforms still yield no plan (the N-way ×
    /// per-kernel combination is future work).
    fn varied_adapt_plan(&self, desc: &AppDescriptor) -> Option<AdaptPlan> {
        if desc.kernels.iter().any(|k| k.weights.is_some())
            || self.platform.accelerators().count() > 1
        {
            return None;
        }
        let mut per_kernel = Vec::new();
        for k in 0..desc.kernels.len() {
            let problem = self.kernel_problem(desc, k);
            if let HardwareConfig::Hybrid(solution) = decide(&problem, &self.decision) {
                per_kernel.push(KernelAdaptPlan {
                    kernel: k,
                    problem,
                    solution,
                });
            }
        }
        let first = per_kernel.first()?;
        Some(AdaptPlan {
            problem: first.problem,
            solution: first.solution,
            gpu: self.gpu().id,
            multi: None,
            per_kernel: Some(per_kernel),
        })
    }

    /// Re-solve the static plan for `config` over a *surviving* device
    /// subset — the planner half of degraded-mode plan repair (DESIGN.md
    /// §8.6). `survivors` is the set of devices still accepting work (the
    /// executor passes everything not permanently dead or
    /// breaker-quarantined); `observed_cpu_rate` / `observed_accel_rates`
    /// (the latter indexed in platform accelerator order) carry live
    /// whole-device throughput observations that override the profiled
    /// model where present.
    ///
    /// The result downgrades the strategy when the device set demands it:
    /// with no surviving accelerator the plan collapses to
    /// [`ExecutionConfig::OnlyCpu`] (everything on the host), otherwise the
    /// N-way waterfilling problem is restricted to the surviving
    /// accelerators and re-solved. Errors are typed: an empty survivor set
    /// is [`ReplanError::NoSurvivingAccelerator`]; a configuration with no
    /// static plan to re-solve (dynamic strategies, single-device
    /// baselines, weighted kernels) or unusable observed rates is
    /// [`ReplanError::SolverInfeasible`].
    pub fn replan_surviving(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        survivors: &[DeviceId],
        observed_cpu_rate: Option<f64>,
        observed_accel_rates: &[Option<f64>],
    ) -> Result<SurvivorPlan, ReplanError> {
        if survivors.is_empty() {
            return Err(ReplanError::NoSurvivingAccelerator);
        }
        let host = self.platform.cpu().id;
        if !survivors.contains(&host) {
            // The simulator's host is immortal (it is the failover target
            // of last resort); a survivor set without it is unplannable.
            return Err(ReplanError::SolverInfeasible {
                detail: "host CPU is not among the survivors".into(),
            });
        }
        let accels: Vec<DeviceId> = self
            .platform
            .accelerators()
            .map(|d| d.id)
            .filter(|d| survivors.contains(d))
            .collect();
        if accels.is_empty() {
            // Only the host survives: SP-* degrades to the Only-CPU
            // baseline — there is nothing left to partition against.
            return Ok(SurvivorPlan {
                config: ExecutionConfig::OnlyCpu,
                accels,
                multi: None,
            });
        }
        let full = match config {
            ExecutionConfig::Strategy(Strategy::SpSingle | Strategy::SpVaried) => {
                if desc.kernels.len() != 1 || desc.kernels[0].weights.is_some() {
                    return Err(ReplanError::SolverInfeasible {
                        detail: "per-kernel or weighted plans have no single split to re-solve"
                            .into(),
                    });
                }
                let model = self.kernel_model(desc, 0, true);
                self.multi_problem(
                    desc.kernels[0].domain,
                    model.cpu_rate,
                    &desc.kernels[0].profile,
                    model.transfer,
                )
            }
            ExecutionConfig::Strategy(Strategy::SpUnified) => {
                if desc.kernels.iter().any(|k| k.weights.is_some()) {
                    return Err(ReplanError::SolverInfeasible {
                        detail: "weighted kernels split by work, not count".into(),
                    });
                }
                self.unified_multi_problem(desc, self.unified_problem(desc).cpu_rate)
            }
            _ => {
                return Err(ReplanError::SolverInfeasible {
                    detail: format!("{config} has no static plan to re-solve"),
                })
            }
        };
        // Restrict the problem to the surviving accelerators, overriding
        // profiled rates with live observations where available.
        let all_accels: Vec<DeviceId> = self.platform.accelerators().map(|d| d.id).collect();
        let mut sides = Vec::with_capacity(accels.len());
        for (i, dev) in all_accels.iter().enumerate() {
            if !accels.contains(dev) {
                continue;
            }
            let mut side = full.accelerators[i];
            if let Some(rate) = observed_accel_rates.get(i).copied().flatten() {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(ReplanError::SolverInfeasible {
                        detail: format!("observed rate for dev{} is unusable ({rate})", dev.0),
                    });
                }
                side.rate = rate;
            }
            sides.push(side);
        }
        let mut cpu_rate = full.cpu_rate;
        if let Some(rate) = observed_cpu_rate {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(ReplanError::SolverInfeasible {
                    detail: format!("observed host rate is unusable ({rate})"),
                });
            }
            cpu_rate = rate;
        }
        let solution = solve_multi(&MultiDeviceProblem {
            items: full.items,
            cpu_rate,
            accelerators: sides,
        });
        // The waterfilling solver may drop every accelerator (none of them
        // amortises its transfers any more): that, too, is an Only-CPU
        // downgrade rather than a split.
        let config = if solution.accel_items.iter().all(|&x| x == 0) {
            ExecutionConfig::OnlyCpu
        } else {
            config
        };
        Ok(SurvivorPlan {
            config,
            accels,
            multi: Some(solution),
        })
    }

    /// Plan a program for the given execution configuration; panics on
    /// malformed inputs (use [`Planner::try_plan`] to handle the
    /// [`PlanError`] instead).
    pub fn plan(&self, desc: &AppDescriptor, config: ExecutionConfig) -> Plan {
        self.try_plan(desc, config)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plan a program for the given execution configuration, returning a
    /// typed [`PlanError`] when the descriptor, the strategy/application
    /// pairing, or the declared accesses are malformed.
    pub fn try_plan(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
    ) -> Result<Plan, PlanError> {
        desc.validate()
            .map_err(|reason| PlanError::InvalidDescriptor {
                app: desc.name.clone(),
                reason,
            })?;
        if self.platform.gpu().is_none() {
            return Err(PlanError::NoGpu);
        }
        let nk = desc.kernels.len();
        if matches!(config, ExecutionConfig::Strategy(Strategy::SpSingle)) && nk != 1 {
            return Err(PlanError::SingleKernelStrategy { kernels: nk });
        }
        if matches!(config, ExecutionConfig::Strategy(Strategy::SpUnified))
            && desc
                .kernels
                .iter()
                .any(|k| k.domain != desc.kernels[0].domain)
        {
            return Err(PlanError::UnifiedDomainMismatch);
        }

        // Static decisions, computed once and reused across iterations
        // ("we determine the partitioning for one iteration, and use it
        // for all iterations").
        let kernel_configs: Vec<Option<KernelSplit>> = match config {
            ExecutionConfig::Strategy(Strategy::SpSingle) => {
                vec![Some(self.decide_kernel(desc, 0))]
            }
            ExecutionConfig::Strategy(Strategy::SpVaried) => {
                (0..nk).map(|k| Some(self.decide_kernel(desc, k))).collect()
            }
            ExecutionConfig::Strategy(Strategy::SpUnified) => {
                let unified = self.decide_unified(desc);
                (0..nk).map(|_| Some(unified.clone())).collect()
            }
            ExecutionConfig::ConvertedStatic => {
                (0..nk).map(|k| Some(self.decide_kernel(desc, k))).collect()
            }
            _ => vec![None; nk],
        };

        let mut b = Program::builder();
        for buf in &desc.buffers {
            b.buffer(&buf.name, buf.items, buf.item_bytes);
        }
        let kernel_ids: Vec<KernelId> = desc
            .kernels
            .iter()
            .map(|k| b.kernel(&k.name, k.profile))
            .collect();

        let order = self.kernel_order(desc);
        let iterations = desc.iterations();
        for it in 0..iterations {
            for (pos, &k) in order.iter().enumerate() {
                self.emit_kernel(&mut b, desc, k, kernel_ids[k], &config, &kernel_configs)?;
                let last_kernel = pos + 1 == order.len();
                let sync_here = self.taskwait_after(desc, &config, last_kernel);
                if sync_here && !(last_kernel && it + 1 == iterations) {
                    b.taskwait();
                }
            }
        }

        Ok(Plan {
            program: b.try_build()?,
            kernel_configs,
        })
    }

    /// Kernel emission order: sequence order, or a topological order of the
    /// DAG edges (which, by validation, is just index order).
    fn kernel_order(&self, desc: &AppDescriptor) -> Vec<usize> {
        match &desc.flow {
            ExecutionFlow::Sequence | ExecutionFlow::Loop { .. } | ExecutionFlow::Dag { .. } => {
                (0..desc.kernels.len()).collect()
            }
        }
    }

    /// Should a taskwait follow this kernel?
    fn taskwait_after(
        &self,
        desc: &AppDescriptor,
        config: &ExecutionConfig,
        last_kernel_of_iteration: bool,
    ) -> bool {
        let required = if last_kernel_of_iteration {
            desc.sync.between_iterations || desc.sync.between_kernels
        } else {
            desc.sync.between_kernels
        };
        match config {
            // SP-Varied *adds* synchronisation after every kernel — the
            // cost of knowing each kernel's start and end.
            ExecutionConfig::Strategy(Strategy::SpVaried) => true,
            // Everyone else synchronises exactly where the application
            // requires it.
            _ => required,
        }
    }

    /// Emit the instances of one kernel invocation.
    fn emit_kernel(
        &self,
        b: &mut ProgramBuilder,
        desc: &AppDescriptor,
        k: usize,
        kid: KernelId,
        config: &ExecutionConfig,
        kernel_configs: &[Option<KernelSplit>],
    ) -> Result<(), PlanError> {
        let spec = &desc.kernels[k];
        let n = spec.domain;
        let m = self.instances_per_kernel;
        let cpu = self.platform.cpu().id;
        let gpu = self.gpu().id;

        match config {
            ExecutionConfig::OnlyCpu => {
                self.emit_split(b, desc, spec, kid, 0, n, m, Some(cpu))?;
            }
            ExecutionConfig::OnlyGpu => {
                self.emit_split(b, desc, spec, kid, 0, n, 1, Some(gpu))?;
            }
            ExecutionConfig::Strategy(Strategy::DpDep)
            | ExecutionConfig::Strategy(Strategy::DpPerf) => {
                self.emit_split(
                    b,
                    desc,
                    spec,
                    kid,
                    0,
                    n,
                    self.dynamic_instances_per_kernel,
                    None,
                )?;
            }
            ExecutionConfig::Strategy(
                Strategy::SpSingle | Strategy::SpUnified | Strategy::SpVaried,
            ) => {
                let cfg = kernel_configs[k]
                    .as_ref()
                    .expect("static strategy has per-kernel configs");
                // Accelerators take contiguous prefix segments in platform
                // order; the CPU takes the tail, split over `m` instances.
                let mut off = 0u64;
                for (dev, items) in self
                    .platform
                    .accelerators()
                    .map(|d| d.id)
                    .zip(cfg.accel_items(n))
                {
                    let items = items.min(n - off);
                    if items > 0 {
                        self.emit_split(b, desc, spec, kid, off, off + items, 1, Some(dev))?;
                        off += items;
                    }
                }
                if off < n {
                    self.emit_split(b, desc, spec, kid, off, n, m, Some(cpu))?;
                }
            }
            ExecutionConfig::ConvertedStatic => {
                let cfg = kernel_configs[k]
                    .as_ref()
                    .expect("converted-static has per-kernel configs");
                let beta = cfg.gpu_items(n) as f64 / n.max(1) as f64;
                // The conversion mimics the dynamic runtime's granularity;
                // the CPU count is aligned to whole thread waves (see
                // `convert::ratio_to_counts_aligned`).
                let md = self.dynamic_instances_per_kernel;
                let threads = self.platform.cpu().spec.kind.slots() as u64;
                let (gpu_count, _cpu_count) = ratio_to_counts_aligned(beta, md, threads);
                let chunks = split_even(n, md);
                for (i, (s, e)) in chunks.into_iter().enumerate() {
                    let dev = if (i as u64) < gpu_count { gpu } else { cpu };
                    self.emit_split(b, desc, spec, kid, s, e, 1, Some(dev))?;
                }
            }
        }
        Ok(())
    }

    /// Emit `parts` instances covering `[start, end)` of the kernel domain,
    /// pinned to `dev` (or unpinned for dynamic scheduling).
    #[allow(clippy::too_many_arguments)]
    fn emit_split(
        &self,
        b: &mut ProgramBuilder,
        desc: &AppDescriptor,
        spec: &KernelSpec,
        kid: KernelId,
        start: u64,
        end: u64,
        parts: u64,
        dev: Option<DeviceId>,
    ) -> Result<(), PlanError> {
        let prefix = weight_prefix(spec);
        for (s, e) in split_even(end - start, parts) {
            let (s, e) = (start + s, start + e);
            let accesses = instance_accesses(desc, spec, s, e)?;
            let cost_scale = match &prefix {
                None => 1.0,
                Some(pre) => {
                    // Average weight of this instance's items, relative to
                    // the kernel-wide mean (normalised so uniform = 1.0).
                    let total = *pre.last().unwrap();
                    let mean = total / spec.domain as f64;
                    let work = pre[e as usize] - pre[s as usize];
                    work / ((e - s) as f64 * mean)
                }
            };
            b.submit(hetero_runtime::TaskDesc {
                kernel: kid,
                items: e - s,
                accesses,
                pinned: dev,
                cost_scale,
            });
        }
        Ok(())
    }
}

/// Prefix sums of a kernel's per-item weights (`prefix[i]` = total weight of
/// items `[0, i)`), or `None` for uniform kernels.
fn weight_prefix(spec: &KernelSpec) -> Option<Vec<f64>> {
    let w = spec.weights.as_ref()?;
    assert_eq!(
        w.len() as u64,
        spec.domain,
        "kernel '{}': weights length must equal the domain",
        spec.name
    );
    let mut pre = Vec::with_capacity(w.len() + 1);
    pre.push(0.0f64);
    for &x in w {
        pre.push(pre.last().unwrap() + x as f64);
    }
    Some(pre)
}

/// Materialise the access list of an instance covering `[s, e)`, rejecting
/// access shapes no instance could execute soundly.
fn instance_accesses(
    desc: &AppDescriptor,
    spec: &KernelSpec,
    s: u64,
    e: u64,
) -> Result<Vec<Access>, PlanError> {
    let whole = spec.domain == e - s;
    let mut out = Vec::with_capacity(spec.accesses.len());
    for a in &spec.accesses {
        out.push(match *a {
            AccessPattern::Partitioned { buffer, mode, halo } => {
                if halo > 0 && mode.writes() {
                    return Err(PlanError::HaloWrite {
                        kernel: spec.name.clone(),
                    });
                }
                let items = desc.buffers[buffer].items;
                let lo = s.saturating_sub(halo);
                let hi = (e + halo).min(items);
                Access {
                    region: Region::new(hetero_runtime::BufferId(buffer), lo, hi),
                    mode,
                }
            }
            AccessPattern::Full { buffer, mode } => {
                if mode.writes() && !whole {
                    return Err(PlanError::PartitionedFullWrite {
                        kernel: spec.name.clone(),
                    });
                }
                let items = desc.buffers[buffer].items;
                Access {
                    region: Region::new(hetero_runtime::BufferId(buffer), 0, items),
                    mode,
                }
            }
        });
    }
    Ok(out)
}

/// Which device kind a `DeviceKind` display uses (report helper).
pub fn device_kind_label(kind: DeviceKind) -> &'static str {
    match kind {
        DeviceKind::Cpu { .. } => "CPU",
        DeviceKind::Gpu { .. } => "GPU",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{BufferSpec, SyncPolicy};
    use hetero_platform::KernelProfile;
    use hetero_runtime::AccessMode;
    use hetero_runtime::Op;

    /// A compute-heavy single-kernel app where the GPU is 4x the CPU.
    fn sk_one(n: u64) -> AppDescriptor {
        AppDescriptor {
            name: "sk1".into(),
            buffers: vec![
                BufferSpec {
                    name: "in".into(),
                    items: n,
                    item_bytes: 4,
                },
                BufferSpec {
                    name: "out".into(),
                    items: n,
                    item_bytes: 4,
                },
            ],
            kernels: vec![KernelSpec {
                name: "k".into(),
                profile: KernelProfile::compute_only(1e6),
                domain: n,
                accesses: vec![
                    AccessPattern::part(0, AccessMode::In),
                    AccessPattern::part(1, AccessMode::Out),
                ],
                weights: None,
            }],
            flow: ExecutionFlow::Sequence,
            sync: SyncPolicy::NONE,
        }
    }

    fn mk_seq(n: u64, nk: usize, sync: bool) -> AppDescriptor {
        let kernels = (0..nk)
            .map(|i| KernelSpec {
                name: format!("k{i}"),
                profile: KernelProfile::memory_only(12.0),
                domain: n,
                accesses: vec![
                    AccessPattern::part(i % 2, AccessMode::In),
                    AccessPattern::part((i + 1) % 2, AccessMode::Out),
                ],
                weights: None,
            })
            .collect();
        AppDescriptor {
            name: "mkseq".into(),
            buffers: vec![
                BufferSpec {
                    name: "a".into(),
                    items: n,
                    item_bytes: 4,
                },
                BufferSpec {
                    name: "b".into(),
                    items: n,
                    item_bytes: 4,
                },
            ],
            kernels,
            flow: ExecutionFlow::Sequence,
            sync: SyncPolicy {
                between_kernels: sync,
                between_iterations: sync,
            },
        }
    }

    #[test]
    fn only_cpu_emits_m_pinned_instances() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(&sk_one(100_000), ExecutionConfig::OnlyCpu);
        let tasks = plan.program.tasks();
        assert_eq!(tasks.len(), 24);
        assert!(tasks.iter().all(|(_, t)| t.pinned == Some(DeviceId(0))));
        let total: u64 = tasks.iter().map(|(_, t)| t.items).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn only_gpu_emits_one_instance() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(&sk_one(100_000), ExecutionConfig::OnlyGpu);
        let tasks = plan.program.tasks();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].1.pinned, Some(DeviceId(1)));
        assert_eq!(tasks[0].1.items, 100_000);
    }

    #[test]
    fn sp_single_splits_according_to_solver() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(
            &sk_one(1_000_000),
            ExecutionConfig::Strategy(Strategy::SpSingle),
        );
        let cfg = plan.kernel_configs[0].as_ref().unwrap();
        let KernelSplit::Single(HardwareConfig::Hybrid(sol)) = cfg else {
            panic!("expected hybrid, got {cfg:?}")
        };
        let tasks = plan.program.tasks();
        // 1 GPU + 24 CPU instances.
        assert_eq!(tasks.len(), 25);
        let gpu_items: u64 = tasks
            .iter()
            .filter(|(_, t)| t.pinned == Some(DeviceId(1)))
            .map(|(_, t)| t.items)
            .sum();
        assert_eq!(gpu_items, sol.gpu_items);
        let total: u64 = tasks.iter().map(|(_, t)| t.items).sum();
        assert_eq!(total, 1_000_000);
        // Compute-only kernel, GPU/CPU peak ratio ≈ 9.2 ⇒ GPU-heavy split.
        assert!(sol.gpu_items > 800_000, "gpu_items={}", sol.gpu_items);
    }

    #[test]
    fn dynamic_strategies_emit_unpinned() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        for s in [Strategy::DpDep, Strategy::DpPerf] {
            let plan = planner.plan(&sk_one(100_000), ExecutionConfig::Strategy(s));
            let tasks = plan.program.tasks();
            // Dynamic strategies use the finer dynamic granularity.
            assert_eq!(tasks.len(), planner.dynamic_instances_per_kernel as usize);
            assert!(tasks.iter().all(|(_, t)| t.pinned.is_none()));
        }
    }

    #[test]
    fn sp_varied_inserts_taskwait_after_every_kernel() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(
            &mk_seq(500_000, 4, false),
            ExecutionConfig::Strategy(Strategy::SpVaried),
        );
        let waits = plan
            .program
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Taskwait))
            .count();
        // After each of the 4 kernels except the final one (the end-of-
        // program flush is implicit).
        assert_eq!(waits, 3);
    }

    #[test]
    fn sp_unified_adds_no_taskwaits_when_not_required() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(
            &mk_seq(500_000, 4, false),
            ExecutionConfig::Strategy(Strategy::SpUnified),
        );
        assert!(plan.program.ops.iter().all(|o| !matches!(o, Op::Taskwait)));
        // All kernels share one partitioning point.
        let cfgs: Vec<u64> = plan
            .kernel_configs
            .iter()
            .map(|c| c.as_ref().unwrap().gpu_items(500_000))
            .collect();
        assert!(cfgs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sp_unified_honours_required_sync() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(
            &mk_seq(500_000, 4, true),
            ExecutionConfig::Strategy(Strategy::SpUnified),
        );
        let waits = plan
            .program
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Taskwait))
            .count();
        assert_eq!(waits, 3);
    }

    #[test]
    fn sp_varied_betas_differ_from_unified_under_transfers() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let desc = mk_seq(4_000_000, 4, true);
        let varied = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpVaried));
        let unified = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpUnified));
        let v0 = varied.kernel_configs[0]
            .as_ref()
            .unwrap()
            .gpu_items(4_000_000);
        let u0 = unified.kernel_configs[0]
            .as_ref()
            .unwrap()
            .gpu_items(4_000_000);
        // Per-kernel transfers make the varied split more CPU-skewed than
        // the unified one (the paper's Fig. 10 observation).
        assert!(v0 < u0, "varied {v0} vs unified {u0}");
    }

    #[test]
    fn converted_static_pins_by_ratio() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let plan = planner.plan(&sk_one(1_000_000), ExecutionConfig::ConvertedStatic);
        let tasks = plan.program.tasks();
        assert_eq!(tasks.len(), planner.dynamic_instances_per_kernel as usize);
        let gpu_tasks = tasks
            .iter()
            .filter(|(_, t)| t.pinned == Some(DeviceId(1)))
            .count();
        // GPU-heavy app: most instances pinned to the GPU, sizes equal, and
        // the CPU count packs whole thread waves.
        assert!(gpu_tasks * 10 >= tasks.len() * 8, "gpu_tasks={gpu_tasks}");
        assert_eq!((tasks.len() - gpu_tasks) % 12, 0);
        let sizes: Vec<u64> = tasks.iter().map(|(_, t)| t.items).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn loop_flow_replicates_kernels_per_iteration() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut desc = sk_one(100_000);
        desc.flow = ExecutionFlow::Loop { iterations: 5 };
        desc.sync.between_iterations = true;
        let plan = planner.plan(&desc, ExecutionConfig::OnlyGpu);
        assert_eq!(plan.program.task_count(), 5);
        let waits = plan
            .program
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Taskwait))
            .count();
        assert_eq!(waits, 4); // between iterations only; trailing implicit
    }

    /// A platform with a host CPU and no accelerator at all.
    fn cpu_only_platform() -> Platform {
        let mut spec = Platform::icpp15().cpu().spec.clone();
        spec.name = "lonely-cpu".into();
        Platform::builder().cpu(spec).build()
    }

    #[test]
    fn try_plan_rejects_invalid_descriptor() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut desc = sk_one(1000);
        desc.kernels.clear(); // "no kernels"
        let err = planner
            .try_plan(&desc, ExecutionConfig::OnlyCpu)
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::InvalidDescriptor {
                app: "sk1".into(),
                reason: "no kernels".into(),
            }
        );
        assert!(err.to_string().starts_with("invalid descriptor 'sk1'"));
    }

    #[test]
    fn try_plan_rejects_sp_single_on_multi_kernel_apps() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let err = planner
            .try_plan(
                &mk_seq(100_000, 3, true),
                ExecutionConfig::Strategy(Strategy::SpSingle),
            )
            .unwrap_err();
        assert_eq!(err, PlanError::SingleKernelStrategy { kernels: 3 });
        assert!(err
            .to_string()
            .contains("SP-Single targets single-kernel applications"));
    }

    #[test]
    fn try_plan_rejects_unified_domain_mismatch() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut desc = mk_seq(100_000, 2, true);
        desc.kernels[1].domain = 50_000; // buffers still large enough
        assert!(desc.validate().is_ok());
        let err = planner
            .try_plan(&desc, ExecutionConfig::Strategy(Strategy::SpUnified))
            .unwrap_err();
        assert_eq!(err, PlanError::UnifiedDomainMismatch);
        // Other strategies handle per-kernel domains fine.
        assert!(planner
            .try_plan(&desc, ExecutionConfig::Strategy(Strategy::SpVaried))
            .is_ok());
    }

    #[test]
    fn try_plan_rejects_halod_writes() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut desc = sk_one(10_000);
        desc.kernels[0].accesses[1] = AccessPattern::Partitioned {
            buffer: 1,
            mode: AccessMode::Out,
            halo: 1,
        };
        let err = planner
            .try_plan(&desc, ExecutionConfig::OnlyCpu)
            .unwrap_err();
        assert_eq!(err, PlanError::HaloWrite { kernel: "k".into() });
        assert!(err.to_string().contains("halo'd write access is unsound"));
    }

    #[test]
    fn try_plan_rejects_whole_buffer_writes_from_partial_instances() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut desc = sk_one(10_000);
        desc.kernels[0].accesses[1] = AccessPattern::Full {
            buffer: 1,
            mode: AccessMode::Out,
        };
        // One whole-domain GPU instance may write the whole buffer...
        assert!(planner.try_plan(&desc, ExecutionConfig::OnlyGpu).is_ok());
        // ...but `m` partial CPU instances may not.
        let err = planner
            .try_plan(&desc, ExecutionConfig::OnlyCpu)
            .unwrap_err();
        assert_eq!(err, PlanError::PartitionedFullWrite { kernel: "k".into() });
        assert!(err
            .to_string()
            .contains("whole-buffer write by a partitioned instance"));
    }

    #[test]
    fn try_plan_requires_a_gpu() {
        let platform = cpu_only_platform();
        let planner = Planner::new(&platform);
        let err = planner
            .try_plan(&sk_one(10_000), ExecutionConfig::OnlyCpu)
            .unwrap_err();
        assert_eq!(err, PlanError::NoGpu);
        assert_eq!(err.to_string(), "planning requires a platform with a GPU");
    }

    #[test]
    #[should_panic(expected = "SP-Single targets single-kernel applications")]
    fn plan_panics_with_the_typed_error_message() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let _ = planner.plan(
            &mk_seq(100_000, 3, true),
            ExecutionConfig::Strategy(Strategy::SpSingle),
        );
    }

    #[test]
    fn halo_accesses_are_clamped() {
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut desc = sk_one(10_000);
        desc.kernels[0].accesses[0] = AccessPattern::Partitioned {
            buffer: 0,
            mode: AccessMode::In,
            halo: 1,
        };
        let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
        for (_, t) in plan.program.tasks() {
            let r = t.accesses[0].region;
            assert!(r.span.end <= 10_000);
        }
        // First instance starts at 0 (clamped), later ones start one early.
        let tasks = plan.program.tasks();
        assert_eq!(tasks[0].1.accesses[0].region.span.start, 0);
        let second = tasks[1].1.accesses[0].region.span;
        assert_eq!(second.start, tasks[1].1.accesses[1].region.span.start - 1);
    }
}
