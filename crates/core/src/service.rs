//! The planning service (DESIGN.md §8.9): an overload-hardened, long-lived
//! front-end over the immutable [`Analyzer`].
//!
//! PRs 1–9 hardened a *single run*; this module hardens *sustained
//! traffic*. It is built from four pieces:
//!
//! * a **wire codec** — a minimal HTTP/1.1-style frame carrying a JSON
//!   [`PlanRequest`] body. [`decode_request`] is total: any byte string
//!   yields either a request or a typed [`ServiceError`], never a panic
//!   and never an unbounded read (oversized payloads are rejected on the
//!   *claimed* length, before the body is touched).
//! * a **deterministic service engine** ([`PlanService`]) — a
//!   discrete-event simulation over virtual time with a bounded admission
//!   queue, a concurrency-limited worker pool, per-client token-bucket
//!   rate limits, per-request deadline budgets enforced at queue-pop and
//!   at mid-solve checkpoints, and graceful degradation through a
//!   plan-memoization cache keyed by (app class, platform digest, problem
//!   size). Every admitted byte string gets exactly one terminal response
//!   (the *shed-or-serve* invariant, oracle 10).
//! * a seeded [`ChaosSchedule`] — burst arrivals, slow-loris/torn bodies,
//!   malformed JSON, oversized payloads and worker stalls, drawn from
//!   pinned RNG streams ([`LOAD_STREAM`], [`CHAOS_STREAM`]) so every
//!   overload scenario is byte-replayable.
//! * a **load generator** ([`generate_load`], [`run_load`]) — seeded
//!   request mixes over a small template-app pool, publishing
//!   `hm_service_*` series (docs/METRICS.md) and a deterministic summary
//!   CI double-runs and byte-diffs.
//!
//! The engine runs on virtual time precisely so overload behaviour is
//! reproducible: two same-seed executions produce byte-identical
//! responses, metrics and summaries, which is what lets CI pin the
//! service's shedding decisions the same way it pins fault handling.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use hetero_platform::{fnv1a_64, FaultRng, Platform, SimTime};
use hetero_runtime::{LogHistogram, MetricsRegistry, OracleKind, OracleViolation};
use serde::{Deserialize, Serialize};

use crate::analyzer::Analyzer;
use crate::class::AppClass;
use crate::descriptor::{
    AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy,
};
use crate::strategy::ExecutionConfig;
use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::AccessMode;

// ---------------------------------------------------------------------------
// Pinned RNG streams
// ---------------------------------------------------------------------------

/// Dedicated stream for the load generator's arrival process and request
/// mix, seeded as `seed ^ LOAD_STREAM`. Pinned by
/// `service_stream_constants_are_pinned` alongside the executor streams.
pub const LOAD_STREAM: u64 = 0x10AD_9E4E_CA70_12F5;

/// Dedicated stream for chaos-injection draws (which arrivals get torn,
/// corrupted or inflated), seeded as `chaos.seed ^ CHAOS_STREAM`. Separate
/// from [`LOAD_STREAM`] so enabling chaos never shifts the healthy arrival
/// sequence.
pub const CHAOS_STREAM: u64 = 0xC4A0_5C4A_05C4_A05C;

// ---------------------------------------------------------------------------
// Wire types
// ---------------------------------------------------------------------------

/// A typed planning request: the JSON body of one service frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Client-chosen request id, echoed in the response.
    pub id: u64,
    /// Client identity, the rate-limiting key.
    pub client: String,
    /// The application to plan.
    pub app: AppDescriptor,
    /// Requested execution configuration; `None` lets the analyzer pick
    /// the best strategy (Table I).
    pub config: Option<ExecutionConfig>,
    /// What-if mode: also simulate the chosen plan and report its
    /// predicted makespan.
    pub what_if: bool,
    /// Per-request deadline budget in virtual microseconds, measured from
    /// arrival; `None` falls back to the service default.
    pub deadline_us: Option<u64>,
}

/// A terminal success: the planned (or cached) answer for one request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanResponse {
    /// Echoed request id.
    pub id: u64,
    /// Echoed application name.
    pub app: String,
    /// Detected application class.
    pub class: AppClass,
    /// The execution configuration the plan uses.
    pub config: ExecutionConfig,
    /// Number of tasks the lowered program submits.
    pub tasks: u64,
    /// Predicted makespan in microseconds (what-if mode only).
    pub makespan_us: Option<u64>,
    /// The answer came from the memoization cache.
    pub cached: bool,
    /// The answer is a stale cached plan served because the solver pool
    /// was saturated (graceful degradation instead of rejection).
    pub degraded: bool,
    /// Virtual time spent queued, microseconds.
    pub queue_us: u64,
    /// Virtual time spent in service (solve or cache serve), microseconds.
    pub service_us: u64,
}

/// A typed terminal failure. Every rejected request gets exactly one of
/// these — the service never panics, never hangs, and never drops a
/// request silently.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The byte string is not a well-formed service frame.
    BadFrame {
        /// What was wrong with the frame.
        reason: String,
    },
    /// The frame claims a body larger than the service accepts; rejected
    /// on the claim, before any body bytes are read.
    Oversized {
        /// Claimed body length in bytes.
        bytes: u64,
        /// The service's limit.
        limit: u64,
    },
    /// The body ended before `content-length` bytes arrived (a torn write
    /// or a slow-loris client).
    TornBody {
        /// Bytes actually present.
        got: u64,
        /// Bytes the header promised.
        want: u64,
    },
    /// The body is not valid request JSON.
    BadJson {
        /// Parser diagnostic.
        error: String,
    },
    /// The request parsed but is semantically unacceptable (invalid
    /// descriptor, or resource caps exceeded).
    InvalidRequest {
        /// Validation diagnostic.
        reason: String,
    },
    /// The bounded admission queue is full and no cached plan could be
    /// served in its place.
    QueueFull {
        /// Queue depth at rejection.
        depth: u64,
        /// Configured capacity.
        capacity: u64,
    },
    /// The client exhausted its token bucket.
    RateLimited {
        /// The offending client.
        client: String,
    },
    /// The deadline budget expired while the request sat in the queue
    /// (checked at queue-pop).
    DeadlineQueue {
        /// Time spent queued, microseconds.
        waited_us: u64,
        /// The budget, microseconds.
        budget_us: u64,
    },
    /// The deadline budget expired mid-solve (checked at solve
    /// checkpoints; the partial solve is abandoned).
    DeadlineSolve {
        /// Time from arrival to the aborting checkpoint, microseconds.
        elapsed_us: u64,
        /// The budget, microseconds.
        budget_us: u64,
    },
}

impl ServiceError {
    /// Stable short name, used for metrics labels and summaries.
    pub fn verdict(&self) -> &'static str {
        match self {
            ServiceError::BadFrame { .. } => "bad_frame",
            ServiceError::Oversized { .. } => "oversized",
            ServiceError::TornBody { .. } => "torn_body",
            ServiceError::BadJson { .. } => "bad_json",
            ServiceError::InvalidRequest { .. } => "invalid_request",
            ServiceError::QueueFull { .. } => "queue_full",
            ServiceError::RateLimited { .. } => "rate_limited",
            ServiceError::DeadlineQueue { .. } => "deadline_queue",
            ServiceError::DeadlineSolve { .. } => "deadline_solve",
        }
    }

    /// HTTP status the wire encoding reports for this error.
    pub fn status(&self) -> u16 {
        match self {
            ServiceError::BadFrame { .. }
            | ServiceError::BadJson { .. }
            | ServiceError::TornBody { .. }
            | ServiceError::InvalidRequest { .. } => 400,
            ServiceError::Oversized { .. } => 413,
            ServiceError::RateLimited { .. } => 429,
            ServiceError::QueueFull { .. } => 503,
            ServiceError::DeadlineQueue { .. } | ServiceError::DeadlineSolve { .. } => 504,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadFrame { reason } => write!(f, "bad frame: {reason}"),
            ServiceError::Oversized { bytes, limit } => {
                write!(f, "oversized body: {bytes} bytes (limit {limit})")
            }
            ServiceError::TornBody { got, want } => {
                write!(f, "torn body: got {got} of {want} bytes")
            }
            ServiceError::BadJson { error } => write!(f, "bad request JSON: {error}"),
            ServiceError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServiceError::QueueFull { depth, capacity } => {
                write!(f, "admission queue full: depth {depth} of {capacity}")
            }
            ServiceError::RateLimited { client } => write!(f, "rate limited: client {client}"),
            ServiceError::DeadlineQueue {
                waited_us,
                budget_us,
            } => write!(
                f,
                "deadline expired in queue: waited {waited_us}us of {budget_us}us"
            ),
            ServiceError::DeadlineSolve {
                elapsed_us,
                budget_us,
            } => write!(
                f,
                "deadline expired mid-solve: {elapsed_us}us of {budget_us}us"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// Default body-size cap, bytes ([`ServiceConfig::max_body_bytes`]).
pub const DEFAULT_MAX_BODY_BYTES: u64 = 64 * 1024;

const REQUEST_LINE: &str = "POST /plan HTTP/1.1";

/// Encode `req` as its canonical wire frame: a `POST /plan` request line,
/// a `content-length` header, a blank line, then the JSON body.
pub fn encode_request(req: &PlanRequest) -> Vec<u8> {
    let body = serde_json::to_string(req).expect("PlanRequest serializes");
    format!(
        "{REQUEST_LINE}\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Decode one wire frame. Total over arbitrary bytes: every input yields
/// either a [`PlanRequest`] or a typed [`ServiceError`] — no panics, no
/// hangs, and bodies larger than `max_body` are rejected on the *claimed*
/// length before a single body byte is examined.
pub fn decode_request(bytes: &[u8], max_body: u64) -> Result<PlanRequest, ServiceError> {
    // Header section must be ASCII-clean up to the blank line.
    let mut split = None;
    for i in 0..bytes.len().saturating_sub(3) {
        if &bytes[i..i + 4] == b"\r\n\r\n" {
            split = Some(i);
            break;
        }
    }
    let Some(head_end) = split else {
        return Err(ServiceError::BadFrame {
            reason: "missing header terminator".into(),
        });
    };
    let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| ServiceError::BadFrame {
        reason: "headers are not UTF-8".into(),
    })?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    if request_line != REQUEST_LINE {
        return Err(ServiceError::BadFrame {
            reason: format!("unsupported request line {request_line:?}"),
        });
    }
    let mut content_length: Option<u64> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServiceError::BadFrame {
                reason: format!("malformed header line {line:?}"),
            });
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.trim().parse().map_err(|_| ServiceError::BadFrame {
                reason: format!("unparseable content-length {:?}", value.trim()),
            })?);
        }
    }
    let Some(want) = content_length else {
        return Err(ServiceError::BadFrame {
            reason: "missing content-length header".into(),
        });
    };
    if want > max_body {
        return Err(ServiceError::Oversized {
            bytes: want,
            limit: max_body,
        });
    }
    let body = &bytes[head_end + 4..];
    let got = body.len() as u64;
    if got < want {
        return Err(ServiceError::TornBody { got, want });
    }
    if got > want {
        return Err(ServiceError::BadFrame {
            reason: format!("{} trailing bytes after body", got - want),
        });
    }
    let body = std::str::from_utf8(body).map_err(|_| ServiceError::BadJson {
        error: "body is not UTF-8".into(),
    })?;
    serde_json::from_str(body).map_err(|e| ServiceError::BadJson {
        error: e.to_string(),
    })
}

/// Encode a terminal response as its wire frame (status line + JSON body).
pub fn encode_response(result: &Result<PlanResponse, ServiceError>) -> String {
    let (status, reason, body) = match result {
        Ok(resp) => (
            200,
            "OK",
            serde_json::to_string(resp).expect("PlanResponse serializes"),
        ),
        Err(e) => {
            let reason = match e.status() {
                400 => "Bad Request",
                413 => "Payload Too Large",
                429 => "Too Many Requests",
                503 => "Service Unavailable",
                504 => "Gateway Timeout",
                _ => "Error",
            };
            (
                e.status(),
                reason,
                serde_json::to_string(e).expect("ServiceError serializes"),
            )
        }
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
}

// ---------------------------------------------------------------------------
// Chaos schedule
// ---------------------------------------------------------------------------

/// One service-level disturbance window. Windows are half-open in virtual
/// time — active while `from <= now < until` — mirroring `FaultEvent`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ChaosEvent {
    /// Multiply the arrival rate by `factor` (divide inter-arrival gaps).
    Burst {
        /// Rate multiplier (10 = a 10× burst).
        factor: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Tear request bodies short of their claimed length (slow-loris).
    SlowLoris {
        /// Per-arrival probability, in permille.
        permille: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Corrupt request bodies into invalid JSON.
    MalformedJson {
        /// Per-arrival probability, in permille.
        permille: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Inflate the claimed `content-length` past the service cap.
    Oversized {
        /// Per-arrival probability, in permille.
        permille: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Slow one worker down (a stalling solver thread): solve costs are
    /// multiplied by `factor_milli / 1000` while the window is active.
    WorkerStall {
        /// The stalled worker's index.
        worker: usize,
        /// Cost multiplier in milli-units (3000 = 3× slower).
        factor_milli: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
}

/// A seeded, replayable overload scenario: the service-plane analogue of
/// `FaultSchedule`. The seed feeds [`CHAOS_STREAM`]; the events carry the
/// windows. Same schedule, same arrivals — byte-identical outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// Base seed for the chaos draws.
    pub seed: u64,
    /// The disturbance windows.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// No chaos: healthy arrivals, clean bodies, honest workers.
    pub fn calm(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// The canonical overload scenario the acceptance run uses: a
    /// `factor`× arrival burst over the middle half of `span`, with
    /// slow-loris, malformed-JSON and oversized-payload windows inside the
    /// burst and a 3× stall on worker 0.
    pub fn burst(seed: u64, factor: u32, span: SimTime) -> Self {
        let q = SimTime::from_nanos(span.as_nanos() / 4);
        let mid_from = q;
        let mid_until = SimTime::from_nanos(3 * (span.as_nanos() / 4));
        ChaosSchedule {
            seed,
            events: vec![
                ChaosEvent::Burst {
                    factor,
                    from: mid_from,
                    until: mid_until,
                },
                ChaosEvent::SlowLoris {
                    permille: 40,
                    from: mid_from,
                    until: mid_until,
                },
                ChaosEvent::MalformedJson {
                    permille: 40,
                    from: mid_from,
                    until: mid_until,
                },
                ChaosEvent::Oversized {
                    permille: 20,
                    from: mid_from,
                    until: mid_until,
                },
                ChaosEvent::WorkerStall {
                    worker: 0,
                    factor_milli: 3000,
                    from: mid_from,
                    until: mid_until,
                },
            ],
        }
    }

    /// The arrival-rate multiplier active at `t` (1 when no burst window
    /// covers `t`; overlapping bursts take the largest factor).
    pub fn burst_factor(&self, t: SimTime) -> u32 {
        let mut factor = 1;
        for e in &self.events {
            if let ChaosEvent::Burst {
                factor: f,
                from,
                until,
            } = e
            {
                if *from <= t && t < *until && *f > factor {
                    factor = *f;
                }
            }
        }
        factor
    }

    /// The solve-cost multiplier (milli-units) for `worker` at `t`.
    pub fn stall_factor_milli(&self, worker: usize, t: SimTime) -> u32 {
        let mut factor = 1000;
        for e in &self.events {
            if let ChaosEvent::WorkerStall {
                worker: w,
                factor_milli,
                from,
                until,
            } = e
            {
                if *w == worker && *from <= t && t < *until && *factor_milli > factor {
                    factor = *factor_milli;
                }
            }
        }
        factor
    }
}

/// How chaos mangles one encoded request (drawn per arrival from the
/// chaos stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Corruption {
    Torn,
    Malformed,
    Oversized,
}

/// Decide the corruption (if any) for an arrival at `t`. One draw is
/// consumed per *active window*, never per event list, so the stream stays
/// aligned across schedules that differ only in inactive windows.
fn draw_corruption(chaos: &ChaosSchedule, t: SimTime, rng: &mut FaultRng) -> Option<Corruption> {
    let mut hit = None;
    for e in &chaos.events {
        let (kind, permille, from, until) = match e {
            ChaosEvent::SlowLoris {
                permille,
                from,
                until,
            } => (Corruption::Torn, *permille, *from, *until),
            ChaosEvent::MalformedJson {
                permille,
                from,
                until,
            } => (Corruption::Malformed, *permille, *from, *until),
            ChaosEvent::Oversized {
                permille,
                from,
                until,
            } => (Corruption::Oversized, *permille, *from, *until),
            _ => continue,
        };
        if from <= t && t < until {
            let draw = rng.next_u64() % 1000;
            if hit.is_none() && draw < u64::from(permille) {
                hit = Some(kind);
            }
        }
    }
    hit
}

/// Apply `corruption` to an encoded frame, deterministically.
fn corrupt_frame(bytes: &mut Vec<u8>, corruption: Corruption, rng: &mut FaultRng) {
    match corruption {
        Corruption::Torn => {
            // Keep the headers, lose a suffix of the body.
            let head = bytes
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|i| i + 4)
                .unwrap_or(0);
            let body_len = bytes.len() - head;
            if body_len > 1 {
                let keep = (rng.next_u64() % (body_len as u64 - 1)) as usize;
                bytes.truncate(head + keep);
            } else {
                bytes.truncate(head);
            }
        }
        Corruption::Malformed => {
            // Stamp garbage over a body byte: still the claimed length,
            // no longer JSON.
            let head = bytes
                .windows(4)
                .position(|w| w == b"\r\n\r\n")
                .map(|i| i + 4)
                .unwrap_or(0);
            if head < bytes.len() {
                let i = head + (rng.next_u64() % (bytes.len() - head) as u64) as usize;
                bytes[i] = b'\x01';
            }
            // Always corrupt the first byte too so a draw landing on
            // whitespace cannot accidentally stay valid.
            if head < bytes.len() {
                bytes[head] = b'\x01';
            }
        }
        Corruption::Oversized => {
            // Rewrite the claim far past any cap; the service must reject
            // on the claim without reading a body this size.
            let text = String::from_utf8_lossy(bytes).into_owned();
            if let Some((head, body)) = text.split_once("\r\n\r\n") {
                let line = head.lines().next().unwrap_or(REQUEST_LINE);
                *bytes = format!("{line}\r\ncontent-length: {}\r\n\r\n{body}", u64::MAX / 2)
                    .into_bytes();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Service configuration and engine
// ---------------------------------------------------------------------------

/// Per-client token-bucket rate limit, refilled on virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Bucket capacity (maximum burst a client may send).
    pub burst: u32,
    /// Refill rate, tokens per virtual second.
    pub per_sec: u32,
}

/// Service tuning knobs. Defaults suit the load generator; tests shrink
/// them to force each admission verdict deterministically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Concurrency limit: simulated solver workers.
    pub workers: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Queue depth at (or above) which a cache hit is served `degraded`
    /// instead of queued.
    pub degrade_depth: usize,
    /// Optional per-client token bucket.
    pub rate_limit: Option<RateLimit>,
    /// Default deadline budget (microseconds) for requests that carry
    /// none; `None` means no deadline.
    pub default_deadline_us: Option<u64>,
    /// Mid-solve deadline checkpoints per solve (≥ 1).
    pub solve_checkpoints: u32,
    /// Body-size cap for the codec, bytes.
    pub max_body_bytes: u64,
    /// Plan-memoization cache capacity (entries).
    pub cache_capacity: usize,
    /// Fixed virtual cost of a solve, microseconds.
    pub base_solve_us: u64,
    /// Additional virtual cost per kernel in the request, microseconds.
    pub per_kernel_solve_us: u64,
    /// Virtual cost of serving a memoized plan, microseconds.
    pub cache_serve_us: u64,
    /// Caps on accepted requests: kernels per app.
    pub max_kernels: usize,
    /// Caps on accepted requests: total domain items per app.
    pub max_domain: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            degrade_depth: 32,
            rate_limit: Some(RateLimit {
                burst: 256,
                per_sec: 20_000,
            }),
            default_deadline_us: Some(200_000),
            solve_checkpoints: 4,
            max_body_bytes: DEFAULT_MAX_BODY_BYTES,
            cache_capacity: 64,
            base_solve_us: 150,
            per_kernel_solve_us: 50,
            cache_serve_us: 15,
            max_kernels: 16,
            max_domain: 1 << 22,
        }
    }
}

/// The memoization key: the ROADMAP's (app class, platform digest, problem
/// size), plus the requested configuration and what-if mode so a cached
/// answer is only ever substituted for a request it actually answers.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct CacheKey {
    class: u8,
    platform_digest: u64,
    problem_size: u64,
    config: String,
    what_if: bool,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    class: AppClass,
    config: ExecutionConfig,
    tasks: u64,
    makespan_us: Option<u64>,
    /// Virtual time the producing solve completed: the entry is invisible
    /// before this instant, so a cached answer can never causally precede
    /// the solve that produced it.
    ready_at: SimTime,
}

/// One arrival at the service boundary: raw frame bytes from `client` at
/// virtual time `at`.
#[derive(Clone, Debug, PartialEq)]
pub struct Arrival {
    /// Arrival time (virtual).
    pub at: SimTime,
    /// Client identity (rate-limit key); also recoverable from the body,
    /// but rejections must be attributable even when the body is garbage.
    pub client: String,
    /// The encoded frame.
    pub bytes: Vec<u8>,
}

/// One terminal outcome: exactly one per arrival, in arrival order.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceOutcome {
    /// Index of the arrival this outcome answers.
    pub seq: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// Terminal-response time.
    pub done: SimTime,
    /// The terminal response.
    pub result: Result<PlanResponse, ServiceError>,
}

struct Pending {
    seq: u64,
    arrival: SimTime,
    req: PlanRequest,
    deadline_us: Option<u64>,
}

struct Bucket {
    /// Nano-tokens (1 token = 1e9) for exact integer refill.
    tokens: u64,
    last: SimTime,
}

/// The deterministic service engine: a discrete-event simulation of the
/// admission queue, worker pool and cache over virtual time. Drive it with
/// [`PlanService::run`]; read the `hm_service_*` series back with
/// [`PlanService::registry`].
pub struct PlanService<'a> {
    analyzer: Analyzer<'a>,
    cfg: ServiceConfig,
    chaos: ChaosSchedule,
    platform_digest: u64,
    cache: BTreeMap<CacheKey, CacheEntry>,
    buckets: BTreeMap<String, Bucket>,
    registry: MetricsRegistry,
    latency: LogHistogram,
}

const H_REQ: &str = "Requests presented to the service";
const H_ADM: &str = "Admission verdicts";
const H_SERVED: &str = "Terminal successes by serving mode";
const H_MISS: &str = "Deadline budgets expired, by checkpoint";
const H_CHIT: &str = "Plan-memoization cache hits";
const H_CMISS: &str = "Plan-memoization cache misses";
const H_DEPTH: &str = "Peak admission-queue depth";
const H_LAT: &str = "Terminal latency (arrival to response)";
const H_WAIT: &str = "Queue wait of dispatched requests";

impl<'a> PlanService<'a> {
    /// A service over `platform` with `cfg` and `chaos` (use
    /// [`ChaosSchedule::calm`] for a healthy service).
    pub fn new(platform: &'a Platform, cfg: ServiceConfig, chaos: ChaosSchedule) -> Self {
        let digest = fnv1a_64(
            serde_json::to_string(platform)
                .expect("Platform serializes")
                .as_bytes(),
        );
        PlanService {
            analyzer: Analyzer::new(platform),
            cfg,
            chaos,
            platform_digest: digest,
            cache: BTreeMap::new(),
            buckets: BTreeMap::new(),
            registry: MetricsRegistry::new(),
            latency: LogHistogram::default(),
        }
    }

    /// The service's metrics registry (`hm_service_*` series).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Terminal-latency quantile in seconds (p50/p95/p99 come from here).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// Process every arrival to its terminal response. Outcomes are
    /// returned in arrival order, exactly one per arrival (the
    /// shed-or-serve invariant; [`check_shed_or_serve`] enforces it).
    pub fn run(&mut self, arrivals: &[Arrival]) -> Vec<ServiceOutcome> {
        let mut outcomes: Vec<ServiceOutcome> = Vec::with_capacity(arrivals.len());
        let mut queue: VecDeque<Pending> = VecDeque::new();
        let mut workers: Vec<SimTime> = vec![SimTime::ZERO; self.cfg.workers.max(1)];
        for (seq, arrival) in arrivals.iter().enumerate() {
            self.dispatch_until(arrival.at, &mut queue, &mut workers, &mut outcomes);
            self.admit(seq as u64, arrival, &mut queue, &workers, &mut outcomes);
            self.dispatch_until(arrival.at, &mut queue, &mut workers, &mut outcomes);
        }
        self.dispatch_until(SimTime::MAX, &mut queue, &mut workers, &mut outcomes);
        outcomes.sort_by_key(|o| o.seq);
        outcomes
    }

    fn count(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.registry.counter_add(name, help, labels, 1);
    }

    fn terminal(
        &mut self,
        outcomes: &mut Vec<ServiceOutcome>,
        seq: u64,
        arrival: SimTime,
        done: SimTime,
        result: Result<PlanResponse, ServiceError>,
    ) {
        self.latency.observe(done.saturating_sub(arrival));
        self.registry.observe(
            "hm_service_latency_seconds",
            H_LAT,
            &[],
            done.saturating_sub(arrival),
        );
        if let Err(e) = &result {
            let v = e.verdict();
            self.count("hm_service_admission_total", H_ADM, &[("verdict", v)]);
            match e {
                ServiceError::DeadlineQueue { .. } => {
                    self.count("hm_service_deadline_miss_total", H_MISS, &[("at", "queue")]);
                }
                ServiceError::DeadlineSolve { .. } => {
                    self.count("hm_service_deadline_miss_total", H_MISS, &[("at", "solve")]);
                }
                _ => {}
            }
        }
        outcomes.push(ServiceOutcome {
            seq,
            arrival,
            done,
            result,
        });
    }

    /// Admission control at arrival time: decode, rate-limit, then queue,
    /// degrade or shed.
    fn admit(
        &mut self,
        seq: u64,
        arrival: &Arrival,
        queue: &mut VecDeque<Pending>,
        workers: &[SimTime],
        outcomes: &mut Vec<ServiceOutcome>,
    ) {
        let now = arrival.at;
        self.count("hm_service_requests_total", H_REQ, &[]);
        let req = match decode_request(&arrival.bytes, self.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(e) => {
                self.terminal(outcomes, seq, now, now, Err(e));
                return;
            }
        };
        if let Err(reason) = self.validate(&req) {
            self.terminal(
                outcomes,
                seq,
                now,
                now,
                Err(ServiceError::InvalidRequest { reason }),
            );
            return;
        }
        if let Some(limit) = self.cfg.rate_limit {
            if !self.take_token(&arrival.client, now, limit) {
                self.terminal(
                    outcomes,
                    seq,
                    now,
                    now,
                    Err(ServiceError::RateLimited {
                        client: arrival.client.clone(),
                    }),
                );
                return;
            }
        }
        let deadline_us = req.deadline_us.or(self.cfg.default_deadline_us);
        let depth = queue.len();
        let saturated = depth >= self.cfg.degrade_depth && workers.iter().all(|free| *free > now);
        if saturated || depth >= self.cfg.queue_capacity {
            // Graceful degradation: a saturated pool serves a stale cached
            // plan instead of queueing (or shedding) when it can.
            let hit = self
                .cache
                .get(&self.key_for(&req))
                .filter(|e| e.ready_at <= now)
                .cloned();
            if let Some(entry) = hit {
                self.count("hm_service_cache_hits_total", H_CHIT, &[]);
                let done = now + SimTime::from_micros(self.cfg.cache_serve_us);
                self.count(
                    "hm_service_admission_total",
                    H_ADM,
                    &[("verdict", "degraded")],
                );
                self.count("hm_service_served_total", H_SERVED, &[("mode", "degraded")]);
                let resp = self.response_from(&req, &entry, true, true, 0, self.cfg.cache_serve_us);
                self.terminal(outcomes, seq, now, done, Ok(resp));
                return;
            }
            if depth >= self.cfg.queue_capacity {
                self.terminal(
                    outcomes,
                    seq,
                    now,
                    now,
                    Err(ServiceError::QueueFull {
                        depth: depth as u64,
                        capacity: self.cfg.queue_capacity as u64,
                    }),
                );
                return;
            }
        }
        self.count(
            "hm_service_admission_total",
            H_ADM,
            &[("verdict", "enqueued")],
        );
        queue.push_back(Pending {
            seq,
            arrival: now,
            req,
            deadline_us,
        });
        self.registry.gauge_max(
            "hm_service_queue_depth_peak",
            H_DEPTH,
            &[],
            queue.len() as f64,
        );
    }

    /// Dispatch queued requests onto workers that free up no later than
    /// `until` (deadline checks at queue-pop, then checkpointed solve).
    fn dispatch_until(
        &mut self,
        until: SimTime,
        queue: &mut VecDeque<Pending>,
        workers: &mut [SimTime],
        outcomes: &mut Vec<ServiceOutcome>,
    ) {
        loop {
            let Some(front) = queue.front() else { return };
            // Earliest-free worker, lowest index breaking ties.
            let (wi, free) = workers
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|(i, f)| (*f, *i))
                .expect("worker pool is non-empty");
            let start = free.max(front.arrival);
            if start > until {
                return;
            }
            let p = queue.pop_front().expect("front() was Some");
            let waited = start.saturating_sub(p.arrival);
            self.registry
                .observe("hm_service_queue_wait_seconds", H_WAIT, &[], waited);
            // Queue-pop deadline checkpoint.
            if let Some(budget_us) = p.deadline_us {
                if waited > SimTime::from_micros(budget_us) {
                    let waited_us = waited.as_nanos() / 1_000;
                    self.terminal(
                        outcomes,
                        p.seq,
                        p.arrival,
                        start,
                        Err(ServiceError::DeadlineQueue {
                            waited_us,
                            budget_us,
                        }),
                    );
                    continue;
                }
            }
            // Cache hit: memoized serve at a fraction of the solve cost.
            let key = self.key_for(&p.req);
            let hit = self
                .cache
                .get(&key)
                .filter(|e| e.ready_at <= start)
                .cloned();
            let (entry, cached, cost_us) = match hit {
                Some(entry) => {
                    self.count("hm_service_cache_hits_total", H_CHIT, &[]);
                    (Some(entry), true, self.cfg.cache_serve_us)
                }
                None => {
                    self.count("hm_service_cache_misses_total", H_CMISS, &[]);
                    (None, false, self.solve_cost_us(&p.req))
                }
            };
            // Worker stall chaos stretches the virtual cost.
            let stall = self.chaos.stall_factor_milli(wi, start);
            let cost_us = cost_us.saturating_mul(u64::from(stall)) / 1000;
            // Checkpointed solve: the deadline is re-checked after each of
            // `solve_checkpoints` equal segments; an expired budget aborts
            // the solve at that checkpoint and frees the worker there.
            let ncp = u64::from(self.cfg.solve_checkpoints.max(1));
            let mut aborted = None;
            if let Some(budget_us) = p.deadline_us {
                let budget = SimTime::from_micros(budget_us);
                for c in 1..=ncp {
                    let elapsed_cost = SimTime::from_micros(cost_us * c / ncp);
                    let elapsed = waited + elapsed_cost;
                    if elapsed > budget {
                        aborted = Some((start + elapsed_cost, budget_us, elapsed));
                        break;
                    }
                }
            }
            if let Some((at, budget_us, elapsed)) = aborted {
                workers[wi] = at;
                let elapsed_us = elapsed.as_nanos() / 1_000;
                self.terminal(
                    outcomes,
                    p.seq,
                    p.arrival,
                    at,
                    Err(ServiceError::DeadlineSolve {
                        elapsed_us,
                        budget_us,
                    }),
                );
                continue;
            }
            let finish = start + SimTime::from_micros(cost_us);
            workers[wi] = finish;
            let entry = match entry {
                Some(entry) => entry,
                None => {
                    let entry = self.solve(&p.req, finish);
                    if self.cache.len() >= self.cfg.cache_capacity {
                        // Deterministic eviction: drop the smallest key.
                        let _ = self.cache.pop_first();
                    }
                    self.cache.insert(key, entry.clone());
                    entry
                }
            };
            let mode = if cached { "cached" } else { "fresh" };
            self.count("hm_service_served_total", H_SERVED, &[("mode", mode)]);
            let resp = self.response_from(
                &p.req,
                &entry,
                cached,
                false,
                waited.as_nanos() / 1_000,
                cost_us,
            );
            self.terminal(outcomes, p.seq, p.arrival, finish, Ok(resp));
        }
    }

    /// Semantic request validation: the descriptor must be well-formed and
    /// within the service's resource caps (a planner fed unbounded domains
    /// would allocate unbounded programs — the caps are the service's
    /// memory-safety admission check).
    fn validate(&self, req: &PlanRequest) -> Result<(), String> {
        req.app.validate()?;
        if req.app.kernels.len() > self.cfg.max_kernels {
            return Err(format!(
                "too many kernels: {} (cap {})",
                req.app.kernels.len(),
                self.cfg.max_kernels
            ));
        }
        let domain: u64 = req
            .app
            .kernels
            .iter()
            .fold(0u64, |a, k| a.saturating_add(k.domain));
        if domain > self.cfg.max_domain {
            return Err(format!(
                "domain too large: {domain} items (cap {})",
                self.cfg.max_domain
            ));
        }
        Ok(())
    }

    fn key_for(&self, req: &PlanRequest) -> CacheKey {
        let problem_size: u64 = req
            .app
            .kernels
            .iter()
            .fold(0u64, |a, k| a.saturating_add(k.domain));
        CacheKey {
            class: crate::class::classify(&req.app) as u8,
            platform_digest: self.platform_digest,
            problem_size,
            config: match req.config {
                Some(c) => c.to_string(),
                None => "auto".to_string(),
            },
            what_if: req.what_if,
        }
    }

    /// Deterministic virtual solve cost, derived from the request alone so
    /// the admission plane never needs the plan to price it.
    fn solve_cost_us(&self, req: &PlanRequest) -> u64 {
        self.cfg.base_solve_us + self.cfg.per_kernel_solve_us * req.app.kernels.len() as u64
    }

    /// The real planning work (runs when a solve completes): classify,
    /// select, lower — and simulate in what-if mode. The entry becomes
    /// cache-visible at `ready_at`, the solve's virtual completion.
    fn solve(&self, req: &PlanRequest, ready_at: SimTime) -> CacheEntry {
        let analysis = self.analyzer.analyze(&req.app);
        let config = req
            .config
            .unwrap_or(ExecutionConfig::Strategy(analysis.best));
        let plan = self.analyzer.plan(&req.app, config);
        let tasks = plan.program.tasks().len() as u64;
        let makespan_us = req
            .what_if
            .then(|| self.analyzer.simulate(&req.app, config).makespan.as_nanos() / 1_000);
        CacheEntry {
            class: analysis.class,
            config,
            tasks,
            makespan_us,
            ready_at,
        }
    }

    fn response_from(
        &self,
        req: &PlanRequest,
        entry: &CacheEntry,
        cached: bool,
        degraded: bool,
        queue_us: u64,
        service_us: u64,
    ) -> PlanResponse {
        PlanResponse {
            id: req.id,
            app: req.app.name.clone(),
            class: entry.class,
            config: entry.config,
            tasks: entry.tasks,
            makespan_us: entry.makespan_us,
            cached,
            degraded,
            queue_us,
            service_us,
        }
    }

    fn take_token(&mut self, client: &str, now: SimTime, limit: RateLimit) -> bool {
        const SCALE: u64 = 1_000_000_000;
        let bucket = self
            .buckets
            .entry(client.to_string())
            .or_insert_with(|| Bucket {
                tokens: u64::from(limit.burst) * SCALE,
                last: SimTime::ZERO,
            });
        let elapsed_ns = now.saturating_sub(bucket.last).as_nanos();
        let earned = (elapsed_ns as u128 * u128::from(limit.per_sec)) as u64;
        bucket.tokens = bucket
            .tokens
            .saturating_add(earned)
            .min(u64::from(limit.burst) * SCALE);
        bucket.last = now;
        if bucket.tokens >= SCALE {
            bucket.tokens -= SCALE;
            true
        } else {
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Shed-or-serve oracle (oracle 10)
// ---------------------------------------------------------------------------

/// Oracle 10 (PROPERTY-TESTS.md): every arrival gets **exactly one**
/// terminal response — served, or shed with a typed [`ServiceError`] —
/// never dropped, never answered twice. `outcomes` must be in the
/// arrival order [`PlanService::run`] returns.
pub fn check_shed_or_serve(
    arrivals: usize,
    outcomes: &[ServiceOutcome],
) -> Result<(), OracleViolation> {
    if outcomes.len() != arrivals {
        return Err(OracleViolation::new(
            OracleKind::ShedOrServe,
            format!(
                "{arrivals} arrivals but {} terminal responses",
                outcomes.len()
            ),
        ));
    }
    for (i, o) in outcomes.iter().enumerate() {
        if o.seq != i as u64 {
            return Err(OracleViolation::new(
                OracleKind::ShedOrServe,
                format!(
                    "position {i} answers arrival {} (dropped or duplicated)",
                    o.seq
                ),
            ));
        }
        if o.done < o.arrival {
            return Err(OracleViolation::new(
                OracleKind::ShedOrServe,
                format!("arrival {i} answered before it arrived"),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Load generation
// ---------------------------------------------------------------------------

/// Load-generator shape: how many requests, how fast, from how many
/// clients, with what deadline stamps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Number of requests to generate.
    pub requests: u64,
    /// Base seed (feeds [`LOAD_STREAM`]).
    pub seed: u64,
    /// Mean healthy inter-arrival gap, microseconds.
    pub mean_gap_us: u64,
    /// Number of distinct clients (`c0..cN-1`).
    pub clients: u32,
    /// Per-request probability of what-if mode, permille.
    pub what_if_permille: u32,
    /// Deadline stamped on each request, microseconds (`None` = rely on
    /// the service default).
    pub deadline_us: Option<u64>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            requests: 1000,
            seed: 0,
            mean_gap_us: 120,
            clients: 8,
            what_if_permille: 250,
            deadline_us: None,
        }
    }
}

/// The template-app pool the load generator draws from: small instances of
/// the paper's classes (SK-One, SK-Loop, MK-Seq, MK-Loop) at a few problem
/// sizes, so the memoization cache sees realistic key reuse.
pub fn template_app(index: u64) -> AppDescriptor {
    fn profile(flops_per_item: f64) -> KernelProfile {
        KernelProfile {
            flops_per_item,
            bytes_per_item: 8.0,
            fixed_flops: 0.0,
            fixed_bytes: 0.0,
            precision: Precision::Single,
            cpu_efficiency: Efficiency {
                compute: 0.25,
                bandwidth: 0.6,
            },
            gpu_efficiency: Efficiency {
                compute: 0.35,
                bandwidth: 0.7,
            },
        }
    }
    let sizes: [u64; 3] = [1 << 12, 1 << 14, 1 << 16];
    // A size multiplier stretches the 12 base shapes into 60 distinct
    // cache keys (scales 1..16): more keys than the default cache holds,
    // so a sustained load keeps a realistic fresh-solve fraction instead
    // of warming up once and coasting on hits forever.
    let scale = 1u64 << ((index / 12) % 5);
    let n = sizes[(index % 3) as usize] * scale;
    let kind = (index / 3) % 4;
    let kernel = |name: &str, flops: f64, buf: usize| KernelSpec {
        name: name.into(),
        profile: profile(flops),
        domain: n,
        accesses: vec![AccessPattern::part(buf, AccessMode::InOut)],
        weights: None,
    };
    let buffer = |name: &str| BufferSpec {
        name: name.into(),
        items: n,
        item_bytes: 8,
    };
    match kind {
        0 => AppDescriptor {
            name: format!("svc-sk-one-{n}"),
            buffers: vec![buffer("data")],
            kernels: vec![kernel("k0", 64.0, 0)],
            flow: ExecutionFlow::Sequence,
            sync: SyncPolicy {
                between_kernels: false,
                between_iterations: false,
            },
        },
        1 => AppDescriptor {
            name: format!("svc-sk-loop-{n}"),
            buffers: vec![buffer("data")],
            kernels: vec![kernel("k0", 48.0, 0)],
            flow: ExecutionFlow::Loop { iterations: 4 },
            sync: SyncPolicy {
                between_kernels: false,
                between_iterations: true,
            },
        },
        2 => AppDescriptor {
            name: format!("svc-mk-seq-{n}"),
            buffers: vec![buffer("a"), buffer("b")],
            kernels: vec![kernel("k0", 32.0, 0), kernel("k1", 96.0, 1)],
            flow: ExecutionFlow::Sequence,
            sync: SyncPolicy {
                between_kernels: true,
                between_iterations: false,
            },
        },
        _ => AppDescriptor {
            name: format!("svc-mk-loop-{n}"),
            buffers: vec![buffer("a"), buffer("b")],
            kernels: vec![kernel("k0", 24.0, 0), kernel("k1", 72.0, 1)],
            flow: ExecutionFlow::Loop { iterations: 3 },
            sync: SyncPolicy {
                between_kernels: true,
                between_iterations: true,
            },
        },
    }
}

/// Generate the seeded arrival sequence for `cfg` under `chaos`: arrival
/// times come off [`LOAD_STREAM`] (gaps compressed inside burst windows),
/// frame corruption comes off [`CHAOS_STREAM`]. Same inputs, same bytes.
pub fn generate_load(cfg: &LoadConfig, chaos: &ChaosSchedule) -> Vec<Arrival> {
    let mut load_rng = FaultRng::new(cfg.seed ^ LOAD_STREAM);
    let mut chaos_rng = FaultRng::new(chaos.seed ^ CHAOS_STREAM);
    let mut arrivals = Vec::with_capacity(cfg.requests as usize);
    let mut t = SimTime::ZERO;
    for i in 0..cfg.requests {
        // Gap in [0.5, 1.5) × mean, divided by the active burst factor.
        let jitter = 500 + load_rng.next_u64() % 1000;
        let gap_ns = (cfg.mean_gap_us * 1_000).saturating_mul(jitter) / 1000;
        let factor = u64::from(chaos.burst_factor(t));
        t += SimTime::from_nanos((gap_ns / factor).max(1));
        let template = load_rng.next_u64() % 60;
        let client = format!("c{}", load_rng.next_u64() % u64::from(cfg.clients.max(1)));
        let what_if = load_rng.next_u64() % 1000 < u64::from(cfg.what_if_permille);
        let req = PlanRequest {
            id: i,
            client: client.clone(),
            app: template_app(template),
            config: None,
            what_if,
            deadline_us: cfg.deadline_us,
        };
        let mut bytes = encode_request(&req);
        if let Some(corruption) = draw_corruption(chaos, t, &mut chaos_rng) {
            corrupt_frame(&mut bytes, corruption, &mut chaos_rng);
        }
        arrivals.push(Arrival {
            at: t,
            client,
            bytes,
        });
    }
    arrivals
}

/// A complete load-generator run: outcomes, the service registry and the
/// deterministic human-readable summary CI byte-diffs.
pub struct LoadOutcome {
    /// One terminal outcome per generated arrival, in arrival order.
    pub outcomes: Vec<ServiceOutcome>,
    /// The service's `hm_service_*` registry (JSON/Prometheus exportable).
    pub registry: MetricsRegistry,
    /// Deterministic summary text (counts, latency quantiles, throughput).
    pub summary: String,
}

/// Generate load, run the service, and summarize. The whole pipeline is a
/// pure function of `(service_cfg, load_cfg, chaos, platform)`.
pub fn run_load(
    platform: &Platform,
    service_cfg: &ServiceConfig,
    load_cfg: &LoadConfig,
    chaos: &ChaosSchedule,
) -> LoadOutcome {
    let arrivals = generate_load(load_cfg, chaos);
    let mut service = PlanService::new(platform, service_cfg.clone(), chaos.clone());
    let outcomes = service.run(&arrivals);
    let mut verdicts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut served = 0u64;
    let mut degraded = 0u64;
    let mut cached = 0u64;
    let mut last_done = SimTime::ZERO;
    for o in &outcomes {
        match &o.result {
            Ok(resp) => {
                served += 1;
                if resp.degraded {
                    degraded += 1;
                }
                if resp.cached {
                    cached += 1;
                }
            }
            Err(e) => *verdicts.entry(e.verdict()).or_insert(0) += 1,
        }
        last_done = last_done.max(o.done);
    }
    let span_s = last_done.as_secs_f64();
    let throughput = if span_s > 0.0 {
        outcomes.len() as f64 / span_s
    } else {
        0.0
    };
    let mut summary = String::new();
    use std::fmt::Write as _;
    let _ = writeln!(
        summary,
        "service load: {} request(s), {} served ({} cached, {} degraded), {} shed",
        outcomes.len(),
        served,
        cached,
        degraded,
        outcomes.len() as u64 - served
    );
    for (verdict, n) in &verdicts {
        let _ = writeln!(summary, "  shed {verdict:<15} {n}");
    }
    let _ = writeln!(
        summary,
        "  latency p50 {:.6}s p95 {:.6}s p99 {:.6}s",
        service.latency_quantile(0.50),
        service.latency_quantile(0.95),
        service.latency_quantile(0.99)
    );
    let _ = writeln!(
        summary,
        "  virtual span {:.6}s, throughput {:.0} req/s",
        span_s, throughput
    );
    LoadOutcome {
        outcomes,
        registry: service.registry.clone(),
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    fn plat() -> Platform {
        Platform::icpp15()
    }

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 4,
            degrade_depth: 2,
            rate_limit: None,
            default_deadline_us: None,
            ..ServiceConfig::default()
        }
    }

    fn frame(i: u64, what_if: bool) -> Vec<u8> {
        encode_request(&PlanRequest {
            id: i,
            client: "c0".into(),
            app: template_app(i % 12),
            config: None,
            what_if,
            deadline_us: None,
        })
    }

    #[test]
    fn codec_round_trips() {
        let req = PlanRequest {
            id: 7,
            client: "alice".into(),
            app: template_app(5),
            config: Some(ExecutionConfig::Strategy(Strategy::SpUnified)),
            what_if: true,
            deadline_us: Some(5000),
        };
        let bytes = encode_request(&req);
        let back = decode_request(&bytes, DEFAULT_MAX_BODY_BYTES).expect("round trip");
        assert_eq!(back, req);
    }

    #[test]
    fn codec_rejects_typed() {
        let e = decode_request(b"GET / HTTP/1.1\r\n\r\n", 1024).unwrap_err();
        assert_eq!(e.verdict(), "bad_frame");
        let e = decode_request(b"no terminator at all", 1024).unwrap_err();
        assert_eq!(e.verdict(), "bad_frame");
        let e = decode_request(
            b"POST /plan HTTP/1.1\r\ncontent-length: 999999999\r\n\r\nx",
            1024,
        )
        .unwrap_err();
        assert!(matches!(
            e,
            ServiceError::Oversized {
                bytes: 999999999,
                limit: 1024
            }
        ));
        let e = decode_request(b"POST /plan HTTP/1.1\r\ncontent-length: 10\r\n\r\nxx", 1024)
            .unwrap_err();
        assert!(matches!(e, ServiceError::TornBody { got: 2, want: 10 }));
        let e = decode_request(
            b"POST /plan HTTP/1.1\r\ncontent-length: 4\r\n\r\n{{{{",
            1024,
        )
        .unwrap_err();
        assert_eq!(e.verdict(), "bad_json");
    }

    #[test]
    fn serves_and_memoizes() {
        let p = plat();
        let mut svc = PlanService::new(&p, small_cfg(), ChaosSchedule::calm(0));
        let arrivals: Vec<Arrival> = (0..4)
            .map(|i| Arrival {
                at: SimTime::from_millis(10 * (i + 1)),
                client: "c0".into(),
                bytes: frame(0, false),
            })
            .collect();
        let outcomes = svc.run(&arrivals);
        assert_eq!(outcomes.len(), 4);
        let first = outcomes[0].result.as_ref().expect("served");
        assert!(!first.cached && !first.degraded);
        let later = outcomes[3].result.as_ref().expect("served");
        assert!(later.cached && !later.degraded);
        check_shed_or_serve(4, &outcomes).expect("shed-or-serve holds");
    }

    #[test]
    fn queue_full_sheds_typed_and_cache_degrades() {
        let p = plat();
        let mut svc = PlanService::new(&p, small_cfg(), ChaosSchedule::calm(0));
        // Everything at t=0: 2 dispatch immediately, 4 queue, the rest
        // must shed (no cache yet) — then a second volley after the cache
        // warmed must serve degraded.
        let volley: Vec<Arrival> = (0..10)
            .map(|_| Arrival {
                at: SimTime::from_micros(1),
                client: "c0".into(),
                bytes: frame(0, false),
            })
            .collect();
        let outcomes = svc.run(&volley);
        let shed: Vec<_> = outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err())
            .collect();
        assert!(
            shed.iter()
                .all(|e| matches!(e, ServiceError::QueueFull { .. })),
            "sheds are typed queue-full: {shed:?}"
        );
        assert!(!shed.is_empty(), "saturation must shed something");
        // A second volley after the first solve completes in virtual time
        // (~201us): the cache is warm *and* the pool is still saturated
        // draining the first volley's queue, so the service degrades.
        let volley2: Vec<Arrival> = (0..10)
            .map(|_| Arrival {
                at: SimTime::from_micros(205),
                client: "c0".into(),
                bytes: frame(0, false),
            })
            .collect();
        let mut svc2 = PlanService::new(&p, small_cfg(), ChaosSchedule::calm(0));
        let mut all = volley.clone();
        all.extend(volley2);
        let outcomes = svc2.run(&all);
        let degraded = outcomes
            .iter()
            .filter(|o| o.result.as_ref().is_ok_and(|r| r.degraded))
            .count();
        assert!(degraded > 0, "warm cache must degrade under saturation");
        check_shed_or_serve(all.len(), &outcomes).expect("shed-or-serve holds");
    }

    #[test]
    fn deadlines_fire_at_queue_pop_and_mid_solve() {
        let p = plat();
        let cfg = ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            degrade_depth: 8,
            rate_limit: None,
            default_deadline_us: Some(300),
            base_solve_us: 200,
            per_kernel_solve_us: 0,
            ..ServiceConfig::default()
        };
        let mut svc = PlanService::new(&p, cfg, ChaosSchedule::calm(0));
        // Distinct templates per arrival: each is a cache miss, so the
        // single worker must pay the full 200us solve every time and the
        // queue wait blows the 300us budget.
        let arrivals: Vec<Arrival> = (0..4)
            .map(|i| Arrival {
                at: SimTime::from_micros(1),
                client: "c0".into(),
                bytes: frame(i, false),
            })
            .collect();
        let outcomes = svc.run(&arrivals);
        let kinds: Vec<&'static str> = outcomes
            .iter()
            .map(|o| match &o.result {
                Ok(_) => "ok",
                Err(e) => e.verdict(),
            })
            .collect();
        assert_eq!(kinds[0], "ok");
        assert!(
            kinds.contains(&"deadline_solve") || kinds.contains(&"deadline_queue"),
            "a 300us budget behind a 200us solve must miss: {kinds:?}"
        );
        check_shed_or_serve(4, &outcomes).expect("shed-or-serve holds");
    }

    #[test]
    fn rate_limit_sheds_typed() {
        let p = plat();
        let cfg = ServiceConfig {
            rate_limit: Some(RateLimit {
                burst: 2,
                per_sec: 1,
            }),
            ..small_cfg()
        };
        let mut svc = PlanService::new(&p, cfg, ChaosSchedule::calm(0));
        let arrivals: Vec<Arrival> = (0..5)
            .map(|i| Arrival {
                at: SimTime::from_micros(i + 1),
                client: "greedy".into(),
                bytes: frame(2, false),
            })
            .collect();
        let outcomes = svc.run(&arrivals);
        let limited = outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.result.as_ref(),
                    Err(ServiceError::RateLimited { client }) if client == "greedy"
                )
            })
            .count();
        assert_eq!(limited, 3, "burst of 2 admits 2, sheds 3");
    }

    #[test]
    fn double_run_is_byte_identical_under_chaos() {
        let p = plat();
        let load = LoadConfig {
            requests: 400,
            seed: 42,
            ..LoadConfig::default()
        };
        let span = SimTime::from_millis(48);
        let chaos = ChaosSchedule::burst(42, 10, span);
        let a = run_load(&p, &ServiceConfig::default(), &load, &chaos);
        let b = run_load(&p, &ServiceConfig::default(), &load, &chaos);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.registry.to_json(), b.registry.to_json());
        assert_eq!(a.outcomes, b.outcomes);
        check_shed_or_serve(load.requests as usize, &a.outcomes).expect("shed-or-serve");
    }

    #[test]
    fn chaos_produces_typed_sheds_only() {
        let p = plat();
        let load = LoadConfig {
            requests: 600,
            seed: 7,
            mean_gap_us: 40,
            ..LoadConfig::default()
        };
        let span = SimTime::from_millis(20);
        let chaos = ChaosSchedule::burst(7, 10, span);
        let out = run_load(&p, &ServiceConfig::default(), &load, &chaos);
        check_shed_or_serve(600, &out.outcomes).expect("shed-or-serve");
        let verdicts: std::collections::BTreeSet<&'static str> = out
            .outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().err().map(|e| e.verdict()))
            .collect();
        // The canonical chaos schedule must exercise the client-misbehavior
        // rejects; overload rejects depend on tuning but sheds stay typed.
        assert!(verdicts.contains("torn_body"), "{verdicts:?}");
        assert!(verdicts.contains("bad_json"), "{verdicts:?}");
        assert!(verdicts.contains("oversized"), "{verdicts:?}");
    }

    #[test]
    fn service_stream_constants_are_pinned() {
        use hetero_runtime::{ADAPT_STREAM, CORRELATED_STREAM, HEALTH_STREAM, REPLAN_STREAM};
        assert_eq!(LOAD_STREAM, 0x10AD_9E4E_CA70_12F5);
        assert_eq!(CHAOS_STREAM, 0xC4A0_5C4A_05C4_A05C);
        let first = |s: u64| FaultRng::new(s).next_u64();
        assert_eq!(first(LOAD_STREAM), 0xd1ad_a757_6605_3d5a);
        assert_eq!(first(CHAOS_STREAM), 0x1d30_16a4_849e_5b8b);
        let all = [
            LOAD_STREAM,
            CHAOS_STREAM,
            HEALTH_STREAM,
            ADAPT_STREAM,
            CORRELATED_STREAM,
            REPLAN_STREAM,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "stream constants must be pairwise distinct");
            }
        }
    }
}
