//! Robustness-aware strategy ranking.
//!
//! The paper's matchmaker ranks strategies by *healthy* performance
//! (Table I). On a platform that misbehaves mid-run — a throttled GPU, a
//! flaky PCIe link, an accelerator that drops out — the best healthy
//! strategy is not necessarily the best survivor: a static plan that
//! pinned everything to the dead device pays a full failover storm, while
//! a dynamic policy reroutes around it. This module replays every
//! candidate configuration under a [`FaultSchedule`] and ranks them by
//! **degradation** — faulty makespan over healthy makespan — so the
//! matchmaker can also answer "which strategy loses the least when the
//! platform fails?".

use crate::analyzer::Analyzer;
use crate::descriptor::AppDescriptor;
use crate::plan::Planner;
use crate::strategy::ExecutionConfig;
use hetero_platform::{FaultSchedule, FaultTrace, RetryPolicy, SimTime};
use hetero_runtime::{AdaptConfig, HealthConfig, ReplanConfig, ReplanError, RunReport};

/// One configuration's healthy/faulty pair from [`Analyzer::rank_by_degradation`].
#[derive(Clone, Debug)]
pub struct DegradationEntry {
    /// The execution configuration that was replayed.
    pub config: ExecutionConfig,
    /// Its fault-free run.
    pub healthy: RunReport,
    /// The same plan under the fault schedule.
    pub faulty: RunReport,
}

impl DegradationEntry {
    /// Faulty makespan over healthy makespan (1.0 = faults cost nothing).
    pub fn degradation(&self) -> f64 {
        self.faulty.degradation_vs(&self.healthy)
    }

    /// Slot time the faulty run burnt on fault handling and mitigation,
    /// summed over devices: fault loss + hedge waste + rollback + verify
    /// (from the faulty run's blame breakdown).
    pub fn resilience_overhead(&self) -> SimTime {
        self.faulty
            .breakdown
            .per_device
            .iter()
            .map(|b| b.resilience_overhead())
            .sum()
    }

    /// Where the degradation went, per device: the faulty run's blame
    /// components as a compact table (`names` indexed by `DeviceId.0`).
    pub fn blame_summary(&self, names: &[&str]) -> String {
        self.faulty.breakdown.render(names)
    }
}

impl<'a> Analyzer<'a> {
    /// [`Analyzer::simulate`] under a fault schedule: the same plan, the
    /// same scheduler dispatch, executed resiliently (DP-Perf warms up
    /// under the faults too, so its learned rates see the sick platform).
    pub fn simulate_faulty(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
    ) -> RunReport {
        self.simulate_resilient(desc, config, schedule, policy, &HealthConfig::disabled())
    }

    /// [`Analyzer::simulate_faulty`] with the gray-failure resilience
    /// subsystem configured by `health` (straggler hedging, SDC
    /// verification, circuit breaker). With [`HealthConfig::disabled`]
    /// this is exactly [`Analyzer::simulate_faulty`].
    pub fn simulate_resilient(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
    ) -> RunReport {
        self.simulate_resilient_observed(
            desc,
            config,
            schedule,
            policy,
            health,
            &mut hetero_runtime::NullObserver,
        )
    }

    /// [`Analyzer::simulate_resilient`] with a pluggable
    /// [`hetero_runtime::Observer`]. DP-Perf's warm-up pass runs
    /// unobserved; only the measured pass feeds `obs`, so metrics and
    /// traces describe exactly one run.
    pub fn simulate_resilient_observed(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
        obs: &mut dyn hetero_runtime::Observer,
    ) -> RunReport {
        use crate::strategy::Strategy;
        use hetero_runtime::{
            simulate_resilient, simulate_resilient_observed, DepScheduler, PerfScheduler,
            PinnedScheduler,
        };
        let plan = self.plan(desc, config);
        let platform = self.planner().platform;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_resilient_observed(
                    &plan.program,
                    platform,
                    &mut s,
                    schedule,
                    policy,
                    health,
                    obs,
                )
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                // The warm-up learns rates under the base schedule with
                // correlated triggering disabled, so the learned rates are
                // replayable (see `hetero_runtime::warmup_schedule`).
                let warm_schedule = hetero_runtime::warmup_schedule(schedule);
                let mut warm = PerfScheduler::new(platform);
                let _ = simulate_resilient(
                    &plan.program,
                    platform,
                    &mut warm,
                    &warm_schedule,
                    policy,
                    health,
                );
                let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
                simulate_resilient_observed(
                    &plan.program,
                    platform,
                    &mut measured,
                    schedule,
                    policy,
                    health,
                    obs,
                )
            }
            _ => simulate_resilient_observed(
                &plan.program,
                platform,
                &mut PinnedScheduler,
                schedule,
                policy,
                health,
                obs,
            ),
        }
    }

    /// Run `config` under `schedule` and record the run's *effective*
    /// fault trace: the input schedule plus every event synthesized
    /// during the run by correlated fault domains.
    /// [`FaultTrace::replay_schedule`] turns the result into a plain
    /// schedule — triggers baked in as ordinary windowed events,
    /// conditional triggering disabled — that replays this run
    /// byte-identically, and the trace's JSON form
    /// ([`FaultTrace::to_json`]) can be archived or handed back to any
    /// `rank_by_degradation_*` as a what-if.
    pub fn record_fault_trace(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
    ) -> (RunReport, FaultTrace) {
        let report = self.simulate_faulty(desc, config, schedule, policy);
        let trace = FaultTrace::new(schedule.clone(), report.synthesized_faults.clone());
        (report, trace)
    }

    /// [`Analyzer::simulate_resilient`] with the adaptive-repartitioning
    /// controller in the loop — the full PR-3 pipeline:
    ///
    /// 1. the plan is built by a planner whose profiled rates are skewed
    ///    by the schedule's `ProfilePerturb` windows open at time zero
    ///    (the planner "profiled" the perturbed platform and baked the
    ///    misprediction into the plan; execution runs at true rates);
    /// 2. for static hybrid strategies the mispredicted
    ///    [`hetero_runtime::AdaptPlan`] rides along so the controller can
    ///    re-solve it against observed throughputs at taskwait barriers
    ///    and, when re-solves are exhausted, escalate to the strategy's
    ///    dynamic sibling (`Strategy::dynamic_sibling`, SP-* → DP-Perf).
    ///
    /// With [`AdaptConfig::disabled`] this reproduces the *mispredicted
    /// baseline*: the same skewed plan executed with no mitigation.
    pub fn simulate_adaptive(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
        adapt: &AdaptConfig,
    ) -> RunReport {
        self.simulate_adaptive_observed(
            desc,
            config,
            schedule,
            policy,
            health,
            adapt,
            &mut hetero_runtime::NullObserver,
        )
    }

    /// [`Analyzer::simulate_adaptive`] with a pluggable
    /// [`hetero_runtime::Observer`] — the way to capture the adaptation
    /// event stream ([`hetero_runtime::TraceEvent::StrategyEscalated`],
    /// [`hetero_runtime::TraceEvent::StrategyReinstated`], ...) from the
    /// full planner-in-the-loop pipeline. DP-Perf's warm-up pass runs
    /// unobserved, as in [`Analyzer::simulate_resilient_observed`].
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_adaptive_observed(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
        adapt: &AdaptConfig,
        obs: &mut dyn hetero_runtime::Observer,
    ) -> RunReport {
        use crate::strategy::Strategy;
        use hetero_runtime::{
            simulate_adaptive_observed, simulate_resilient, DepScheduler, PerfScheduler,
            PinnedScheduler,
        };
        let planner = self.misprediction_planner(schedule);
        let plan = planner.plan(desc, config);
        let platform = planner.platform;
        match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_adaptive_observed(
                    &plan.program,
                    platform,
                    &mut s,
                    schedule,
                    policy,
                    health,
                    adapt,
                    None,
                    obs,
                )
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                // Warm-up under the replayable form of the schedule, as in
                // `simulate_resilient_observed` above.
                let warm_schedule = hetero_runtime::warmup_schedule(schedule);
                let mut warm = PerfScheduler::new(platform);
                let _ = simulate_resilient(
                    &plan.program,
                    platform,
                    &mut warm,
                    &warm_schedule,
                    policy,
                    health,
                );
                let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
                simulate_adaptive_observed(
                    &plan.program,
                    platform,
                    &mut measured,
                    schedule,
                    policy,
                    health,
                    adapt,
                    None,
                    obs,
                )
            }
            _ => simulate_adaptive_observed(
                &plan.program,
                platform,
                &mut PinnedScheduler,
                schedule,
                policy,
                health,
                adapt,
                planner.adapt_plan(desc, config),
                obs,
            ),
        }
    }

    /// [`Analyzer::simulate_adaptive`] with degraded-mode plan repair
    /// armed: when a device dies past its retry budget or the circuit
    /// breaker quarantines it, the executor re-solves the surviving device
    /// set (N-way via the planner's [`hetero_runtime::MultiAdaptPlan`] on
    /// multi-accelerator platforms) and rebinds the queued chunks
    /// wave-aware, instead of leaning on naive chunk-by-chunk host
    /// failover. See DESIGN.md §8.6.
    ///
    /// Returns [`ReplanError`] when the repair subsystem had to give up:
    /// no surviving device, re-solve infeasible, or the
    /// [`ReplanConfig::max_replans`] budget exhausted mid-run.
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_repairing(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
        adapt: &AdaptConfig,
        replan: &ReplanConfig,
    ) -> Result<RunReport, ReplanError> {
        self.simulate_repairing_observed(
            desc,
            config,
            schedule,
            policy,
            health,
            adapt,
            replan,
            &mut hetero_runtime::NullObserver,
        )
    }

    /// [`Analyzer::simulate_repairing`] with a pluggable
    /// [`hetero_runtime::Observer`] — the way to capture
    /// [`hetero_runtime::TraceEvent::PlanRepaired`] /
    /// [`hetero_runtime::TraceEvent::DeviceReadmitted`] streams from the
    /// planner-in-the-loop pipeline. DP-Perf's warm-up pass runs
    /// unobserved, as in [`Analyzer::simulate_resilient_observed`].
    #[allow(clippy::too_many_arguments)]
    pub fn simulate_repairing_observed(
        &self,
        desc: &AppDescriptor,
        config: ExecutionConfig,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
        adapt: &AdaptConfig,
        replan: &ReplanConfig,
        obs: &mut dyn hetero_runtime::Observer,
    ) -> Result<RunReport, ReplanError> {
        use crate::strategy::Strategy;
        use hetero_runtime::{
            simulate_repairing_observed, simulate_resilient, DepScheduler, PerfScheduler,
            PinnedScheduler,
        };
        let planner = self.misprediction_planner(schedule);
        let plan = planner.plan(desc, config);
        let platform = planner.platform;
        let report = match config {
            ExecutionConfig::Strategy(Strategy::DpDep) => {
                let mut s = DepScheduler::new(platform);
                simulate_repairing_observed(
                    &plan.program,
                    platform,
                    &mut s,
                    schedule,
                    policy,
                    health,
                    adapt,
                    None,
                    replan,
                    obs,
                )
            }
            ExecutionConfig::Strategy(Strategy::DpPerf) => {
                let warm_schedule = hetero_runtime::warmup_schedule(schedule);
                let mut warm = PerfScheduler::new(platform);
                let _ = simulate_resilient(
                    &plan.program,
                    platform,
                    &mut warm,
                    &warm_schedule,
                    policy,
                    health,
                );
                let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
                simulate_repairing_observed(
                    &plan.program,
                    platform,
                    &mut measured,
                    schedule,
                    policy,
                    health,
                    adapt,
                    None,
                    replan,
                    obs,
                )
            }
            _ => simulate_repairing_observed(
                &plan.program,
                platform,
                &mut PinnedScheduler,
                schedule,
                policy,
                health,
                adapt,
                planner.adapt_plan(desc, config),
                replan,
                obs,
            ),
        };
        match report.adapt.replan_error.clone() {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// A planner that saw the perturbed platform while profiling: every
    /// device's profiled rate is scaled by the schedule's
    /// [`FaultSchedule::profile_factor`] at time zero (planning precedes
    /// the run). With no `ProfilePerturb` events this is the analyzer's
    /// own planner, unchanged.
    pub(crate) fn misprediction_planner(&self, schedule: &FaultSchedule) -> Planner<'a> {
        let p = self.planner();
        let cpu = schedule.profile_factor(p.platform.cpu().id, SimTime::ZERO);
        let gpu = p
            .platform
            .gpu()
            .map(|g| schedule.profile_factor(g.id, SimTime::ZERO))
            .unwrap_or(1.0);
        Planner {
            platform: p.platform,
            instances_per_kernel: p.instances_per_kernel,
            dynamic_instances_per_kernel: p.dynamic_instances_per_kernel,
            decision: p.decision,
            profile_skew: (p.profile_skew.0 * cpu, p.profile_skew.1 * gpu),
            profiles: p.profiles.clone(),
        }
    }

    /// Replay the §IV comparison (both single-device baselines plus every
    /// suitable strategy) healthy and under `schedule`, and return the
    /// entries sorted by [`DegradationEntry::degradation`], most robust
    /// first. Ties (and everything else) stay in Table I order, so the
    /// ranking is deterministic.
    pub fn rank_by_degradation(
        &self,
        desc: &AppDescriptor,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
    ) -> Vec<DegradationEntry> {
        self.rank_by_degradation_resilient(desc, schedule, policy, &HealthConfig::disabled())
    }

    /// [`Analyzer::rank_by_degradation`] with gray-failure mitigation in
    /// the loop: every candidate replays under `schedule` *with* the
    /// watchdog/verification/breaker configured by `health`, answering the
    /// paper-level question "which partitioning strategy degrades most
    /// gracefully when a device goes gray?" — and whether mitigation
    /// changes the answer.
    pub fn rank_by_degradation_resilient(
        &self,
        desc: &AppDescriptor,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
    ) -> Vec<DegradationEntry> {
        let analysis = self.analyze(desc);
        let configs: Vec<ExecutionConfig> = [ExecutionConfig::OnlyGpu, ExecutionConfig::OnlyCpu]
            .into_iter()
            .chain(
                analysis
                    .ranking
                    .iter()
                    .map(|&s| ExecutionConfig::Strategy(s)),
            )
            .collect();
        let mut entries: Vec<DegradationEntry> = configs
            .into_iter()
            .map(|config| DegradationEntry {
                config,
                healthy: self.simulate(desc, config),
                faulty: self.simulate_resilient(desc, config, schedule, policy, health),
            })
            .collect();
        entries.sort_by(|a, b| {
            a.degradation()
                .partial_cmp(&b.degradation())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        entries
    }

    /// [`Analyzer::rank_by_degradation_resilient`] with adaptive
    /// repartitioning in the loop: every candidate replays under
    /// `schedule` with the misprediction applied to its plan *and* the
    /// controller configured by `adapt` — answering "which strategy loses
    /// the least when the model is wrong, given the runtime may fight
    /// back?". The healthy baseline stays the faithful (unskewed) plan, so
    /// degradation measures the full cost of the misprediction net of
    /// whatever the controller recovered.
    pub fn rank_by_degradation_adaptive(
        &self,
        desc: &AppDescriptor,
        schedule: &FaultSchedule,
        policy: RetryPolicy,
        health: &HealthConfig,
        adapt: &AdaptConfig,
    ) -> Vec<DegradationEntry> {
        let analysis = self.analyze(desc);
        let configs: Vec<ExecutionConfig> = [ExecutionConfig::OnlyGpu, ExecutionConfig::OnlyCpu]
            .into_iter()
            .chain(
                analysis
                    .ranking
                    .iter()
                    .map(|&s| ExecutionConfig::Strategy(s)),
            )
            .collect();
        let mut entries: Vec<DegradationEntry> = configs
            .into_iter()
            .map(|config| DegradationEntry {
                config,
                healthy: self.simulate(desc, config),
                faulty: self.simulate_adaptive(desc, config, schedule, policy, health, adapt),
            })
            .collect();
        entries.sort_by(|a, b| {
            a.degradation()
                .partial_cmp(&b.degradation())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{
        AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy,
    };
    use hetero_platform::{DeviceId, Efficiency, KernelProfile, Platform, Precision, SimTime};
    use hetero_runtime::AccessMode;

    fn app() -> AppDescriptor {
        let n = 1u64 << 18;
        AppDescriptor {
            name: "robust".into(),
            buffers: vec![BufferSpec {
                name: "data".into(),
                items: n,
                item_bytes: 8,
            }],
            kernels: vec![KernelSpec {
                name: "kernel".into(),
                profile: KernelProfile {
                    flops_per_item: 65536.0,
                    bytes_per_item: 8.0,
                    fixed_flops: 0.0,
                    fixed_bytes: 0.0,
                    precision: Precision::Single,
                    cpu_efficiency: Efficiency {
                        compute: 0.25,
                        bandwidth: 0.6,
                    },
                    gpu_efficiency: Efficiency {
                        compute: 0.35,
                        bandwidth: 0.7,
                    },
                },
                domain: n,
                accesses: vec![AccessPattern::part(0, AccessMode::InOut)],
                weights: None,
            }],
            flow: ExecutionFlow::Sequence,
            sync: SyncPolicy {
                between_kernels: false,
                between_iterations: false,
            },
        }
    }

    #[test]
    fn healthy_schedule_means_no_degradation() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        let schedule = FaultSchedule::new(1);
        let entries = analyzer.rank_by_degradation(&app(), &schedule, RetryPolicy::default());
        assert!(!entries.is_empty());
        for e in &entries {
            assert!(
                (e.degradation() - 1.0).abs() < 1e-9,
                "{}: empty schedule must not degrade (got {})",
                e.config,
                e.degradation()
            );
        }
    }

    #[test]
    fn gray_schedule_ranks_with_mitigation_in_the_loop() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        // The GPU goes gray (4x straggler) for the whole run.
        let schedule = FaultSchedule::new(21).with_throttle(
            DeviceId(1),
            SimTime::ZERO,
            SimTime::from_millis(1),
            4.0,
            4.0,
        );
        let plain = analyzer.rank_by_degradation(&app(), &schedule, RetryPolicy::default());
        let mitigated = analyzer.rank_by_degradation_resilient(
            &app(),
            &schedule,
            RetryPolicy::default(),
            &HealthConfig::monitored(),
        );
        assert_eq!(plain.len(), mitigated.len());
        // Only-CPU never touches the gray device either way.
        assert_eq!(plain[0].config, ExecutionConfig::OnlyCpu);
        assert_eq!(mitigated[0].config, ExecutionConfig::OnlyCpu);
        // The mitigated replay is deterministic.
        let again = analyzer.rank_by_degradation_resilient(
            &app(),
            &schedule,
            RetryPolicy::default(),
            &HealthConfig::monitored(),
        );
        for (a, b) in mitigated.iter().zip(&again) {
            assert_eq!(a.faulty.makespan, b.faulty.makespan);
        }
    }

    #[test]
    fn gpu_dropout_ranks_cpu_baseline_as_most_robust() {
        let platform = Platform::test_small();
        let analyzer = Analyzer::new(&platform);
        // The GPU dies almost immediately: anything that leaned on it
        // degrades; Only-CPU never notices.
        let schedule = FaultSchedule::new(3).with_dropout(DeviceId(1), SimTime::from_micros(50));
        let entries = analyzer.rank_by_degradation(&app(), &schedule, RetryPolicy::default());
        let best = &entries[0];
        assert_eq!(best.config, ExecutionConfig::OnlyCpu);
        assert!((best.degradation() - 1.0).abs() < 1e-9);
        // Everything that used the GPU degraded strictly.
        let worst = entries.last().unwrap();
        assert!(worst.degradation() > 1.0);
    }
}
