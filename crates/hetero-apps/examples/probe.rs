//! Calibration probe: dump the full evaluation matrix (all paper app
//! variants x all configurations) in one table. This is the raw view the
//! `repro` harness formats per figure; useful when re-calibrating the
//! application workload profiles in this crate.
//!
//! ```sh
//! cargo run --release -p hetero-apps --example probe
//! ```

use hetero_apps::*;
use hetero_platform::Platform;
use matchmaker::Analyzer;

fn main() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    for desc in [
        matrixmul::paper_descriptor(),
        blackscholes::paper_descriptor(),
        nbody::paper_descriptor(),
        hotspot::paper_descriptor(),
        stream::paper_seq(false),
        stream::paper_seq(true),
        stream::paper_loop(false),
        stream::paper_loop(true),
    ] {
        println!("== {} ==", desc.name);
        for (cfg, r) in analyzer.compare_all(&desc) {
            println!(
                "  {:<16} {:>10.1} ms   gpu_items {:>5.1}%  gpu_tasks {:>5.1}%  transfers {:>6} ({:.2} GB, {:.1} ms)",
                cfg.to_string(),
                r.makespan.as_millis_f64(),
                100.0 * r.gpu_item_share(),
                100.0 * r.gpu_task_share(),
                r.counters.transfers.count,
                r.counters.transfers.bytes as f64 / 1e9,
                r.counters.transfers.time.as_millis_f64()
            );
        }
    }
}
