//! TriTransform — a triangular row transform with an *imbalanced* workload.
//!
//! Demonstrates the ICS'14 Glinda extension ("Improving Performance by
//! Matching Imbalanced Workloads with Heterogeneous Platforms", cited as
//! the paper's reference [9]): row `i` of `out = L·x` costs `i+1`
//! multiply-adds — a triangular workload where splitting by item *count*
//! misloads the devices and Glinda's split-by-*work* solver is needed.
//!
//! The kernel computes `out[i] = Σ_{j ≤ i} L[i][j] · x[j]` (a forward
//! substitution-style sweep with a dense lower-triangular matrix stored in
//! full rows).

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, BufferId, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// The triangular matrix (one item = one row of `n` floats).
pub const BUF_L: usize = 0;
/// The input vector (read whole by every instance).
pub const BUF_X: usize = 1;
/// The output vector.
pub const BUF_OUT: usize = 2;

/// Build the descriptor: domain = rows, row `i` weighted `i+1`.
pub fn descriptor(n: u64) -> AppDescriptor {
    AppDescriptor {
        name: "TriTransform".into(),
        buffers: vec![
            BufferSpec {
                name: "L".into(),
                items: n,
                item_bytes: 4 * n,
            },
            BufferSpec {
                name: "x".into(),
                items: n,
                item_bytes: 4,
            },
            BufferSpec {
                name: "out".into(),
                items: n,
                item_bytes: 4,
            },
        ],
        kernels: vec![KernelSpec {
            name: "tritransform".into(),
            profile: KernelProfile {
                // The *average* row does (n+1)/2 MACs = ~n flops.
                flops_per_item: n as f64,
                // ... and streams ~(n/2)·4 bytes of L.
                bytes_per_item: 2.0 * n as f64,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.30,
                    bandwidth: 0.6,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.35,
                    bandwidth: 0.7,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_L, AccessMode::In),
                AccessPattern::Full {
                    buffer: BUF_X,
                    mode: AccessMode::In,
                },
                AccessPattern::part(BUF_OUT, AccessMode::Out),
            ],
            weights: Some((1..=n).map(|i| i as f32).collect()),
        }],
        flow: ExecutionFlow::Sequence,
        sync: SyncPolicy::NONE,
    }
}

/// The same application with the weights *omitted* — what a count-based
/// (uniform) partitioner sees. Used to quantify the imbalance penalty.
pub fn descriptor_unweighted(n: u64) -> AppDescriptor {
    let mut d = descriptor(n);
    d.kernels[0].weights = None;
    d
}

/// Host implementation for native validation.
pub fn host_kernels(n: u64) -> Vec<KernelFn<'static>> {
    let n = n as usize;
    let kernel: KernelFn<'static> = Box::new(move |hb: &HostBuffers, task| {
        let span = task.accesses[2].region.span;
        let l = hb.get(BufferId(BUF_L));
        let x = hb.get(BufferId(BUF_X));
        let mut out = hb.get_mut(BufferId(BUF_OUT));
        for i in span.start as usize..span.end as usize {
            let mut acc = 0.0f32;
            for j in 0..=i {
                acc += l[i * n + j] * x[j];
            }
            out[i] = acc;
        }
    });
    vec![kernel]
}

/// Deterministic inputs (strictly lower-triangular-plus-diagonal `L`).
pub fn init(hb: &HostBuffers, n: u64) {
    let n = n as usize;
    let mut l = hb.get_mut(BufferId(BUF_L));
    let mut x = hb.get_mut(BufferId(BUF_X));
    for i in 0..n {
        x[i] = 1.0 + (i % 7) as f32 * 0.5;
        for j in 0..n {
            l[i * n + j] = if j <= i {
                ((i * 3 + j * 5) % 11) as f32 * 0.125 + 0.25
            } else {
                0.0
            };
        }
    }
}

/// Parallel reference.
pub fn reference(l: &[f32], x: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n];
    let band = n.div_ceil(8).max(1);
    crate::par::par_chunks_mut(&mut out, band, |b, chunk| {
        let i0 = b * band;
        for (d, o) in chunk.iter_mut().enumerate() {
            let i = i0 + d;
            let mut acc = 0.0f32;
            for j in 0..=i {
                acc += l[i * n + j] * x[j];
            }
            *o = acc;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glinda::HardwareConfig;
    use matchmaker::{classify, AppClass, ExecutionConfig, KernelSplit, Planner};

    #[test]
    fn classified_as_sk_one_and_validates() {
        let d = descriptor(256);
        assert_eq!(classify(&d), AppClass::SkOne);
        d.validate().unwrap();
    }

    #[test]
    fn weighted_split_differs_from_count_split() {
        let platform = hetero_platform::Platform::icpp15();
        let planner = Planner::new(&platform);
        let n = 1 << 14;
        let weighted = planner.decide_kernel(&descriptor(n), 0);
        let uniform = planner.decide_kernel(&descriptor_unweighted(n), 0);
        let wg = weighted.gpu_items(n);
        let ug = uniform.gpu_items(n);
        // The GPU takes the light prefix, so by ITEM COUNT it receives more
        // items under the weighted split than under the count split.
        assert!(wg > ug, "weighted {wg} vs uniform {ug}");
    }

    #[test]
    fn weighted_plan_carries_cost_scales() {
        let platform = hetero_platform::Platform::icpp15();
        let planner = Planner::new(&platform);
        let n = 1 << 13;
        let plan = planner.plan(&descriptor(n), ExecutionConfig::OnlyCpu);
        let scales: Vec<f64> = plan
            .program
            .tasks()
            .iter()
            .map(|(_, t)| t.cost_scale)
            .collect();
        // Later instances carry heavier rows: strictly increasing scales.
        assert!(scales.windows(2).all(|w| w[0] < w[1]), "{scales:?}");
        // Scales are relative to the mean: weighted average over instances
        // (weighted by items) must be ~1.
        let total_items: u64 = plan.program.tasks().iter().map(|(_, t)| t.items).sum();
        let weighted_sum: f64 = plan
            .program
            .tasks()
            .iter()
            .map(|(_, t)| t.cost_scale * t.items as f64)
            .sum();
        assert!((weighted_sum / total_items as f64 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_bound_rows_make_weights_nearly_irrelevant() {
        // TriTransform streams each row of L across PCIe, so the GPU side
        // is transfer-bound — and transfers scale with item COUNT, not
        // weight. The imbalanced solver therefore lands close to the
        // count-based split's makespan (the interesting contrast is the
        // compute-bound case; see `binomial`). This test documents the
        // insight rather than demanding a win.
        let platform = hetero_platform::Platform::icpp15();
        let planner = Planner::new(&platform);
        let n = 1 << 14;
        let weighted = planner.decide_kernel(&descriptor(n), 0);
        let KernelSplit::Single(HardwareConfig::Hybrid(sol)) = weighted else {
            panic!("expected hybrid")
        };
        // GPU time and CPU time predicted equal by the solver.
        assert!(sol.predicted_time > 0.0);
        assert!(sol.gpu_items > 0 && sol.cpu_items > 0);
    }

    #[test]
    fn reference_matches_manual_row() {
        let n = 4;
        // L = row i has entries 1.0 up to the diagonal; x = [1,2,3,4].
        let mut l = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..=i {
                l[i * n + j] = 1.0;
            }
        }
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let out = reference(&l, &x, n);
        assert_eq!(out, vec![1.0, 3.0, 6.0, 10.0]);
    }
}
