//! Synthetic application generators.
//!
//! Used by the corpus (coverage study), by the MK-DAG experiments (the
//! paper excludes MK-DAG from the static-vs-dynamic comparison but
//! evaluates its two dynamic strategies in [20]), and by examples that need
//! a configurable application without a real kernel body.

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::AccessMode;
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

fn profile(flops_per_item: f64) -> KernelProfile {
    KernelProfile {
        flops_per_item,
        bytes_per_item: 8.0,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency {
            compute: 0.25,
            bandwidth: 0.6,
        },
        gpu_efficiency: Efficiency {
            compute: 0.35,
            bandwidth: 0.7,
        },
    }
}

/// A single-kernel application over one in-out buffer.
pub fn single_kernel(
    name: &str,
    n: u64,
    flops_per_item: f64,
    flow: ExecutionFlow,
    sync_iterations: bool,
) -> AppDescriptor {
    AppDescriptor {
        name: name.into(),
        buffers: vec![BufferSpec {
            name: "data".into(),
            items: n,
            item_bytes: 8,
        }],
        kernels: vec![KernelSpec {
            name: "kernel".into(),
            profile: profile(flops_per_item),
            domain: n,
            accesses: vec![AccessPattern::part(0, AccessMode::InOut)],
            weights: None,
        }],
        flow,
        sync: SyncPolicy {
            between_kernels: false,
            between_iterations: sync_iterations,
        },
    }
}

/// A multi-kernel pipeline: kernel `k` reads buffer `k` and writes buffer
/// `k+1 (mod 2)` alternating over two buffers, so consecutive kernels form
/// per-partition dependence chains (like STREAM).
pub fn multi_kernel(
    name: &str,
    n: u64,
    kernels: usize,
    flops_per_item: f64,
    flow: ExecutionFlow,
    sync: bool,
) -> AppDescriptor {
    let buffer = |bname: &str| BufferSpec {
        name: bname.into(),
        items: n,
        item_bytes: 8,
    };
    let kernels = (0..kernels)
        .map(|k| KernelSpec {
            name: format!("stage{k}"),
            profile: profile(flops_per_item * (1.0 + (k % 3) as f64)),
            domain: n,
            accesses: vec![
                AccessPattern::part(k % 2, AccessMode::In),
                AccessPattern::part((k + 1) % 2, AccessMode::Out),
            ],
            weights: None,
        })
        .collect();
    AppDescriptor {
        name: name.into(),
        buffers: vec![buffer("ping"), buffer("pong")],
        kernels,
        flow,
        sync: if sync {
            SyncPolicy::FULL
        } else {
            SyncPolicy::NONE
        },
    }
}

/// A fork-join DAG: kernel 0 produces a buffer; kernels `1..k-1` each
/// consume it and produce their own buffer; the final kernel reduces all
/// intermediate buffers. The middle kernels are mutually independent —
/// exactly the inter-kernel parallelism dynamic scheduling exploits.
pub fn dag(name: &str, n: u64, kernels: usize, flops_per_item: f64) -> AppDescriptor {
    assert!(
        kernels >= 3,
        "DAG needs a source, a sink and >=1 middle kernel"
    );
    let buffer = |bname: String| BufferSpec {
        name: bname,
        items: n,
        item_bytes: 8,
    };
    // Buffer 0: source output. Buffers 1..k-1: per-middle-kernel outputs.
    // Buffer k-1: sink output.
    let middles = kernels - 2;
    let mut buffers = vec![buffer("source_out".into())];
    for m in 0..middles {
        buffers.push(buffer(format!("mid{m}_out")));
    }
    buffers.push(buffer("sink_out".into()));

    let mut kspecs = vec![KernelSpec {
        name: "source".into(),
        profile: profile(flops_per_item),
        domain: n,
        accesses: vec![AccessPattern::part(0, AccessMode::Out)],
        weights: None,
    }];
    let mut edges = Vec::new();
    for m in 0..middles {
        kspecs.push(KernelSpec {
            name: format!("mid{m}"),
            profile: profile(flops_per_item * (1.0 + m as f64)),
            domain: n,
            accesses: vec![
                AccessPattern::part(0, AccessMode::In),
                AccessPattern::part(1 + m, AccessMode::Out),
            ],
            weights: None,
        });
        edges.push((0, 1 + m));
        edges.push((1 + m, kernels - 1));
    }
    let sink_reads: Vec<AccessPattern> = (0..middles)
        .map(|m| AccessPattern::part(1 + m, AccessMode::In))
        .collect();
    let mut sink_accesses = sink_reads;
    sink_accesses.push(AccessPattern::part(middles + 1, AccessMode::Out));
    kspecs.push(KernelSpec {
        name: "sink".into(),
        profile: profile(flops_per_item),
        domain: n,
        accesses: sink_accesses,
        weights: None,
    });

    AppDescriptor {
        name: name.into(),
        buffers,
        kernels: kspecs,
        flow: ExecutionFlow::Dag { edges },
        sync: SyncPolicy::NONE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn generators_produce_expected_classes() {
        assert_eq!(
            classify(&single_kernel(
                "s",
                1024,
                8.0,
                ExecutionFlow::Sequence,
                false
            )),
            AppClass::SkOne
        );
        assert_eq!(
            classify(&multi_kernel(
                "m",
                1024,
                3,
                8.0,
                ExecutionFlow::Loop { iterations: 4 },
                true
            )),
            AppClass::MkLoop
        );
        assert_eq!(classify(&dag("d", 1024, 4, 8.0)), AppClass::MkDag);
    }

    #[test]
    fn dag_descriptor_validates_and_has_fork_join_shape() {
        let d = dag("d", 512, 5, 16.0);
        d.validate().unwrap();
        assert_eq!(d.kernels.len(), 5);
        assert_eq!(d.buffers.len(), 5); // source + 3 middles + sink
        let ExecutionFlow::Dag { edges } = &d.flow else {
            panic!()
        };
        assert_eq!(edges.len(), 6); // 3 fan-out + 3 fan-in
    }

    #[test]
    #[should_panic(expected = "DAG needs")]
    fn dag_requires_three_kernels() {
        let _ = dag("d", 64, 2, 1.0);
    }
}
