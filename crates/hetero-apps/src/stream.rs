//! STREAM — the memory-bandwidth benchmark (copy / scale / add / triad).
//!
//! Paper classes: **MK-Seq** (STREAM-Seq: the four kernels once) and
//! **MK-Loop** (STREAM-Loop: the four kernels iterated) — Table II; origin
//! McCalpin's STREAM. The paper uses 62,914,560 elements (0.7 GB across
//! the three arrays) and evaluates both with and without inter-kernel
//! synchronisation (the synchronisation is added artificially "to mimic
//! applications that need synchronization").
//!
//! Calibration: all four kernels are pure bandwidth. GPU bandwidth
//! efficiency 0.65 (≈135 GB/s of the K20m's 208), CPU 0.40 (≈17 GB/s — an
//! OmpSs-tasked STREAM on the 2-channel Xeon). With PCIe at 6 GB/s this
//! lands the paper's headline numbers: transfers ≈ 90 % of the Only-GPU
//! execution and an SP-Unified split of ≈ 44 % GPU / 56 % CPU.
//!
//! Kernel chain (`κ` is the scalar):
//! `copy: c = a` → `scale: b = κ·c` → `add: c = a + b` → `triad: a = b + κ·c`.

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, BufferId, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// Array `a`.
pub const BUF_A: usize = 0;
/// Array `b`.
pub const BUF_B: usize = 1;
/// Array `c`.
pub const BUF_C: usize = 2;

/// The paper's element count.
pub const PAPER_N: u64 = 62_914_560;
/// Paper-scale loop count for STREAM-Loop.
pub const PAPER_ITERATIONS: u32 = 10;
/// The STREAM scalar.
pub const KAPPA: f32 = 3.0;

fn profile(bytes_per_item: f64, flops_per_item: f64) -> KernelProfile {
    KernelProfile {
        flops_per_item,
        bytes_per_item,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency {
            compute: 0.5,
            bandwidth: 0.40,
        },
        gpu_efficiency: Efficiency {
            compute: 0.5,
            bandwidth: 0.65,
        },
    }
}

/// Build a STREAM descriptor. `iterations = None` gives STREAM-Seq
/// (MK-Seq); `Some(k)` gives STREAM-Loop (MK-Loop). `sync` adds the
/// artificial inter-kernel synchronisation of the paper's "w sync" runs.
pub fn descriptor(n: u64, iterations: Option<u32>, sync: bool) -> AppDescriptor {
    let buffer = |name: &str| BufferSpec {
        name: name.into(),
        items: n,
        item_bytes: 4,
    };
    let kernels = vec![
        KernelSpec {
            name: "copy".into(),
            profile: profile(8.0, 0.0),
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_A, AccessMode::In),
                AccessPattern::part(BUF_C, AccessMode::Out),
            ],
            weights: None,
        },
        KernelSpec {
            name: "scale".into(),
            profile: profile(8.0, 1.0),
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_C, AccessMode::In),
                AccessPattern::part(BUF_B, AccessMode::Out),
            ],
            weights: None,
        },
        KernelSpec {
            name: "add".into(),
            profile: profile(12.0, 1.0),
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_A, AccessMode::In),
                AccessPattern::part(BUF_B, AccessMode::In),
                AccessPattern::part(BUF_C, AccessMode::Out),
            ],
            weights: None,
        },
        KernelSpec {
            name: "triad".into(),
            profile: profile(12.0, 2.0),
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_B, AccessMode::In),
                AccessPattern::part(BUF_C, AccessMode::In),
                AccessPattern::part(BUF_A, AccessMode::Out),
            ],
            weights: None,
        },
    ];
    let (name, flow) = match iterations {
        None => ("STREAM-Seq".to_string(), ExecutionFlow::Sequence),
        Some(k) => (
            "STREAM-Loop".to_string(),
            ExecutionFlow::Loop { iterations: k },
        ),
    };
    AppDescriptor {
        name: if sync {
            format!("{name}-w")
        } else {
            format!("{name}-w/o")
        },
        buffers: vec![buffer("a"), buffer("b"), buffer("c")],
        kernels,
        flow,
        sync: if sync {
            SyncPolicy {
                between_kernels: true,
                between_iterations: true,
            }
        } else {
            SyncPolicy::NONE
        },
    }
}

/// The paper's STREAM-Seq instance.
pub fn paper_seq(sync: bool) -> AppDescriptor {
    descriptor(PAPER_N, None, sync)
}

/// The paper's STREAM-Loop instance.
pub fn paper_loop(sync: bool) -> AppDescriptor {
    descriptor(PAPER_N, Some(PAPER_ITERATIONS), sync)
}

/// Host implementations of the four kernels (in descriptor order).
pub fn host_kernels() -> Vec<KernelFn<'static>> {
    let copy: KernelFn<'static> = Box::new(|hb: &HostBuffers, task| {
        let span = task.accesses[1].region.span;
        let a = hb.get(BufferId(BUF_A));
        let mut c = hb.get_mut(BufferId(BUF_C));
        for i in span.start as usize..span.end as usize {
            c[i] = a[i];
        }
    });
    let scale: KernelFn<'static> = Box::new(|hb: &HostBuffers, task| {
        let span = task.accesses[1].region.span;
        let c = hb.get(BufferId(BUF_C));
        let mut b = hb.get_mut(BufferId(BUF_B));
        for i in span.start as usize..span.end as usize {
            b[i] = KAPPA * c[i];
        }
    });
    let add: KernelFn<'static> = Box::new(|hb: &HostBuffers, task| {
        let span = task.accesses[2].region.span;
        let a = hb.get(BufferId(BUF_A));
        let b = hb.get(BufferId(BUF_B));
        let mut c = hb.get_mut(BufferId(BUF_C));
        for i in span.start as usize..span.end as usize {
            c[i] = a[i] + b[i];
        }
    });
    let triad: KernelFn<'static> = Box::new(|hb: &HostBuffers, task| {
        let span = task.accesses[2].region.span;
        let b = hb.get(BufferId(BUF_B));
        let c = hb.get(BufferId(BUF_C));
        let mut a = hb.get_mut(BufferId(BUF_A));
        for i in span.start as usize..span.end as usize {
            a[i] = b[i] + KAPPA * c[i];
        }
    });
    vec![copy, scale, add, triad]
}

/// Deterministic initial array contents.
pub fn init(hb: &HostBuffers, n: u64) {
    let mut a = hb.get_mut(BufferId(BUF_A));
    for (i, x) in a.iter_mut().enumerate().take(n as usize) {
        *x = 1.0 + (i % 100) as f32 * 0.01;
    }
}

/// Closed-form result of `iters` rounds of the four-kernel chain applied to
/// an initial value `a0` of element `a[i]`. Each round:
/// `c=a; b=κc; c=a+b; a=b+κc` ⟹ `a' = κ·a + κ(1+κ)·a = κ(2+κ)·a`.
pub fn expected_a(a0: f32, iters: u32) -> f32 {
    let factor = KAPPA * (2.0 + KAPPA);
    a0 * factor.powi(iters as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn classification_matches_table_ii() {
        assert_eq!(classify(&descriptor(1024, None, false)), AppClass::MkSeq);
        assert_eq!(
            classify(&descriptor(1024, Some(5), false)),
            AppClass::MkLoop
        );
    }

    #[test]
    fn paper_dataset_is_0_7_gb() {
        let d = paper_seq(false);
        let total: u64 = d.buffers.iter().map(|b| b.items * b.item_bytes).sum();
        assert!((total as f64 / 1e9 - 0.755).abs() < 0.02, "{total}");
    }

    #[test]
    fn chain_math() {
        // One round: a=1 -> c=1, b=3, c=1+3=4, a=3+3*4=15 = κ(2+κ)·1.
        assert_eq!(expected_a(1.0, 1), 15.0);
        assert_eq!(expected_a(1.0, 2), 225.0);
        assert_eq!(expected_a(2.0, 1), 30.0);
    }

    #[test]
    fn native_single_instance_matches_closed_form() {
        let n = 1000u64;
        let d = descriptor(n, Some(3), true);
        let platform = hetero_platform::Platform::icpp15();
        let planner = matchmaker::Planner::new(&platform);
        let plan = planner.plan(&d, matchmaker::ExecutionConfig::OnlyGpu);
        let hb = HostBuffers::for_program(&plan.program);
        init(&hb, n);
        let a0 = hb.snapshot(BufferId(BUF_A));
        hetero_runtime::run_native(
            &plan.program,
            &host_kernels(),
            &hb,
            hetero_runtime::ExecOrder::Submission,
        );
        let a3 = hb.snapshot(BufferId(BUF_A));
        for i in (0..n as usize).step_by(97) {
            let expect = expected_a(a0[i], 3);
            assert!(
                (a3[i] - expect).abs() / expect.abs() < 1e-5,
                "i={i}: {} vs {expect}",
                a3[i]
            );
        }
    }
}
