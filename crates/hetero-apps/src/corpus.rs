//! The 86-application kernel-structure corpus.
//!
//! The paper's classification is grounded in a survey of five benchmark
//! suites — SHOC, Rodinia, Parboil, the Nvidia SDK and Mont-Blanc — with
//! 86 applications in total (tech. report PDS-2015-001): "the study shows
//! that the five classes cover all 86 applications". The report itself is
//! not redistributable, so this module generates a *synthetic corpus* of 86
//! kernel-structure descriptors whose class distribution follows the
//! well-known composition of those suites (single-kernel SDK-style
//! microbenchmarks, iterated scientific kernels, multi-kernel pipelines,
//! and a tail of irregular DAG applications), and the coverage study is
//! reproduced over it: every descriptor classifies into one of the five
//! classes.

use crate::synth;
use matchmaker::{AppClass, AppDescriptor, ExecutionFlow};

/// Class composition of the synthetic corpus (sums to 86).
pub const COMPOSITION: [(AppClass, usize); 5] = [
    (AppClass::SkOne, 21),
    (AppClass::SkLoop, 15),
    (AppClass::MkSeq, 14),
    (AppClass::MkLoop, 22),
    (AppClass::MkDag, 14),
];

/// Generate the 86-descriptor corpus. Deterministic: descriptor `i` is
/// always the same structure.
pub fn corpus() -> Vec<AppDescriptor> {
    let mut out = Vec::with_capacity(86);
    let mut id = 0usize;
    for (class, count) in COMPOSITION {
        for k in 0..count {
            out.push(synthesize(class, id, k));
            id += 1;
        }
    }
    out
}

/// Build one synthetic application of the requested class. The structural
/// parameters (kernel count, iteration count, problem size, intensity) are
/// varied deterministically with `seed` so the corpus is heterogeneous.
fn synthesize(class: AppClass, id: usize, seed: usize) -> AppDescriptor {
    let n = 1 << (12 + seed % 6); // 4Ki..128Ki items
    let intensity = [4.0, 64.0, 1024.0, 16384.0][seed % 4];
    match class {
        AppClass::SkOne => synth::single_kernel(
            &format!("corpus-{id:02}-sk1"),
            n,
            intensity,
            ExecutionFlow::Sequence,
            false,
        ),
        AppClass::SkLoop => synth::single_kernel(
            &format!("corpus-{id:02}-skl"),
            n,
            intensity,
            ExecutionFlow::Loop {
                iterations: 2 + (seed % 7) as u32,
            },
            true,
        ),
        AppClass::MkSeq => synth::multi_kernel(
            &format!("corpus-{id:02}-mks"),
            n,
            2 + seed % 4,
            intensity,
            ExecutionFlow::Sequence,
            seed.is_multiple_of(2),
        ),
        AppClass::MkLoop => synth::multi_kernel(
            &format!("corpus-{id:02}-mkl"),
            n,
            2 + seed % 4,
            intensity,
            ExecutionFlow::Loop {
                iterations: 2 + (seed % 5) as u32,
            },
            seed.is_multiple_of(2),
        ),
        AppClass::MkDag => synth::dag(&format!("corpus-{id:02}-dag"), n, 3 + seed % 4, intensity),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::classify;

    #[test]
    fn corpus_has_86_applications() {
        assert_eq!(corpus().len(), 86);
        assert_eq!(COMPOSITION.iter().map(|(_, c)| c).sum::<usize>(), 86);
    }

    #[test]
    fn five_classes_cover_all_86_applications() {
        // The paper's §III-B coverage claim, reproduced.
        let mut counts = std::collections::BTreeMap::new();
        for desc in corpus() {
            desc.validate().expect("corpus descriptor invalid");
            let class = classify(&desc);
            *counts.entry(class.to_string()).or_insert(0usize) += 1;
        }
        let total: usize = counts.values().sum();
        assert_eq!(total, 86);
        // Every class is represented (Figure 3 lists apps in all five).
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn corpus_classes_match_intended_composition() {
        let descs = corpus();
        let mut idx = 0;
        for (class, count) in COMPOSITION {
            for _ in 0..count {
                assert_eq!(classify(&descs[idx]), class, "descriptor {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus();
        let b = corpus();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kernels.len(), y.kernels.len());
        }
    }
}
