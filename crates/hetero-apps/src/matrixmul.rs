//! MatrixMul — dense matrix-matrix multiplication (`A × B = C`).
//!
//! Paper class: **SK-One** (Table II; origin: Nvidia OpenCL SDK). The
//! paper's dataset is 6144×6144 single-precision (0.4 GB across the three
//! matrices) with row-wise partitioning: "each task instance receives
//! multiple consecutive rows of A and the full B, and performs the
//! computation for corresponding rows of C".
//!
//! Calibration (documented per DESIGN.md):
//! * compute-bound: `2·N` flops per element of `C`, i.e. `2·N²` per row;
//! * both implementations are the straightforward SDK/sequential kernels,
//!   far from peak: we use 5.5 % of peak on both devices, which yields the
//!   relative capability `R ≈ 9.2` (the SP peak ratio) and reproduces the
//!   paper's observations — SP-Single ≈ 90 % of rows to the GPU, Only-GPU
//!   ≫ Only-CPU, and an Only-CPU run in the tens of seconds;
//! * the GPU partition additionally uploads all of `B` (a fixed transfer
//!   cost independent of the partition size).

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// Buffer order in the descriptor.
pub const BUF_A: usize = 0;
/// Index of `B` (accessed whole by every instance).
pub const BUF_B: usize = 1;
/// Index of the output `C`.
pub const BUF_C: usize = 2;

/// The paper's matrix order.
pub const PAPER_N: u64 = 6144;

/// Build the MatrixMul descriptor for an `n×n` problem (domain = rows).
pub fn descriptor(n: u64) -> AppDescriptor {
    let row_bytes = 4 * n;
    AppDescriptor {
        name: "MatrixMul".into(),
        buffers: vec![
            BufferSpec {
                name: "A".into(),
                items: n,
                item_bytes: row_bytes,
            },
            BufferSpec {
                name: "B".into(),
                items: n,
                item_bytes: row_bytes,
            },
            BufferSpec {
                name: "C".into(),
                items: n,
                item_bytes: row_bytes,
            },
        ],
        kernels: vec![KernelSpec {
            name: "matrixmul".into(),
            profile: KernelProfile {
                // 2N flops per C element, N elements per row.
                flops_per_item: 2.0 * (n * n) as f64,
                // Streaming traffic per row: the A row once and the C row
                // once; B is blocked/cached.
                bytes_per_item: 8.0 * n as f64,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.055,
                    bandwidth: 0.5,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.055,
                    bandwidth: 0.5,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_A, AccessMode::In),
                AccessPattern::Full {
                    buffer: BUF_B,
                    mode: AccessMode::In,
                },
                AccessPattern::part(BUF_C, AccessMode::Out),
            ],
            weights: None,
        }],
        flow: ExecutionFlow::Sequence,
        sync: SyncPolicy::NONE,
    }
}

/// The paper's 6144×6144 instance.
pub fn paper_descriptor() -> AppDescriptor {
    descriptor(PAPER_N)
}

/// Host implementations for native validation. `n` must match the
/// descriptor the program was planned from.
pub fn host_kernels(n: u64) -> Vec<KernelFn<'static>> {
    let n = n as usize;
    let matmul: KernelFn<'static> = Box::new(move |hb: &HostBuffers, task| {
        // Output partition = the C access (third declared access).
        let span = task.accesses[2].region.span;
        let a = hb.get(hetero_runtime::BufferId(BUF_A));
        let b = hb.get(hetero_runtime::BufferId(BUF_B));
        let mut c = hb.get_mut(hetero_runtime::BufferId(BUF_C));
        for r in span.start as usize..span.end as usize {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[r * n + k] * b[k * n + j];
                }
                c[r * n + j] = acc;
            }
        }
    });
    vec![matmul]
}

/// Deterministic input data.
pub fn init(hb: &HostBuffers, n: u64) {
    let n = n as usize;
    let mut a = hb.get_mut(hetero_runtime::BufferId(BUF_A));
    let mut b = hb.get_mut(hetero_runtime::BufferId(BUF_B));
    for r in 0..n {
        for k in 0..n {
            a[r * n + k] = ((r * 7 + k * 3) % 13) as f32 * 0.25 - 1.0;
            b[r * n + k] = ((r * 5 + k * 11) % 17) as f32 * 0.125 - 1.0;
        }
    }
}

/// Reference `A × B`, computed with real row-parallelism (crossbeam): each
/// worker fills a disjoint row band of `C`.
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; n * n];
    if n == 0 {
        return c;
    }
    let band_rows = n.div_ceil(8);
    crate::par::par_chunks_mut(&mut c, n * band_rows, |band, chunk| {
        let r0 = band * band_rows;
        for (dr, row) in chunk.chunks_mut(n).enumerate() {
            let r = r0 + dr;
            for (j, out) in row.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[r * n + k] * b[k * n + j];
                }
                *out = acc;
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn classified_as_sk_one() {
        assert_eq!(classify(&descriptor(256)), AppClass::SkOne);
    }

    #[test]
    fn paper_dataset_size() {
        let d = paper_descriptor();
        // 3 matrices x 6144^2 x 4B = 0.42 GB, matching the paper's "0.4 GB".
        let total: u64 = d.buffers.iter().map(|b| b.items * b.item_bytes).sum();
        assert!((total as f64 / 1e9 - 0.45).abs() < 0.05, "{total}");
        assert!(d.validate().is_ok());
    }

    #[test]
    fn reference_matches_tiny_known_product() {
        // 2x2: [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]].
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let c = reference(&a, &b, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }
}
