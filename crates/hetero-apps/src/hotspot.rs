//! HotSpot — thermal simulation on a 2-D grid.
//!
//! Paper class: **SK-Loop** (Table II; origin: the Rodinia benchmark
//! suite). The paper uses an 8192×8192 grid (0.75 GB across the three
//! arrays) with row-wise partitioning and a global synchronisation per
//! iteration; it is the paper's CPU-favoured application: "HotSpot has
//! better performance on the CPU... the GPU performs worse mainly due to
//! the data transfer overhead".
//!
//! Calibration: the stencil is memory-bound on both devices (≈10 flops and
//! ≈16 B of traffic per cell). What sinks the GPU is not the kernel but the
//! per-iteration round trip: with synchronisation each iteration re-uploads
//! the temperature and power rows of the GPU partition and downloads its
//! output rows — at PCIe bandwidth that costs ≈20× the kernel time, so
//! SP-Single keeps most rows on the CPU.

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, BufferId, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// Temperature input (one item = one grid row).
pub const BUF_TEMP_IN: usize = 0;
/// Power density (one item = one grid row), read-only.
pub const BUF_POWER: usize = 1;
/// Temperature output.
pub const BUF_TEMP_OUT: usize = 2;

/// The paper's grid side.
pub const PAPER_N: u64 = 8192;
/// Paper-scale iteration count.
pub const PAPER_ITERATIONS: u32 = 4;

// Rodinia-style stencil coefficients.
const CAP: f32 = 0.5;
const RX: f32 = 1.0;
const RY: f32 = 1.0;
const RZ: f32 = 4.0;
const AMB: f32 = 80.0;

/// Build the HotSpot descriptor for an `n×n` grid (domain = rows).
pub fn descriptor(n: u64, iterations: u32) -> AppDescriptor {
    let row_bytes = 4 * n;
    let buffers = |name: &str| BufferSpec {
        name: name.into(),
        items: n,
        item_bytes: row_bytes,
    };
    AppDescriptor {
        name: "HotSpot".into(),
        buffers: vec![buffers("temp_in"), buffers("power"), buffers("temp_out")],
        kernels: vec![KernelSpec {
            name: "hotspot_step".into(),
            profile: KernelProfile {
                flops_per_item: 10.0 * n as f64,
                bytes_per_item: 16.0 * n as f64,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.30,
                    bandwidth: 0.75,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.30,
                    bandwidth: 0.70,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::Partitioned {
                    buffer: BUF_TEMP_IN,
                    mode: AccessMode::In,
                    halo: 1,
                },
                AccessPattern::part(BUF_POWER, AccessMode::In),
                AccessPattern::part(BUF_TEMP_OUT, AccessMode::Out),
            ],
            weights: None,
        }],
        flow: ExecutionFlow::Loop { iterations },
        sync: SyncPolicy {
            between_kernels: false,
            between_iterations: true,
        },
    }
}

/// The paper's 8192² instance.
pub fn paper_descriptor() -> AppDescriptor {
    descriptor(PAPER_N, PAPER_ITERATIONS)
}

/// Host implementation (one Jacobi-style stencil step per instance rows).
pub fn host_kernels(n: u64) -> Vec<KernelFn<'static>> {
    let n = n as usize;
    let step: KernelFn<'static> = Box::new(move |hb: &HostBuffers, task| {
        let span = task.accesses[2].region.span; // output rows
        let t = hb.get(BufferId(BUF_TEMP_IN));
        let p = hb.get(BufferId(BUF_POWER));
        let mut out = hb.get_mut(BufferId(BUF_TEMP_OUT));
        for r in span.start as usize..span.end as usize {
            for c in 0..n {
                let center = t[r * n + c];
                let north = if r > 0 { t[(r - 1) * n + c] } else { center };
                let south = if r + 1 < n {
                    t[(r + 1) * n + c]
                } else {
                    center
                };
                let west = if c > 0 { t[r * n + c - 1] } else { center };
                let east = if c + 1 < n { t[r * n + c + 1] } else { center };
                let delta = (CAP)
                    * (p[r * n + c]
                        + (north + south - 2.0 * center) / RY
                        + (east + west - 2.0 * center) / RX
                        + (AMB - center) / RZ);
                out[r * n + c] = center + delta;
            }
        }
    });
    vec![step]
}

/// Deterministic initial temperatures and power map.
pub fn init(hb: &HostBuffers, n: u64) {
    let n = n as usize;
    let mut t = hb.get_mut(BufferId(BUF_TEMP_IN));
    let mut p = hb.get_mut(BufferId(BUF_POWER));
    for r in 0..n {
        for c in 0..n {
            t[r * n + c] = 320.0 + ((r * 13 + c * 7) % 40) as f32 * 0.5;
            p[r * n + c] = ((r + c) % 10) as f32 * 0.01;
        }
    }
}

/// Parallel reference step over the full grid.
pub fn reference_step(t: &[f32], p: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    let band = n.div_ceil(8).max(1);
    crate::par::par_chunks_mut(&mut out, band * n, |b, chunk| {
        let r0 = b * band;
        for (dr, row) in chunk.chunks_mut(n).enumerate() {
            let r = r0 + dr;
            for (c, out_c) in row.iter_mut().enumerate() {
                let center = t[r * n + c];
                let north = if r > 0 { t[(r - 1) * n + c] } else { center };
                let south = if r + 1 < n {
                    t[(r + 1) * n + c]
                } else {
                    center
                };
                let west = if c > 0 { t[r * n + c - 1] } else { center };
                let east = if c + 1 < n { t[r * n + c + 1] } else { center };
                let delta = CAP
                    * (p[r * n + c]
                        + (north + south - 2.0 * center) / RY
                        + (east + west - 2.0 * center) / RX
                        + (AMB - center) / RZ);
                *out_c = center + delta;
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn classified_as_sk_loop() {
        assert_eq!(classify(&descriptor(256, 8)), AppClass::SkLoop);
    }

    #[test]
    fn paper_dataset_is_three_quarter_gb() {
        let d = paper_descriptor();
        let total: u64 = d.buffers.iter().map(|b| b.items * b.item_bytes).sum();
        assert!((total as f64 / 1e9 - 0.80).abs() < 0.06, "{total}");
    }

    #[test]
    fn stencil_pulls_towards_ambient_without_power() {
        let n = 16;
        let t = vec![400.0f32; n * n];
        let p = vec![0.0f32; n * n];
        let out = reference_step(&t, &p, n);
        // Uniform grid: only the ambient term acts; temperature drops.
        for &v in &out {
            assert!(v < 400.0 && v > AMB);
        }
    }

    #[test]
    fn hot_cell_diffuses_to_neighbours() {
        let n = 8;
        let mut t = vec![300.0f32; n * n];
        t[3 * n + 3] = 400.0;
        let p = vec![0.0f32; n * n];
        let out = reference_step(&t, &p, n);
        // Neighbours of the hot cell warm relative to far cells.
        assert!(out[3 * n + 4] > out[0]);
        assert!(out[4 * n + 3] > out[0]);
        // The hot cell itself cools.
        assert!(out[3 * n + 3] < 400.0);
    }
}
