#![warn(missing_docs)]

//! # hetero-apps
//!
//! The evaluation applications of the ICPP'15 *matchmaking* paper
//! (Table II), each provided as:
//!
//! * a **descriptor** (`matchmaker::AppDescriptor`) with the paper's
//!   problem size and a calibrated workload profile (the per-application
//!   calibration rationale is documented in each module and in DESIGN.md);
//! * real, computing **host kernels** for native validation — partitioned
//!   execution must produce the same results as an unpartitioned run;
//! * deterministic **input initialisation** and a parallel reference
//!   implementation where a closed form exists.
//!
//! | Application | Class | Module |
//! |---|---|---|
//! | MatrixMul | SK-One | [`matrixmul`] |
//! | BlackScholes | SK-One | [`blackscholes`] |
//! | Nbody | SK-Loop | [`nbody`] |
//! | HotSpot | SK-Loop | [`hotspot`] |
//! | STREAM-Seq | MK-Seq | [`stream`] |
//! | STREAM-Loop | MK-Loop | [`stream`] |
//!
//! [`corpus`] reproduces the 86-application coverage study and [`synth`]
//! generates synthetic applications (including MK-DAG fork-joins).

pub mod binomial;
pub mod blackscholes;
pub mod corpus;
pub mod fuzz;
pub mod hotspot;
pub mod matrixmul;
pub mod nbody;
pub mod par;
pub mod stream;
pub mod synth;
pub mod trisolve;

use hetero_runtime::{run_native, ExecOrder, HostBuffers, KernelFn};
use matchmaker::{AppDescriptor, ExecutionConfig, Planner};

/// Plan `config` for `desc`, execute it natively against `init`'d host
/// buffers with the given kernels, and return a snapshot of every buffer.
/// Used by tests to prove that different partitioning strategies compute
/// identical results.
pub fn native_outputs(
    desc: &AppDescriptor,
    kernels: &[KernelFn<'_>],
    init: impl Fn(&HostBuffers),
    planner: &Planner<'_>,
    config: ExecutionConfig,
    order: ExecOrder,
) -> Vec<Vec<f32>> {
    let plan = planner.plan(desc, config);
    let hb = HostBuffers::for_program(&plan.program);
    init(&hb);
    run_native(&plan.program, kernels, &hb, order);
    (0..desc.buffers.len())
        .map(|b| hb.snapshot(hetero_runtime::BufferId(b)))
        .collect()
}

/// The six paper applications (Table II), in table order, at paper scale.
pub fn paper_apps() -> Vec<AppDescriptor> {
    vec![
        matrixmul::paper_descriptor(),
        blackscholes::paper_descriptor(),
        nbody::paper_descriptor(),
        hotspot::paper_descriptor(),
        stream::paper_seq(false),
        stream::paper_loop(false),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn table_ii_classes() {
        let classes: Vec<AppClass> = paper_apps().iter().map(classify).collect();
        assert_eq!(
            classes,
            vec![
                AppClass::SkOne,
                AppClass::SkOne,
                AppClass::SkLoop,
                AppClass::SkLoop,
                AppClass::MkSeq,
                AppClass::MkLoop,
            ]
        );
    }

    #[test]
    fn all_paper_descriptors_validate() {
        for d in paper_apps() {
            d.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }
}
