//! Real data-parallel execution helpers for the host kernels.
//!
//! The native validation path of `hetero-runtime` runs task instances
//! sequentially (so it is trivially race-free); the *kernels themselves*
//! still deserve real parallelism — both to exercise actual HPC code paths
//! and to keep large native test sizes fast. `par_for_rows` splits an index
//! range over crossbeam scoped threads; each closure receives a disjoint
//! sub-range, so no synchronisation is needed.

/// Run `body(lo, hi)` over `threads` disjoint sub-ranges of `[start, end)`
/// in parallel. `body` must be safe to run concurrently on disjoint ranges
/// (the usual data-parallel contract).
pub fn par_for_range<F>(start: u64, end: u64, threads: usize, body: F)
where
    F: Fn(u64, u64) + Sync,
{
    let n = end.saturating_sub(start);
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n as usize);
    if threads == 1 {
        body(start, end);
        return;
    }
    let chunk = n.div_ceil(threads as u64);
    crossbeam::scope(|scope| {
        let body = &body;
        let mut lo = start;
        while lo < end {
            let hi = (lo + chunk).min(end);
            scope.spawn(move |_| body(lo, hi));
            lo = hi;
        }
    })
    .expect("worker panicked");
}

/// Split a mutable f32 slice into `parts` disjoint chunks of `width` items
/// each and apply `body(part_index, chunk)` in parallel. Useful when the
/// output regions are contiguous and disjoint.
pub fn par_chunks_mut<F>(data: &mut [f32], width: usize, body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(width > 0);
    crossbeam::scope(|scope| {
        let body = &body;
        for (i, chunk) in data.chunks_mut(width).enumerate() {
            scope.spawn(move |_| body(i, chunk));
        }
    })
    .expect("worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn par_for_range_covers_every_index_once() {
        let sum = AtomicU64::new(0);
        par_for_range(10, 1010, 7, |lo, hi| {
            let mut local = 0;
            for i in lo..hi {
                local += i;
            }
            sum.fetch_add(local, Ordering::Relaxed);
        });
        let expect: u64 = (10..1010).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn par_for_range_handles_empty_and_tiny() {
        par_for_range(5, 5, 4, |_, _| panic!("must not run"));
        let hits = AtomicU64::new(0);
        par_for_range(0, 2, 16, |lo, hi| {
            hits.fetch_add(hi - lo, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint() {
        let mut v = vec![0.0f32; 100];
        par_chunks_mut(&mut v, 7, |i, chunk| {
            for x in chunk {
                *x = i as f32;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 7) as f32);
        }
    }
}
