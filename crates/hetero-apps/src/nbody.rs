//! Nbody — gravitational body simulation over time steps.
//!
//! Paper class: **SK-Loop** (Table II; origin: the Mont-Blanc benchmark
//! suite, implemented in OmpSs by BSC). The paper simulates 1,048,576
//! bodies in 1-D arrays (64 MB) with a global synchronisation after each
//! iteration: "the computation output of one iteration is the input of the
//! next iteration... outputs from different processors are combined at the
//! host and updated to the input buffer before the next iteration".
//!
//! Faithfulness notes (DESIGN.md substitutions):
//! * Mont-Blanc's kernel is a *blocked* all-pairs force computation; we
//!   model the per-body interaction count as a parameter
//!   (`interactions_per_body`) instead of `n` so native validation stays
//!   tractable, and pick the paper-scale value so the GPU iteration time
//!   lands near the paper's Figure 7(a) magnitude.
//! * The host-side combine between iterations is represented by the
//!   per-iteration taskwait (flush + invalidate), which produces exactly
//!   the re-upload-per-iteration transfer pattern the paper describes.
//!
//! Calibration: ~20 flops per interaction; GPU compute efficiency 0.42
//! (≈1480 GF), CPU 0.185 (≈71 GF — a vectorised but unblocked task body). This sets
//! the relative capability `R ≈ 21`, so SP-Single sends ~95 % of bodies to
//! the GPU and the best strategy beats Only-CPU by the ≈22× the paper's
//! Figure 12 calls out.

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, BufferId, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// Input positions+mass (4 floats per body), read whole by every instance.
pub const BUF_POS_IN: usize = 0;
/// Output positions (4 floats per body).
pub const BUF_POS_OUT: usize = 1;
/// Velocities (4 floats per body), in-out.
pub const BUF_VEL: usize = 2;

/// The paper's body count.
pub const PAPER_N: u64 = 1_048_576;
/// Paper-scale interaction tile (see module docs).
pub const PAPER_INTERACTIONS: u64 = 25_000;
/// Paper-scale iteration count (chosen to land Only-GPU ≈ 2 s).
pub const PAPER_ITERATIONS: u32 = 6;

const FLOPS_PER_INTERACTION: f64 = 20.0;
const DT: f32 = 0.01;
const SOFTENING: f32 = 1e-3;

/// Build the Nbody descriptor.
pub fn descriptor(n: u64, interactions_per_body: u64, iterations: u32) -> AppDescriptor {
    AppDescriptor {
        name: "Nbody".into(),
        buffers: vec![
            BufferSpec {
                name: "pos_in".into(),
                items: n,
                item_bytes: 16,
            },
            BufferSpec {
                name: "pos_out".into(),
                items: n,
                item_bytes: 16,
            },
            BufferSpec {
                name: "vel".into(),
                items: n,
                item_bytes: 16,
            },
        ],
        kernels: vec![KernelSpec {
            name: "nbody_step".into(),
            profile: KernelProfile {
                flops_per_item: FLOPS_PER_INTERACTION * interactions_per_body as f64,
                // Streams the interaction tile per body plus its own state.
                bytes_per_item: 16.0 * (interactions_per_body.min(64)) as f64,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.185,
                    bandwidth: 0.6,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.42,
                    bandwidth: 0.8,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::Full {
                    buffer: BUF_POS_IN,
                    mode: AccessMode::In,
                },
                AccessPattern::part(BUF_POS_OUT, AccessMode::Out),
                AccessPattern::part(BUF_VEL, AccessMode::InOut),
            ],
            weights: None,
        }],
        flow: ExecutionFlow::Loop { iterations },
        sync: SyncPolicy {
            between_kernels: false,
            between_iterations: true,
        },
    }
}

/// The paper's instance.
pub fn paper_descriptor() -> AppDescriptor {
    descriptor(PAPER_N, PAPER_INTERACTIONS, PAPER_ITERATIONS)
}

/// Host implementation: each body interacts with `interactions` bodies
/// sampled at a fixed stride (deterministic, matching the workload model).
pub fn host_kernels(n: u64, interactions: u64) -> Vec<KernelFn<'static>> {
    let n = n as usize;
    let interactions = interactions.max(1) as usize;
    let stride = (n / interactions).max(1);
    let step: KernelFn<'static> = Box::new(move |hb: &HostBuffers, task| {
        let span = task.accesses[1].region.span;
        let pos = hb.get(BufferId(BUF_POS_IN));
        let mut pos_out = hb.get_mut(BufferId(BUF_POS_OUT));
        let mut vel = hb.get_mut(BufferId(BUF_VEL));
        for i in span.start as usize..span.end as usize {
            let (xi, yi, zi) = (pos[i * 4], pos[i * 4 + 1], pos[i * 4 + 2]);
            let (mut ax, mut ay, mut az) = (0.0f32, 0.0f32, 0.0f32);
            let mut j = i % stride; // deterministic sample, varies per body
            while j < n {
                let dx = pos[j * 4] - xi;
                let dy = pos[j * 4 + 1] - yi;
                let dz = pos[j * 4 + 2] - zi;
                let m = pos[j * 4 + 3];
                let dist2 = dx * dx + dy * dy + dz * dz + SOFTENING;
                let inv = 1.0 / dist2.sqrt();
                let f = m * inv * inv * inv;
                ax += f * dx;
                ay += f * dy;
                az += f * dz;
                j += stride;
            }
            vel[i * 4] += DT * ax;
            vel[i * 4 + 1] += DT * ay;
            vel[i * 4 + 2] += DT * az;
            pos_out[i * 4] = xi + DT * vel[i * 4];
            pos_out[i * 4 + 1] = yi + DT * vel[i * 4 + 1];
            pos_out[i * 4 + 2] = zi + DT * vel[i * 4 + 2];
            pos_out[i * 4 + 3] = pos[i * 4 + 3];
        }
    });
    vec![step]
}

/// Deterministic initial conditions.
pub fn init(hb: &HostBuffers, n: u64) {
    let mut pos = hb.get_mut(BufferId(BUF_POS_IN));
    for i in 0..n as usize {
        pos[i * 4] = ((i * 97) % 1000) as f32 * 0.01 - 5.0;
        pos[i * 4 + 1] = ((i * 31) % 1000) as f32 * 0.01 - 5.0;
        pos[i * 4 + 2] = ((i * 53) % 1000) as f32 * 0.01 - 5.0;
        pos[i * 4 + 3] = 1.0 + (i % 5) as f32 * 0.5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn classified_as_sk_loop() {
        assert_eq!(classify(&descriptor(512, 64, 4)), AppClass::SkLoop);
    }

    #[test]
    fn paper_dataset_is_64mb_per_array_set() {
        let d = paper_descriptor();
        let pos_mb = (d.buffers[0].items * d.buffers[0].item_bytes) as f64 / 1e6;
        assert!((pos_mb - 16.8).abs() < 0.2, "{pos_mb}");
        assert!(d.validate().is_ok());
    }

    #[test]
    fn kernel_conserves_mass_and_moves_bodies() {
        let n = 128u64;
        let d = descriptor(n, 16, 1);
        // Single whole-domain instance.
        let platform = hetero_platform::Platform::icpp15();
        let planner = matchmaker::Planner::new(&platform);
        let plan = planner.plan(&d, matchmaker::ExecutionConfig::OnlyGpu);
        let hb = HostBuffers::for_program(&plan.program);
        init(&hb, n);
        let before = hb.snapshot(BufferId(BUF_POS_IN));
        hetero_runtime::run_native(
            &plan.program,
            &host_kernels(n, 16),
            &hb,
            hetero_runtime::ExecOrder::Submission,
        );
        let after = hb.snapshot(BufferId(BUF_POS_OUT));
        let mass_before: f32 = before.chunks(4).map(|b| b[3]).sum();
        let mass_after: f32 = after.chunks(4).map(|b| b[3]).sum();
        assert!((mass_before - mass_after).abs() < 1e-3);
        // At least some bodies moved.
        let moved = before
            .chunks(4)
            .zip(after.chunks(4))
            .filter(|(b, a)| (b[0] - a[0]).abs() > 0.0)
            .count();
        assert!(moved > 0);
    }
}
