//! BinomialPricing — American option pricing on CRR binomial lattices with
//! *per-option* tree depths: a compute-bound **imbalanced** workload.
//!
//! Option `i` uses a lattice of `depth(i)` steps (longer-dated contracts
//! get deeper trees), so its cost grows as `depth²` while its data
//! footprint stays a constant 20 B in / 4 B out. This is the regime where
//! Glinda's imbalanced split (ICS'14, the paper's reference [9]) clearly
//! beats splitting by option count: the prefix of shallow trees is cheap,
//! and a count-based split starves one side.

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, BufferId, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// Option parameters (5 floats: S, K, T, r, v).
pub const BUF_IN: usize = 0;
/// Prices (1 float per option).
pub const BUF_OUT: usize = 1;

/// Flops per lattice node (up/down discounting + early-exercise max).
const FLOPS_PER_NODE: f64 = 6.0;

/// Lattice depth for option `i` of `n`: shallow for the early (short-dated)
/// options, deep for the late ones — 32..=32+spread steps, deterministic.
pub fn depth(i: u64, n: u64, spread: u64) -> u64 {
    32 + (i * spread) / n.max(1)
}

/// Per-option work weights (`depth²` lattice nodes, up to a constant).
pub fn weights(n: u64, spread: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let d = depth(i, n, spread) as f32;
            d * d
        })
        .collect()
}

/// Build the descriptor. `spread` controls the imbalance (max extra steps
/// of the deepest tree over the shallowest 32).
pub fn descriptor(n: u64, spread: u64) -> AppDescriptor {
    let w = weights(n, spread);
    let mean_nodes = w.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
    AppDescriptor {
        name: "BinomialPricing".into(),
        buffers: vec![
            BufferSpec {
                name: "options".into(),
                items: n,
                item_bytes: 20,
            },
            BufferSpec {
                name: "prices".into(),
                items: n,
                item_bytes: 4,
            },
        ],
        kernels: vec![KernelSpec {
            name: "binomial".into(),
            profile: KernelProfile {
                // The *average* option's lattice cost.
                flops_per_item: FLOPS_PER_NODE * mean_nodes,
                bytes_per_item: 24.0,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.20,
                    bandwidth: 0.5,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.30,
                    bandwidth: 0.8,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_IN, AccessMode::In),
                AccessPattern::part(BUF_OUT, AccessMode::Out),
            ],
            weights: Some(w),
        }],
        flow: ExecutionFlow::Sequence,
        sync: SyncPolicy::NONE,
    }
}

/// The same application with weights omitted (count-based partitioning).
pub fn descriptor_unweighted(n: u64, spread: u64) -> AppDescriptor {
    let mut d = descriptor(n, spread);
    d.kernels[0].weights = None;
    d
}

/// Price one American put on a CRR lattice of `steps` steps.
pub fn price_put(s: f32, k: f32, t: f32, r: f32, v: f32, steps: usize) -> f32 {
    let dt = t / steps as f32;
    let up = (v * dt.sqrt()).exp();
    let down = 1.0 / up;
    let disc = (-r * dt).exp();
    let p = ((r * dt).exp() - down) / (up - down);
    let q = 1.0 - p;
    // Terminal payoffs.
    let mut values: Vec<f32> = (0..=steps)
        .map(|j| {
            let st = s * up.powi(j as i32) * down.powi((steps - j) as i32);
            (k - st).max(0.0)
        })
        .collect();
    // Backward induction with early exercise.
    for step in (0..steps).rev() {
        for j in 0..=step {
            let st = s * up.powi(j as i32) * down.powi((step - j) as i32);
            let cont = disc * (q * values[j] + p * values[j + 1]);
            values[j] = cont.max(k - st);
        }
    }
    values[0]
}

/// Host implementation for native validation. `n`/`spread` must match the
/// descriptor.
pub fn host_kernels(n: u64, spread: u64) -> Vec<KernelFn<'static>> {
    let kernel: KernelFn<'static> = Box::new(move |hb: &HostBuffers, task| {
        let span = task.accesses[1].region.span;
        let input = hb.get(BufferId(BUF_IN));
        let mut out = hb.get_mut(BufferId(BUF_OUT));
        for i in span.start..span.end {
            let ix = i as usize;
            let steps = depth(i, n, spread) as usize;
            out[ix] = price_put(
                input[ix * 5],
                input[ix * 5 + 1],
                input[ix * 5 + 2],
                input[ix * 5 + 3],
                input[ix * 5 + 4],
                steps,
            );
        }
    });
    vec![kernel]
}

/// Deterministic option book (maturities grow with the index, matching the
/// depth schedule).
pub fn init(hb: &HostBuffers, n: u64) {
    let mut input = hb.get_mut(BufferId(BUF_IN));
    for i in 0..n as usize {
        input[i * 5] = 80.0 + (i % 40) as f32;
        input[i * 5 + 1] = 100.0;
        input[i * 5 + 2] = 0.25 + 2.0 * i as f32 / n as f32;
        input[i * 5 + 3] = 0.03;
        input[i * 5 + 4] = 0.35;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass, KernelSplit, Planner};

    #[test]
    fn classified_and_valid() {
        let d = descriptor(4096, 480);
        assert_eq!(classify(&d), AppClass::SkOne);
        d.validate().unwrap();
    }

    #[test]
    fn american_put_dominates_european_intrinsic_bounds() {
        // Basic no-arbitrage sanity: price >= intrinsic, price >= 0,
        // deeper trees converge (successive refinements get close).
        let (s, k, t, r, v) = (90.0, 100.0, 1.0, 0.05, 0.3);
        let p64 = price_put(s, k, t, r, v, 64);
        let p128 = price_put(s, k, t, r, v, 128);
        let p256 = price_put(s, k, t, r, v, 256);
        assert!(p64 >= (k - s) - 1e-3);
        assert!((p128 - p256).abs() < (p64 - p256).abs() + 1e-4);
        assert!(p256 > 0.0 && p256 < k);
    }

    #[test]
    fn deep_in_the_money_put_is_exercised_immediately() {
        let p = price_put(10.0, 100.0, 1.0, 0.05, 0.3, 128);
        assert!((p - 90.0).abs() < 0.5, "{p}");
    }

    #[test]
    fn weighted_split_beats_count_split_in_the_device_model() {
        let platform = hetero_platform::Platform::icpp15();
        let planner = Planner::new(&platform);
        let n = 1 << 16;
        let spread = 960;
        let evaluate = |split: &KernelSplit| -> f64 {
            let ng = split.gpu_items(n);
            let desc = descriptor(n, spread);
            let profile = &desc.kernels[0].profile;
            let w = weights(n, spread);
            let total: f64 = w.iter().map(|&x| x as f64).sum();
            let mean = total / n as f64;
            let gpu_work: f64 = w[..ng as usize].iter().map(|&x| x as f64).sum::<f64>() / mean;
            let cpu_work: f64 = w[ng as usize..].iter().map(|&x| x as f64).sum::<f64>() / mean;
            let t_gpu = platform
                .gpu()
                .unwrap()
                .exec_time_whole_device_weighted(profile, ng, gpu_work / ng.max(1) as f64)
                .as_secs_f64();
            let t_cpu = platform
                .cpu()
                .exec_time_whole_device_weighted(profile, n - ng, cpu_work / (n - ng).max(1) as f64)
                .as_secs_f64();
            t_gpu.max(t_cpu)
        };
        let weighted = planner.decide_kernel(&descriptor(n, spread), 0);
        let uniform = planner.decide_kernel(&descriptor_unweighted(n, spread), 0);
        let tw = evaluate(&weighted);
        let tu = evaluate(&uniform);
        assert!(
            tw < tu * 0.92,
            "weighted {tw:.4}s should beat count-based {tu:.4}s by >8%"
        );
    }

    #[test]
    fn simulated_execution_confirms_the_weighted_win() {
        // Same comparison through the full simulator: plan both splits,
        // run both against the TRUE weighted program.
        let platform = hetero_platform::Platform::icpp15();
        let planner = Planner::new(&platform);
        let n = 1 << 16;
        let spread = 960;
        let run_with_split = |ng: u64| {
            // Emit a weighted program manually with the given GPU share.
            let desc = descriptor(n, spread);
            let plan_src = planner.plan(&desc, matchmaker::ExecutionConfig::OnlyCpu);
            let _ = plan_src;
            let mut b = hetero_runtime::Program::builder();
            let bin = b.buffer("options", n, 20);
            let bout = b.buffer("prices", n, 4);
            let k = b.kernel("binomial", desc.kernels[0].profile);
            let w = weights(n, spread);
            let total: f64 = w.iter().map(|&x| x as f64).sum();
            let mean = total / n as f64;
            let mut emit = |s: u64, e: u64, dev: hetero_platform::DeviceId| {
                let work: f64 = w[s as usize..e as usize].iter().map(|&x| x as f64).sum();
                b.submit(hetero_runtime::TaskDesc {
                    kernel: k,
                    items: e - s,
                    accesses: vec![
                        hetero_runtime::Access::read(hetero_runtime::Region::new(bin, s, e)),
                        hetero_runtime::Access::write(hetero_runtime::Region::new(bout, s, e)),
                    ],
                    pinned: Some(dev),
                    cost_scale: work / ((e - s) as f64 * mean),
                });
            };
            if ng > 0 {
                emit(0, ng, hetero_platform::DeviceId(1));
            }
            // CPU side in 24 chunks.
            for (s, e) in hetero_runtime::split_even(n - ng, 24) {
                emit(ng + s, ng + e, hetero_platform::DeviceId(0));
            }
            let program = b.build();
            hetero_runtime::simulate(&program, &platform, &mut hetero_runtime::PinnedScheduler)
                .makespan
        };
        let weighted_ng = planner
            .decide_kernel(&descriptor(n, spread), 0)
            .gpu_items(n);
        let uniform_ng = planner
            .decide_kernel(&descriptor_unweighted(n, spread), 0)
            .gpu_items(n);
        let tw = run_with_split(weighted_ng);
        let tu = run_with_split(uniform_ng);
        assert!(
            tw.as_secs_f64() < tu.as_secs_f64() * 0.95,
            "weighted {tw} vs count-based {tu}"
        );
    }
}
