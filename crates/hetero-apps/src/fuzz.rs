//! Seeded random instantiation of the [`synth`](crate::synth) generators —
//! the application half of the scenario fuzzing harness (DESIGN.md §8.5).
//!
//! `matchmaker::fuzz` grows *structurally* random DAGs from scratch; this
//! module instead draws from the same synthetic shapes the coverage corpus
//! uses (SK-One, SK-Loop, MK-Seq, MK-Loop, MK-DAG), with randomized sizes
//! and intensities. Both feed the same oracle bank: the structural
//! generator explores wiring the corpus never exhibits, while this one
//! keeps the fuzzer anchored to the paper's application classes.

use hetero_platform::fuzz::{chance, pick, range_f64};
use hetero_platform::FaultRng;
use matchmaker::{AppDescriptor, ExecutionFlow};

use crate::synth;

/// Draw a random corpus-shaped application: one of the five paper classes,
/// with domain size (1–64 Ki items), arithmetic intensity (4–2000
/// flops/item), kernel count (2–5 for MK shapes) and loop depth (2–6)
/// sampled from `rng`. Deterministic in the RNG stream: the same draw
/// sequence reproduces the same descriptor.
pub fn gen_corpus_app(rng: &mut FaultRng) -> AppDescriptor {
    let n = 1u64 << (10 + pick(rng, 7)); // 1 Ki .. 64 Ki items
    let flops = range_f64(rng, 4.0, 2000.0);
    match pick(rng, 5) {
        0 => synth::single_kernel("fuzz-sk-one", n, flops, ExecutionFlow::Sequence, false),
        1 => {
            let iters = 2 + pick(rng, 5) as u32;
            synth::single_kernel(
                "fuzz-sk-loop",
                n,
                flops,
                ExecutionFlow::Loop { iterations: iters },
                chance(rng, 0.5),
            )
        }
        2 => {
            let k = 2 + pick(rng, 4);
            synth::multi_kernel(
                "fuzz-mk-seq",
                n,
                k,
                flops,
                ExecutionFlow::Sequence,
                chance(rng, 0.5),
            )
        }
        3 => {
            let k = 2 + pick(rng, 4);
            let iters = 2 + pick(rng, 5) as u32;
            synth::multi_kernel(
                "fuzz-mk-loop",
                n,
                k,
                flops,
                ExecutionFlow::Loop { iterations: iters },
                chance(rng, 0.5),
            )
        }
        _ => {
            let k = 3 + pick(rng, 3);
            synth::dag("fuzz-mk-dag", n, k, flops)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::classify;

    #[test]
    fn corpus_apps_are_seed_deterministic_and_valid() {
        for seed in 0..100u64 {
            let a = gen_corpus_app(&mut FaultRng::new(seed));
            let b = gen_corpus_app(&mut FaultRng::new(seed));
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap()
            );
            assert_eq!(a.validate(), Ok(()));
            let _ = classify(&a); // classification must not panic
        }
    }

    #[test]
    fn all_five_classes_are_reachable() {
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..200u64 {
            let a = gen_corpus_app(&mut FaultRng::new(seed));
            seen.insert(format!("{}", classify(&a)));
        }
        assert!(seen.len() >= 5, "only reached classes: {seen:?}");
    }
}
