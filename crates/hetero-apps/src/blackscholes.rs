//! BlackScholes — European option pricing.
//!
//! Paper class: **SK-One** (Table II; origin: Nvidia OpenCL SDK). The paper
//! evaluates 80,530,632 options (1.5 GB of inputs), partitioned over a 1-D
//! array: "each task instance receives a number of neighboring options".
//!
//! This is the paper's transfer-dominated showcase: "the data transfer
//! takes 37.5× more time than the kernel computation on the GPU, and
//! SP-Single calculates a 41%/59% assignment to the CPU/GPU".
//!
//! Calibration: ~150 flops of transcendental-heavy math per option;
//! 20 B in + 8 B out per option crossing PCIe. GPU compute efficiency 0.34
//! (≈1200 GF — the SDK kernel), CPU compute efficiency 0.057 (≈22 GF —
//! scalar `exp`/`log` dominated). These land the kernel-vs-transfer ratio
//! at ≈35× and the optimal split at ≈59 % GPU, matching the paper's text.

use hetero_platform::{Efficiency, KernelProfile, Precision};
use hetero_runtime::{AccessMode, BufferId, HostBuffers, KernelFn};
use matchmaker::{AccessPattern, AppDescriptor, BufferSpec, ExecutionFlow, KernelSpec, SyncPolicy};

/// Input buffer index (5 floats per option: S, K, T, r, v).
pub const BUF_IN: usize = 0;
/// Output buffer index (2 floats per option: call, put).
pub const BUF_OUT: usize = 1;

/// The paper's option count.
pub const PAPER_N: u64 = 80_530_632;

/// Risk-free rate / volatility defaults used when inputs carry zeros.
const FLOPS_PER_OPTION: f64 = 150.0;

/// Build the BlackScholes descriptor for `n` options.
pub fn descriptor(n: u64) -> AppDescriptor {
    AppDescriptor {
        name: "BlackScholes".into(),
        buffers: vec![
            BufferSpec {
                name: "options".into(),
                items: n,
                item_bytes: 20,
            },
            BufferSpec {
                name: "prices".into(),
                items: n,
                item_bytes: 8,
            },
        ],
        kernels: vec![KernelSpec {
            name: "blackscholes".into(),
            profile: KernelProfile {
                flops_per_item: FLOPS_PER_OPTION,
                bytes_per_item: 28.0,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.057,
                    bandwidth: 0.5,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.34,
                    bandwidth: 1.0,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::part(BUF_IN, AccessMode::In),
                AccessPattern::part(BUF_OUT, AccessMode::Out),
            ],
            weights: None,
        }],
        flow: ExecutionFlow::Sequence,
        sync: SyncPolicy::NONE,
    }
}

/// The paper's 80.5M-option instance.
pub fn paper_descriptor() -> AppDescriptor {
    descriptor(PAPER_N)
}

/// Cumulative normal distribution (Abramowitz–Stegun polynomial, as in the
/// SDK kernel).
#[inline]
pub fn cnd(d: f32) -> f32 {
    const A1: f32 = 0.319_381_53;
    const A2: f32 = -0.356_563_78;
    const A3: f32 = 1.781_477_9;
    const A4: f32 = -1.821_255_9;
    const A5: f32 = 1.330_274_5;
    const RSQRT2PI: f32 = 0.398_942_3;
    let k = 1.0 / (1.0 + 0.231_641_9 * d.abs());
    let poly = k * (A1 + k * (A2 + k * (A3 + k * (A4 + k * A5))));
    let c = RSQRT2PI * (-0.5 * d * d).exp() * poly;
    if d > 0.0 {
        1.0 - c
    } else {
        c
    }
}

/// Price one option; returns `(call, put)`.
#[inline]
pub fn price(s: f32, k: f32, t: f32, r: f32, v: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let exp_rt = (-r * t).exp();
    let call = s * cnd(d1) - k * exp_rt * cnd(d2);
    let put = k * exp_rt * cnd(-d2) - s * cnd(-d1);
    (call, put)
}

/// Host implementation for native validation.
pub fn host_kernels() -> Vec<KernelFn<'static>> {
    let kernel: KernelFn<'static> = Box::new(|hb: &HostBuffers, task| {
        let span = task.accesses[1].region.span;
        let input = hb.get(BufferId(BUF_IN));
        let mut output = hb.get_mut(BufferId(BUF_OUT));
        for i in span.start as usize..span.end as usize {
            let s = input[i * 5];
            let k = input[i * 5 + 1];
            let t = input[i * 5 + 2];
            let r = input[i * 5 + 3];
            let v = input[i * 5 + 4];
            let (call, put) = price(s, k, t, r, v);
            output[i * 2] = call;
            output[i * 2 + 1] = put;
        }
    });
    vec![kernel]
}

/// Deterministic input options.
pub fn init(hb: &HostBuffers, n: u64) {
    let mut input = hb.get_mut(BufferId(BUF_IN));
    for i in 0..n as usize {
        input[i * 5] = 10.0 + (i % 90) as f32; // spot
        input[i * 5 + 1] = 10.0 + ((i * 7) % 90) as f32; // strike
        input[i * 5 + 2] = 0.25 + ((i * 3) % 8) as f32 * 0.25; // expiry
        input[i * 5 + 3] = 0.02; // rate
        input[i * 5 + 4] = 0.30; // volatility
    }
}

/// Parallel reference pricing of the full option array.
pub fn reference(input: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * 2];
    let band = n.div_ceil(8).max(1);
    crate::par::par_chunks_mut(&mut out, band * 2, |b, chunk| {
        let i0 = b * band;
        for (d, pair) in chunk.chunks_mut(2).enumerate() {
            let i = i0 + d;
            let (call, put) = price(
                input[i * 5],
                input[i * 5 + 1],
                input[i * 5 + 2],
                input[i * 5 + 3],
                input[i * 5 + 4],
            );
            pair[0] = call;
            pair[1] = put;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchmaker::{classify, AppClass};

    #[test]
    fn classified_as_sk_one() {
        assert_eq!(classify(&descriptor(1000)), AppClass::SkOne);
    }

    #[test]
    fn paper_dataset_is_one_and_a_half_gb() {
        let d = paper_descriptor();
        let input_gb = (d.buffers[0].items * d.buffers[0].item_bytes) as f64 / 1e9;
        assert!((input_gb - 1.61).abs() < 0.05, "{input_gb}");
    }

    #[test]
    fn put_call_parity_holds() {
        // call - put = S - K·e^{-rT}
        for (s, k, t) in [(100.0, 100.0, 1.0), (120.0, 90.0, 0.5), (80.0, 110.0, 2.0)] {
            let (r, v) = (0.05f32, 0.3f32);
            let (call, put) = price(s, k, t, r, v);
            let parity = s - k * (-r * t).exp();
            assert!(
                (call - put - parity).abs() < 1e-3,
                "s={s} k={k} t={t}: {} vs {}",
                call - put,
                parity
            );
        }
    }

    #[test]
    fn deep_in_the_money_call_approaches_intrinsic() {
        let (call, _) = price(1000.0, 10.0, 0.5, 0.02, 0.3);
        let intrinsic = 1000.0 - 10.0 * (-0.02f32 * 0.5).exp();
        assert!((call - intrinsic).abs() / intrinsic < 1e-3);
    }

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-6);
        assert!(cnd(6.0) > 0.999);
        assert!(cnd(-6.0) < 0.001);
        let mut last = 0.0;
        for i in -40..=40 {
            let v = cnd(i as f32 * 0.1);
            assert!(v >= last - 1e-6);
            last = v;
        }
    }

    #[test]
    fn reference_matches_kernel_math() {
        let n = 64;
        let d = descriptor(n as u64);
        let program = {
            // minimal single-instance program via planner is overkill here;
            // compute both paths directly.
            d
        };
        let _ = program;
        let mut input = vec![0.0f32; n * 5];
        for i in 0..n {
            input[i * 5] = 50.0 + i as f32;
            input[i * 5 + 1] = 55.0;
            input[i * 5 + 2] = 1.0;
            input[i * 5 + 3] = 0.02;
            input[i * 5 + 4] = 0.25;
        }
        let out = reference(&input, n);
        for i in 0..n {
            let (c, p) = price(
                input[i * 5],
                input[i * 5 + 1],
                input[i * 5 + 2],
                input[i * 5 + 3],
                input[i * 5 + 4],
            );
            assert_eq!(out[i * 2], c);
            assert_eq!(out[i * 2 + 1], p);
        }
    }
}
