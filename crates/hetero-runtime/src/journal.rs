//! Crash-consistent execution: the append-only write-ahead run journal.
//!
//! The in-process resilience stack (retries, rollback, quarantine,
//! survivor re-planning) assumes the *coordinating process* survives; all
//! of its checkpoints live in memory. This module makes coordinator death
//! a first-class, injectable, recoverable fault:
//!
//! * [`JournalSink`] — threaded through the executor, it appends one
//!   [`EpochRecord`] per *committed* epoch checkpoint (the epoch-flush
//!   event, which fires only after SDC verification passed and any
//!   rollback re-ran the epoch), under a versioned [`JournalHeader`]
//!   carrying everything needed to re-create the run.
//! * [`hetero_platform::KillSchedule`] — deterministic kill-point
//!   injection: the run aborts with [`JournalError::Killed`] after the
//!   k-th journal record or at simulated time *t*, optionally tearing the
//!   interrupted write.
//! * [`RunJournal::load`] — typed validation of a journal file: per-line
//!   integrity envelopes, version and header checks, sequential epoch
//!   indices; a torn *final* line is tolerated and discarded, corruption
//!   anywhere else is rejected.
//!
//! Recovery is **validated deterministic redo-replay**: the executor is
//! fully deterministic, so resume re-executes the program from `t = 0`
//! with a [`JournalSink`] in resume mode that *byte-compares* each
//! regenerated epoch record against the stored one (divergence is a typed
//! [`JournalError::DivergentReplay`]) before continuing to append past the
//! crash point. Byte-identity of the final report/trace/metrics follows
//! from determinism; the journal's records — RNG stream cursors included —
//! are what make that determinism *checked* instead of assumed, record by
//! record. This is the crash-resume-equivalence oracle's substrate.
//!
//! ## Line format
//!
//! JSON-lines. Every line is an integrity envelope
//!
//! ```text
//! {"h":"<16 hex digits>","body":<record JSON>}
//! ```
//!
//! where `h` is FNV-1a 64 over the *exact bytes* of `<record JSON>`. Both
//! hashing and validation operate on the raw body substring — never on a
//! parse → re-serialize round trip — so integrity is byte-exact and
//! independent of float formatting. Line 1 carries the [`JournalHeader`];
//! every further line one [`EpochRecord`].

use std::collections::BTreeMap;

use hetero_platform::{
    fnv1a_64, validate_version, FaultCounters, KillSchedule, PlatformCounters, SimTime,
};
use serde::{Deserialize, Serialize};

use crate::executor::{ADAPT_STREAM, CORRELATED_STREAM, HEALTH_STREAM, REPLAN_STREAM};
use crate::obs::DeviceBreakdown;

/// The journal format version this build writes and reads.
pub const JOURNAL_VERSION: u32 = 1;

/// The dedicated RNG stream constants in force when the journal was
/// written. Recorded so a resume on a build with different constants (a
/// pinned-stream change is an explicit compatibility break, see
/// `PROPERTY-TESTS.md`) fails with a typed header mismatch instead of a
/// divergent replay deep into the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamConstants {
    /// [`HEALTH_STREAM`].
    pub health: u64,
    /// [`ADAPT_STREAM`].
    pub adapt: u64,
    /// [`CORRELATED_STREAM`].
    pub correlated: u64,
    /// [`REPLAN_STREAM`].
    pub replan: u64,
}

impl StreamConstants {
    /// The constants compiled into this build.
    pub fn current() -> Self {
        StreamConstants {
            health: HEALTH_STREAM,
            adapt: ADAPT_STREAM,
            correlated: CORRELATED_STREAM,
            replan: REPLAN_STREAM,
        }
    }
}

/// The journal's first line: everything needed to re-create and validate
/// the run. The `inputs` map carries opaque, named JSON documents set by
/// the caller (the analyzer stores the app descriptor, platform,
/// execution config, and run spec), so `matchmake resume <journal>`
/// reconstructs the entire run from the journal alone.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalHeader {
    /// Format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// The fault schedule's seed (`None` for an unfaulted run) — the root
    /// of every RNG stream below.
    pub seed: Option<u64>,
    /// RNG stream constants in force at write time.
    pub streams: StreamConstants,
    /// Named input documents (serialized JSON strings), byte-compared on
    /// resume.
    pub inputs: BTreeMap<String, String>,
}

impl JournalHeader {
    /// A header for a run seeded with `seed`, stamped with this build's
    /// version and stream constants.
    pub fn new(seed: Option<u64>) -> Self {
        JournalHeader {
            version: JOURNAL_VERSION,
            seed,
            streams: StreamConstants::current(),
            inputs: BTreeMap::new(),
        }
    }

    /// Attach a named input document (builder-style).
    pub fn with_input(mut self, key: &str, value: String) -> Self {
        self.inputs.insert(key.to_string(), value);
        self
    }

    /// The input document stored under `key`, or a typed error naming the
    /// missing field.
    pub fn require_input(&self, key: &str) -> Result<&str, JournalError> {
        self.inputs
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| JournalError::HeaderMismatch {
                field: format!("missing input `{key}`"),
            })
    }
}

/// Saved positions of every live RNG stream at an epoch commit (`None`
/// for streams the run's configuration never allocated). Restoring a
/// stream with `FaultRng::from_cursor` reproduces its future draws
/// exactly; resume cross-validates these byte-for-byte at every replayed
/// record, so any drift in random state surfaces at the *first* epoch it
/// occurs, not as a makespan mismatch at the end.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngCursors {
    /// The base fault-sampling stream.
    pub fault: Option<u64>,
    /// The correlated-trigger stream ([`CORRELATED_STREAM`]).
    pub correlated: Option<u64>,
    /// The verification-sampling stream ([`HEALTH_STREAM`]).
    pub health: Option<u64>,
    /// The adaptation tie-break stream ([`ADAPT_STREAM`]).
    pub adapt: Option<u64>,
    /// The plan-repair tie-break stream ([`REPLAN_STREAM`]).
    pub replan: Option<u64>,
}

/// One committed epoch checkpoint: the journal's unit of durability,
/// written at the epoch-flush event (after SDC verification and any
/// rollback, so records are final and epoch indices strictly increase).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// The epoch just flushed (0-based, strictly sequential).
    pub epoch: usize,
    /// Simulated time of the flush completion.
    pub at: SimTime,
    /// Tasks completed so far, across all epochs.
    pub completed: u64,
    /// `(task, device)` placement of every chunk of the flushed epoch.
    pub placements: Vec<(usize, usize)>,
    /// Every live RNG stream's position at the commit.
    pub rng: RngCursors,
    /// Cumulative fault counters.
    pub faults: FaultCounters,
    /// Cumulative per-device blame accumulators (capacity components —
    /// `dead`/`idle`/`slots` — are only closed at run end).
    pub blame: Vec<DeviceBreakdown>,
    /// Cumulative platform counters.
    pub counters: PlatformCounters,
}

/// Per-epoch metrics movement between two consecutive journal records —
/// the "what did this epoch cost" view a streaming scrape would export.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct EpochDelta {
    /// The epoch the delta describes.
    pub epoch: usize,
    /// Wall-clock the epoch spanned (flush-to-flush).
    pub wall: SimTime,
    /// Tasks completed in this epoch.
    pub completed: u64,
    /// Per-device items committed in this epoch.
    pub items: Vec<u64>,
    /// Per-device busy time committed in this epoch.
    pub busy: Vec<SimTime>,
    /// Transfer bytes moved in this epoch.
    pub transfer_bytes: u64,
    /// Task faults injected in this epoch.
    pub task_faults: u64,
}

impl EpochRecord {
    /// The metrics delta from `prev` (the preceding record, or `None` for
    /// the first epoch) to this record.
    pub fn delta_from(&self, prev: Option<&EpochRecord>) -> EpochDelta {
        let base_at = prev.map(|p| p.at).unwrap_or(SimTime::ZERO);
        let dev = |i: usize| -> (u64, SimTime) {
            let cur = &self.counters.devices[i];
            match prev {
                Some(p) => {
                    let old = &p.counters.devices[i];
                    (cur.items - old.items, cur.busy.saturating_sub(old.busy))
                }
                None => (cur.items, cur.busy),
            }
        };
        let n = self.counters.devices.len();
        EpochDelta {
            epoch: self.epoch,
            wall: self.at.saturating_sub(base_at),
            completed: self.completed - prev.map(|p| p.completed).unwrap_or(0),
            items: (0..n).map(|i| dev(i).0).collect(),
            busy: (0..n).map(|i| dev(i).1).collect(),
            transfer_bytes: self.counters.transfers.bytes
                - prev.map(|p| p.counters.transfers.bytes).unwrap_or(0),
            task_faults: self.faults.task_faults - prev.map(|p| p.faults.task_faults).unwrap_or(0),
        }
    }
}

/// Why a journal could not be written, loaded, or replayed.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalError {
    /// The journal text is empty.
    Empty,
    /// No committed header line (the file holds only a torn fragment, or
    /// its first committed line fails the integrity envelope).
    MissingHeader,
    /// A committed (newline-terminated) line failing the integrity
    /// envelope or its hash. 1-based; the header is line 1.
    CorruptLine {
        /// The offending line number.
        line: usize,
    },
    /// The header was written by a different journal format version.
    VersionMismatch {
        /// The version the file declares.
        found: u32,
        /// The version this build reads ([`JOURNAL_VERSION`]).
        expected: u32,
    },
    /// A line whose envelope is intact but whose body JSON does not parse
    /// as the expected record type.
    BadParse {
        /// The offending line number (1-based).
        line: usize,
        /// The underlying parse error, rendered.
        error: String,
    },
    /// Epoch records must be strictly sequential from 0.
    NonSequentialEpoch {
        /// The offending line number (1-based).
        line: usize,
        /// The epoch the record claims.
        found: usize,
        /// The epoch its position demands.
        expected: usize,
    },
    /// A resume whose inputs (or header) do not match the journal's.
    HeaderMismatch {
        /// Which field disagreed.
        field: String,
    },
    /// A resumed run regenerated an epoch record that is not byte-equal
    /// to the journal's — the determinism the journal checks was violated
    /// (different build, perturbed inputs, or an executor bug).
    DivergentReplay {
        /// The first diverging epoch.
        epoch: usize,
    },
    /// The run was killed by its [`KillSchedule`] (injected coordinator
    /// death). Not a corruption: the journal written so far is valid and
    /// resumable.
    Killed {
        /// Journal records committed before death.
        records: u64,
        /// Simulated time of death.
        at: SimTime,
    },
    /// An I/O failure reading or writing the journal file (CLI layer).
    Io(String),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Empty => write!(f, "journal is empty"),
            JournalError::MissingHeader => {
                write!(f, "journal has no committed header line")
            }
            JournalError::CorruptLine { line } => {
                write!(
                    f,
                    "journal line {line}: integrity envelope or hash check failed"
                )
            }
            JournalError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "journal format version {found} (this build reads version {expected})"
                )
            }
            JournalError::BadParse { line, error } => {
                write!(f, "journal line {line}: body does not parse: {error}")
            }
            JournalError::NonSequentialEpoch {
                line,
                found,
                expected,
            } => {
                write!(
                    f,
                    "journal line {line}: epoch {found} where {expected} was expected"
                )
            }
            JournalError::HeaderMismatch { field } => {
                write!(f, "journal header does not match this run: {field}")
            }
            JournalError::DivergentReplay { epoch } => {
                write!(
                    f,
                    "resume diverged from the journal at epoch {epoch}: the replayed run \
                     regenerated a different record than the one on disk"
                )
            }
            JournalError::Killed { records, at } => {
                write!(
                    f,
                    "killed by the kill schedule after {records} journal record(s) at {at}"
                )
            }
            JournalError::Io(msg) => write!(f, "journal I/O: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

const HASH_PREFIX: &str = "{\"h\":\"";
const BODY_PREFIX: &str = "\",\"body\":";

/// Wrap `body` (a serialized JSON document) in the integrity envelope.
fn encode_line(body: &str) -> String {
    format!(
        "{HASH_PREFIX}{:016x}{BODY_PREFIX}{body}}}",
        fnv1a_64(body.as_bytes())
    )
}

/// Validate a line's envelope and hash; return the raw body substring.
/// Purely textual — the body is *extracted*, never re-serialized — so the
/// check is byte-exact regardless of what the body contains.
fn decode_line(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(HASH_PREFIX)?;
    if rest.len() < 16 + BODY_PREFIX.len() + 1 {
        return None;
    }
    let (hex, rest) = rest.split_at(16);
    let body = rest.strip_prefix(BODY_PREFIX)?.strip_suffix('}')?;
    let want = u64::from_str_radix(hex, 16).ok()?;
    (fnv1a_64(body.as_bytes()) == want).then_some(body)
}

/// A loaded, validated journal: the parsed header and records plus their
/// raw body bytes (resume validates against the bytes, not the parse).
#[derive(Clone, Debug, PartialEq)]
pub struct RunJournal {
    /// The parsed header.
    pub header: JournalHeader,
    /// The parsed epoch records, in epoch order.
    pub records: Vec<EpochRecord>,
    /// A torn (newline-less) final line was discarded during load.
    pub torn_discarded: bool,
    /// Raw body substrings of the records, for byte-exact replay checks.
    bodies: Vec<String>,
}

impl RunJournal {
    /// Load and validate journal `text`.
    ///
    /// Torn-write semantics: only newline-terminated lines are
    /// *committed*. A final line without its newline is the write the
    /// crash interrupted — tolerated and discarded. A committed line that
    /// fails its envelope, hash, parse, or sequence check is rejected
    /// with a typed error: mid-file corruption is never skipped over.
    pub fn load(text: &str) -> Result<Self, JournalError> {
        if text.is_empty() {
            return Err(JournalError::Empty);
        }
        let mut committed: Vec<&str> = Vec::new();
        let mut torn_discarded = false;
        for seg in text.split_inclusive('\n') {
            match seg.strip_suffix('\n') {
                Some(line) => committed.push(line),
                None => torn_discarded = true,
            }
        }
        let Some((&header_line, record_lines)) = committed.split_first() else {
            return Err(JournalError::MissingHeader);
        };
        let Some(header_body) = decode_line(header_line) else {
            return Err(JournalError::MissingHeader);
        };
        let header: JournalHeader =
            serde_json::from_str(header_body).map_err(|e| JournalError::BadParse {
                line: 1,
                error: e.to_string(),
            })?;
        validate_version(header.version, JOURNAL_VERSION)
            .map_err(|(found, expected)| JournalError::VersionMismatch { found, expected })?;
        let mut records = Vec::with_capacity(record_lines.len());
        let mut bodies = Vec::with_capacity(record_lines.len());
        for (i, &line) in record_lines.iter().enumerate() {
            let lineno = i + 2;
            let Some(body) = decode_line(line) else {
                return Err(JournalError::CorruptLine { line: lineno });
            };
            let record: EpochRecord =
                serde_json::from_str(body).map_err(|e| JournalError::BadParse {
                    line: lineno,
                    error: e.to_string(),
                })?;
            if record.epoch != i {
                return Err(JournalError::NonSequentialEpoch {
                    line: lineno,
                    found: record.epoch,
                    expected: i,
                });
            }
            records.push(record);
            bodies.push(body.to_string());
        }
        Ok(RunJournal {
            header,
            records,
            torn_discarded,
            bodies,
        })
    }

    /// Load `text`, salvaging the longest valid record prefix.
    ///
    /// Where [`RunJournal::load`] rejects the whole journal on the first
    /// mid-file corruption, this keeps every record *before* the first bad
    /// committed line and reports the cut as a typed [`SalvageReport`]
    /// (first bad line, the reason strict load would have given, and how
    /// many committed lines were discarded). The error path is reserved
    /// for journals with nothing to salvage: empty text, an unreadable
    /// header, or a version this build cannot read. A journal that loads
    /// cleanly returns `(journal, None)`.
    pub fn load_salvaged(text: &str) -> Result<(Self, Option<SalvageReport>), JournalError> {
        if text.is_empty() {
            return Err(JournalError::Empty);
        }
        let mut committed: Vec<&str> = Vec::new();
        let mut torn_discarded = false;
        for seg in text.split_inclusive('\n') {
            match seg.strip_suffix('\n') {
                Some(line) => committed.push(line),
                None => torn_discarded = true,
            }
        }
        let Some((&header_line, record_lines)) = committed.split_first() else {
            return Err(JournalError::MissingHeader);
        };
        let Some(header_body) = decode_line(header_line) else {
            return Err(JournalError::MissingHeader);
        };
        let header: JournalHeader =
            serde_json::from_str(header_body).map_err(|e| JournalError::BadParse {
                line: 1,
                error: e.to_string(),
            })?;
        validate_version(header.version, JOURNAL_VERSION)
            .map_err(|(found, expected)| JournalError::VersionMismatch { found, expected })?;
        let mut records = Vec::new();
        let mut bodies = Vec::new();
        let mut salvage = None;
        for (i, &line) in record_lines.iter().enumerate() {
            let lineno = i + 2;
            let bad = |error: JournalError| SalvageReport {
                first_bad_line: lineno,
                reason: error.to_string(),
                discarded_lines: record_lines.len() - i,
            };
            let Some(body) = decode_line(line) else {
                salvage = Some(bad(JournalError::CorruptLine { line: lineno }));
                break;
            };
            let record: EpochRecord = match serde_json::from_str(body) {
                Ok(record) => record,
                Err(e) => {
                    salvage = Some(bad(JournalError::BadParse {
                        line: lineno,
                        error: e.to_string(),
                    }));
                    break;
                }
            };
            if record.epoch != i {
                salvage = Some(bad(JournalError::NonSequentialEpoch {
                    line: lineno,
                    found: record.epoch,
                    expected: i,
                }));
                break;
            }
            records.push(record);
            bodies.push(body.to_string());
        }
        Ok((
            RunJournal {
                header,
                records,
                // A cut prefix behaves exactly like a journal whose tail
                // was never committed — resume re-executes from the cut.
                torn_discarded: torn_discarded || salvage.is_some(),
                bodies,
            },
            salvage,
        ))
    }

    /// The number of committed epoch records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

/// What [`RunJournal::load_salvaged`] cut and why: the strict-load error
/// turned into a record of the salvage decision, for operators deciding
/// whether the salvaged prefix is trustworthy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SalvageReport {
    /// 1-based line number (in the journal file) of the first committed
    /// line that failed its envelope, hash, parse, or sequence check.
    pub first_bad_line: usize,
    /// The typed error strict [`RunJournal::load`] raises there, rendered.
    pub reason: String,
    /// Committed lines discarded from `first_bad_line` to end of file.
    pub discarded_lines: usize,
}

impl std::fmt::Display for SalvageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "salvaged: discarded {} committed line(s) from line {} ({})",
            self.discarded_lines, self.first_bad_line, self.reason
        )
    }
}

enum SinkMode {
    /// A fresh run: every record is appended.
    Record,
    /// A resumed run: the first `bodies.len()` records are byte-validated
    /// against the loaded journal, then appending continues.
    Resume,
}

/// The executor-facing journal writer. In-memory and append-only; the
/// caller persists [`JournalSink::text`] (the CLI writes it back to the
/// journal path after the run — and after a [`JournalError::Killed`], to
/// model exactly what the dying coordinator managed to flush).
pub struct JournalSink {
    mode: SinkMode,
    kill: Option<KillSchedule>,
    began: bool,
    header_line: Option<String>,
    lines: Vec<String>,
    /// A half-written line the injected kill tore (no trailing newline).
    torn_tail: Option<String>,
    records: u64,
    replay_header_body: Option<String>,
    replay_bodies: Vec<String>,
}

impl JournalSink {
    /// A sink for a fresh journaled run.
    pub fn record() -> Self {
        JournalSink {
            mode: SinkMode::Record,
            kill: None,
            began: false,
            header_line: None,
            lines: Vec::new(),
            torn_tail: None,
            records: 0,
            replay_header_body: None,
            replay_bodies: Vec::new(),
        }
    }

    /// A recording sink with an injected coordinator death.
    pub fn record_with_kill(kill: KillSchedule) -> Self {
        JournalSink {
            kill: Some(kill),
            ..JournalSink::record()
        }
    }

    /// A sink resuming from a loaded journal: the stored records become
    /// the validation prefix of the redo-replay.
    pub fn resume(journal: &RunJournal) -> Self {
        let header_body = serde_json::to_string(&journal.header)
            .expect("journal header serialization cannot fail");
        JournalSink {
            mode: SinkMode::Resume,
            replay_header_body: Some(header_body),
            replay_bodies: journal.bodies.clone(),
            ..JournalSink::record()
        }
    }

    /// Open the journal with `header`. Record mode commits the header
    /// line; resume mode byte-compares the rebuilt header against the
    /// loaded journal's, so a resume under different inputs is rejected
    /// before any simulation happens.
    pub fn begin(&mut self, header: &JournalHeader) -> Result<(), JournalError> {
        let body = serde_json::to_string(header).expect("journal header serialization cannot fail");
        if let SinkMode::Resume = self.mode {
            let stored = self
                .replay_header_body
                .as_deref()
                .expect("resume sink holds the stored header");
            if stored != body {
                return Err(JournalError::HeaderMismatch {
                    field: "header body".to_string(),
                });
            }
        }
        self.header_line = Some(encode_line(&body));
        self.began = true;
        Ok(())
    }

    /// Commit one epoch record. Returns `true` when the record was
    /// byte-validated against the resume prefix (rather than newly
    /// appended). A configured record-kill fires *instead of* the append
    /// and surfaces as [`JournalError::Killed`].
    pub fn append_epoch(&mut self, record: &EpochRecord) -> Result<bool, JournalError> {
        assert!(self.began, "JournalSink::begin must run before records");
        let body = serde_json::to_string(record).expect("epoch record serialization cannot fail");
        if (self.records as usize) < self.replay_bodies.len() {
            if self.replay_bodies[self.records as usize] != body {
                return Err(JournalError::DivergentReplay {
                    epoch: record.epoch,
                });
            }
            self.lines.push(encode_line(&body));
            self.records += 1;
            return Ok(true);
        }
        if let Some(k) = &self.kill {
            if k.after_records == Some(self.records) {
                if k.torn {
                    let line = encode_line(&body);
                    self.torn_tail = Some(line[..line.len() / 2].to_string());
                }
                return Err(JournalError::Killed {
                    records: self.records,
                    at: record.at,
                });
            }
        }
        self.lines.push(encode_line(&body));
        self.records += 1;
        Ok(false)
    }

    /// The configured time-kill instant, if any.
    pub fn time_kill_at(&self) -> Option<SimTime> {
        self.kill.as_ref().and_then(|k| k.at_time)
    }

    /// Records committed (validated or appended) so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records still pending byte-validation against the resume prefix.
    pub fn replay_remaining(&self) -> u64 {
        (self.replay_bodies.len() as u64).saturating_sub(self.records)
    }

    /// The journal's full on-disk text: header + committed records, one
    /// envelope per newline-terminated line, plus the torn tail (no
    /// newline) when the injected kill tore its write.
    pub fn text(&self) -> String {
        let mut out = String::new();
        if let Some(h) = &self.header_line {
            out.push_str(h);
            out.push('\n');
        }
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if let Some(t) = &self.torn_tail {
            out.push_str(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: usize) -> EpochRecord {
        EpochRecord {
            epoch,
            at: SimTime::from_millis(1 + epoch as u64),
            completed: (epoch as u64 + 1) * 2,
            placements: vec![(2 * epoch, 0), (2 * epoch + 1, 1)],
            rng: RngCursors {
                fault: Some(0xAB + epoch as u64),
                ..RngCursors::default()
            },
            faults: FaultCounters::default(),
            blame: vec![DeviceBreakdown::default(); 2],
            counters: PlatformCounters::new(2),
        }
    }

    fn journal_text(n: usize) -> String {
        let mut sink = JournalSink::record();
        sink.begin(&JournalHeader::new(Some(7)).with_input("app", "{}".to_string()))
            .unwrap();
        for e in 0..n {
            sink.append_epoch(&record(e)).unwrap();
        }
        sink.text()
    }

    #[test]
    fn round_trips_and_counts() {
        let text = journal_text(3);
        let j = RunJournal::load(&text).unwrap();
        assert_eq!(j.record_count(), 3);
        assert!(!j.torn_discarded);
        assert_eq!(j.header.seed, Some(7));
        assert_eq!(j.header.require_input("app").unwrap(), "{}");
        assert!(matches!(
            j.header.require_input("nope"),
            Err(JournalError::HeaderMismatch { .. })
        ));
        assert_eq!(j.records[2].epoch, 2);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_discarded() {
        let text = journal_text(3);
        // Cut the final line's newline and half its bytes: the torn write.
        let cut = text.trim_end_matches('\n');
        let torn = &cut[..cut.len() - 10];
        let j = RunJournal::load(torn).unwrap();
        assert_eq!(j.record_count(), 2);
        assert!(j.torn_discarded);
    }

    #[test]
    fn committed_corruption_is_rejected_not_skipped() {
        let text = journal_text(3);
        let lines: Vec<&str> = text.lines().collect();
        // Flip a byte inside a *committed* (non-final) record line.
        let mut bad = lines[1].to_string();
        let flip = bad.len() - 5;
        bad.replace_range(flip..flip + 1, "X");
        let rebuilt = format!("{}\n{}\n{}\n{}\n", lines[0], bad, lines[2], lines[3]);
        assert_eq!(
            RunJournal::load(&rebuilt),
            Err(JournalError::CorruptLine { line: 2 })
        );
    }

    #[test]
    fn missing_header_and_version_mismatch_are_typed() {
        assert_eq!(RunJournal::load(""), Err(JournalError::Empty));
        // Only a torn fragment: no committed header.
        assert_eq!(
            RunJournal::load("{\"h\":\"00"),
            Err(JournalError::MissingHeader)
        );
        // A committed header from a future version.
        let mut sink = JournalSink::record();
        let mut h = JournalHeader::new(None);
        h.version = 99;
        sink.begin(&h).unwrap();
        assert_eq!(
            RunJournal::load(&sink.text()),
            Err(JournalError::VersionMismatch {
                found: 99,
                expected: JOURNAL_VERSION
            })
        );
    }

    #[test]
    fn non_sequential_epochs_are_rejected() {
        let mut sink = JournalSink::record();
        sink.begin(&JournalHeader::new(None)).unwrap();
        sink.append_epoch(&record(0)).unwrap();
        sink.append_epoch(&record(2)).unwrap();
        assert_eq!(
            RunJournal::load(&sink.text()),
            Err(JournalError::NonSequentialEpoch {
                line: 3,
                found: 2,
                expected: 1
            })
        );
    }

    #[test]
    fn record_kill_commits_the_prefix_and_can_tear() {
        let mut sink = JournalSink::record_with_kill(KillSchedule::after_records(1));
        sink.begin(&JournalHeader::new(None)).unwrap();
        sink.append_epoch(&record(0)).unwrap();
        let err = sink.append_epoch(&record(1)).unwrap_err();
        assert_eq!(
            err,
            JournalError::Killed {
                records: 1,
                at: SimTime::from_millis(2)
            }
        );
        let j = RunJournal::load(&sink.text()).unwrap();
        assert_eq!(j.record_count(), 1);
        assert!(!j.torn_discarded);

        let mut sink = JournalSink::record_with_kill(KillSchedule::after_records(1).torn());
        sink.begin(&JournalHeader::new(None)).unwrap();
        sink.append_epoch(&record(0)).unwrap();
        sink.append_epoch(&record(1)).unwrap_err();
        let j = RunJournal::load(&sink.text()).unwrap();
        assert_eq!(j.record_count(), 1);
        assert!(j.torn_discarded);
    }

    #[test]
    fn resume_validates_prefix_and_detects_divergence() {
        let text = journal_text(2);
        let loaded = RunJournal::load(&text).unwrap();
        let header = JournalHeader::new(Some(7)).with_input("app", "{}".to_string());

        // Faithful replay: both records validate, then appends continue,
        // and the final text is byte-identical to an uninterrupted run.
        let mut sink = JournalSink::resume(&loaded);
        sink.begin(&header).unwrap();
        assert!(sink.append_epoch(&record(0)).unwrap());
        assert!(sink.append_epoch(&record(1)).unwrap());
        assert!(!sink.append_epoch(&record(2)).unwrap());
        assert_eq!(sink.text(), journal_text(3));

        // A diverging record is a typed error at the exact epoch.
        let mut sink = JournalSink::resume(&loaded);
        sink.begin(&header).unwrap();
        sink.append_epoch(&record(0)).unwrap();
        let mut wrong = record(1);
        wrong.completed += 1;
        assert_eq!(
            sink.append_epoch(&wrong),
            Err(JournalError::DivergentReplay { epoch: 1 })
        );

        // Mismatched inputs are rejected at begin, before any simulation.
        let mut sink = JournalSink::resume(&loaded);
        let other = JournalHeader::new(Some(8)).with_input("app", "{}".to_string());
        assert!(matches!(
            sink.begin(&other),
            Err(JournalError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn epoch_deltas_subtract_consecutive_records() {
        let mut a = record(0);
        a.counters.devices[0].items = 10;
        a.counters.devices[0].busy = SimTime::from_millis(3);
        a.counters.transfers.bytes = 100;
        let mut b = record(1);
        b.counters.devices[0].items = 25;
        b.counters.devices[0].busy = SimTime::from_millis(8);
        b.counters.transfers.bytes = 160;

        let first = a.delta_from(None);
        assert_eq!(first.items[0], 10);
        assert_eq!(first.wall, SimTime::from_millis(1));

        let d = b.delta_from(Some(&a));
        assert_eq!(d.epoch, 1);
        assert_eq!(d.items[0], 15);
        assert_eq!(d.busy[0], SimTime::from_millis(5));
        assert_eq!(d.transfer_bytes, 60);
        assert_eq!(d.completed, 2);
        assert_eq!(d.wall, SimTime::from_millis(1));
    }
}
