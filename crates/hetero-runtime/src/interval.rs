//! Half-open integer intervals and interval containers.
//!
//! Data-parallel partitions are contiguous index ranges of a buffer, so both
//! the dependence analysis (who last wrote these items?) and the coherence
//! directory (which memory space holds a valid copy of these items?) reduce
//! to bookkeeping over half-open intervals `[start, end)` of item indices.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A half-open interval `[start, end)` over item indices.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Inclusive start index.
    pub start: u64,
    /// Exclusive end index.
    pub end: u64,
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

impl Interval {
    /// Construct; panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "invalid interval [{start}, {end})");
        Interval { start, end }
    }

    /// Number of items covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// `true` when the two intervals share at least one index.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The shared part of two intervals, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Interval { start, end })
        } else {
            None
        }
    }

    /// `true` if `other` lies entirely within `self`.
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// A set of disjoint, non-adjacent intervals (kept normalised).
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSet {
    // start -> end, disjoint and non-adjacent.
    runs: BTreeMap<u64, u64>,
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|iv| format!("{iv:?}")))
            .finish()
    }
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set containing one interval.
    pub fn of(iv: Interval) -> Self {
        let mut s = Self::new();
        s.insert(iv);
        s
    }

    /// Iterate the disjoint runs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Interval> + '_ {
        self.runs
            .iter()
            .map(|(&start, &end)| Interval { start, end })
    }

    /// Total number of items covered.
    pub fn total_len(&self) -> u64 {
        self.runs.iter().map(|(&s, &e)| e - s).sum()
    }

    /// `true` when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Add an interval, merging with existing runs.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        let mut start = iv.start;
        let mut end = iv.end;
        // Absorb any run that overlaps or touches [start, end).
        // Candidates: runs whose start <= end, scanning backwards from `end`.
        let mut to_remove = Vec::new();
        for (&s, &e) in self.runs.range(..=end) {
            if e >= start {
                to_remove.push(s);
                start = start.min(s);
                end = end.max(e);
            }
        }
        for s in to_remove {
            self.runs.remove(&s);
        }
        self.runs.insert(start, end);
    }

    /// Remove an interval from the set.
    pub fn remove(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        let affected: Vec<(u64, u64)> = self
            .runs
            .range(..iv.end)
            .filter(|&(_, &e)| e > iv.start)
            .map(|(&s, &e)| (s, e))
            .collect();
        for (s, e) in affected {
            self.runs.remove(&s);
            if s < iv.start {
                self.runs.insert(s, iv.start);
            }
            if e > iv.end {
                self.runs.insert(iv.end, e);
            }
        }
    }

    /// `true` if every index of `iv` is covered.
    pub fn covers(&self, iv: Interval) -> bool {
        if iv.is_empty() {
            return true;
        }
        // The run starting at or before iv.start must reach iv.end.
        match self.runs.range(..=iv.start).next_back() {
            Some((_, &e)) => e >= iv.end,
            None => false,
        }
    }

    /// The part of `iv` NOT covered by this set, as disjoint intervals.
    pub fn gaps_within(&self, iv: Interval) -> Vec<Interval> {
        let mut gaps = Vec::new();
        if iv.is_empty() {
            return gaps;
        }
        let mut cursor = iv.start;
        for (&s, &e) in self.runs.range(..iv.end) {
            if e <= iv.start {
                continue;
            }
            let s = s.max(iv.start);
            if s > cursor {
                gaps.push(Interval::new(cursor, s));
            }
            cursor = cursor.max(e.min(iv.end));
        }
        if cursor < iv.end {
            gaps.push(Interval::new(cursor, iv.end));
        }
        gaps
    }

    /// The covered sub-intervals of `iv`.
    pub fn intersection_with(&self, iv: Interval) -> Vec<Interval> {
        let mut out = Vec::new();
        for (&s, &e) in self.runs.range(..iv.end) {
            if e <= iv.start {
                continue;
            }
            if let Some(part) = Interval::new(s, e).intersect(&iv) {
                out.push(part);
            }
        }
        out
    }
}

/// Disjoint intervals each tagged with a value; inserting overwrites any
/// overlapped portion (splitting partially-overlapped runs).
///
/// Used for "last writer of these items" maps in the dependence analysis.
#[derive(Clone, Debug)]
pub struct IntervalMap<T: Clone> {
    // start -> (end, tag), disjoint.
    runs: BTreeMap<u64, (u64, T)>,
}

impl<T: Clone> Default for IntervalMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> IntervalMap<T> {
    /// The empty map.
    pub fn new() -> Self {
        IntervalMap {
            runs: BTreeMap::new(),
        }
    }

    /// Iterate `(interval, tag)` pairs ascending.
    pub fn iter(&self) -> impl Iterator<Item = (Interval, &T)> + '_ {
        self.runs
            .iter()
            .map(|(&s, (e, t))| (Interval { start: s, end: *e }, t))
    }

    /// All `(interval, tag)` entries overlapping `iv`, clipped to `iv`.
    pub fn overlapping(&self, iv: Interval) -> Vec<(Interval, T)> {
        let mut out = Vec::new();
        if iv.is_empty() {
            return out;
        }
        for (&s, (e, t)) in self.runs.range(..iv.end) {
            if *e <= iv.start {
                continue;
            }
            if let Some(part) = Interval::new(s, *e).intersect(&iv) {
                out.push((part, t.clone()));
            }
        }
        out
    }

    /// Overwrite `iv` with `tag`, splitting partially-overlapped runs.
    pub fn insert(&mut self, iv: Interval, tag: T) {
        if iv.is_empty() {
            return;
        }
        self.remove(iv);
        self.runs.insert(iv.start, (iv.end, tag));
    }

    /// Clear `iv`, splitting partially-overlapped runs.
    pub fn remove(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        let affected: Vec<(u64, u64, T)> = self
            .runs
            .range(..iv.end)
            .filter(|&(_, &(e, _))| e > iv.start)
            .map(|(&s, (e, t))| (s, *e, t.clone()))
            .collect();
        for (s, e, t) in affected {
            self.runs.remove(&s);
            if s < iv.start {
                self.runs.insert(s, (iv.start, t.clone()));
            }
            if e > iv.end {
                self.runs.insert(iv.end, (e, t));
            }
        }
    }

    /// Number of disjoint runs (for tests).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn interval_basics() {
        assert_eq!(iv(2, 7).len(), 5);
        assert!(iv(2, 2).is_empty());
        assert!(iv(0, 5).overlaps(&iv(4, 9)));
        assert!(!iv(0, 5).overlaps(&iv(5, 9)));
        assert_eq!(iv(0, 5).intersect(&iv(3, 9)), Some(iv(3, 5)));
        assert_eq!(iv(0, 3).intersect(&iv(3, 9)), None);
        assert!(iv(0, 10).contains(&iv(3, 7)));
        assert!(!iv(0, 10).contains(&iv(3, 11)));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn interval_rejects_backwards() {
        let _ = iv(5, 2);
    }

    #[test]
    fn set_insert_merges_overlapping_and_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 5));
        s.insert(iv(10, 15));
        s.insert(iv(5, 10)); // bridges the two
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![iv(0, 15)]);
        assert_eq!(s.total_len(), 15);
    }

    #[test]
    fn set_remove_splits_runs() {
        let mut s = IntervalSet::of(iv(0, 100));
        s.remove(iv(40, 60));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![iv(0, 40), iv(60, 100)]);
        s.remove(iv(0, 10));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![iv(10, 40), iv(60, 100)]);
        s.remove(iv(0, 200));
        assert!(s.is_empty());
    }

    #[test]
    fn set_covers() {
        let mut s = IntervalSet::new();
        s.insert(iv(0, 50));
        s.insert(iv(60, 100));
        assert!(s.covers(iv(10, 50)));
        assert!(!s.covers(iv(10, 61)));
        assert!(s.covers(iv(60, 100)));
        assert!(s.covers(iv(5, 5))); // empty always covered
        assert!(!s.covers(iv(100, 101)));
    }

    #[test]
    fn set_gaps() {
        let mut s = IntervalSet::new();
        s.insert(iv(10, 20));
        s.insert(iv(30, 40));
        assert_eq!(
            s.gaps_within(iv(0, 50)),
            vec![iv(0, 10), iv(20, 30), iv(40, 50)]
        );
        assert_eq!(s.gaps_within(iv(12, 18)), vec![]);
        assert_eq!(s.gaps_within(iv(15, 35)), vec![iv(20, 30)]);
    }

    #[test]
    fn set_intersection_with() {
        let mut s = IntervalSet::new();
        s.insert(iv(10, 20));
        s.insert(iv(30, 40));
        assert_eq!(
            s.intersection_with(iv(15, 35)),
            vec![iv(15, 20), iv(30, 35)]
        );
        assert_eq!(s.intersection_with(iv(0, 5)), vec![]);
    }

    #[test]
    fn map_insert_overwrites_and_splits() {
        let mut m = IntervalMap::new();
        m.insert(iv(0, 100), "a");
        m.insert(iv(40, 60), "b");
        let got: Vec<_> = m.iter().map(|(i, t)| (i, *t)).collect();
        assert_eq!(
            got,
            vec![(iv(0, 40), "a"), (iv(40, 60), "b"), (iv(60, 100), "a")]
        );
        assert_eq!(m.run_count(), 3);
    }

    #[test]
    fn map_overlapping_clips() {
        let mut m = IntervalMap::new();
        m.insert(iv(0, 10), 1);
        m.insert(iv(20, 30), 2);
        assert_eq!(
            m.overlapping(iv(5, 25)),
            vec![(iv(5, 10), 1), (iv(20, 25), 2)]
        );
        assert_eq!(m.overlapping(iv(10, 20)), vec![]);
    }

    #[test]
    fn map_remove() {
        let mut m = IntervalMap::new();
        m.insert(iv(0, 30), 'x');
        m.remove(iv(10, 20));
        let got: Vec<_> = m.iter().map(|(i, t)| (i, *t)).collect();
        assert_eq!(got, vec![(iv(0, 10), 'x'), (iv(20, 30), 'x')]);
    }
}
