//! Streaming per-epoch metrics: delta-encoded [`EpochSnapshot`] lines at
//! every committed taskwait barrier.
//!
//! The [`MetricsObserver`] materializes one registry at run end; the
//! [`SnapshotObserver`] wraps it and additionally emits one JSON line per
//! committed epoch flush (plus a final line at run end carrying the
//! run-end-only series: makespan, blame components, totals). Each line is a
//! *delta*: only series whose value changed since the previous snapshot
//! appear, counters and histograms carry the increment, gauges carry the
//! new absolute value. The hard invariant — enforced by fuzz oracle 9
//! (`stream-fold-equivalence`) — is that [`fold_stream`] over the emitted
//! lines reconstructs the end-of-run [`MetricsRegistry`] byte-for-byte.
//!
//! Determinism is inherited from the simulator: the stream is a pure
//! function of the run, so CI can double-run and byte-diff it, and a
//! crash+resume run (which re-executes from `t = 0` under redo-replay)
//! emits the identical stream.

use std::collections::BTreeSet;

use super::metrics::{MetricsObserver, MetricsRegistry, Series, SeriesValue};
use super::Observer;
use crate::program::{KernelId, TaskId};
use crate::stats::RunReport;
use crate::trace::TraceEvent;
use hetero_platform::{DeviceId, MemSpaceId, Platform, SimTime};
use serde::{Deserialize, Serialize};

/// Open quarantine/disturbance state at a snapshot point.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OpenState {
    /// Devices currently quarantined by the circuit breaker (indices,
    /// sorted).
    pub quarantined: Vec<usize>,
    /// Devices permanently dead (dropout observed), sorted.
    pub dead: Vec<usize>,
    /// Correlated-fault windows still open at the snapshot time.
    pub correlated_open: u64,
}

/// One line of the metrics stream: the state advance between two committed
/// taskwait barriers (or between the last barrier and run end).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Snapshot sequence number, starting at 0.
    pub seq: u64,
    /// The flush (epoch) index this snapshot committed at; `None` for the
    /// final run-end snapshot.
    pub epoch: Option<u64>,
    /// Virtual time of the barrier (flush end), or the makespan for the
    /// final snapshot.
    pub at: SimTime,
    /// Cumulative committed task instances across all devices.
    pub tasks_total: u64,
    /// Cumulative fault-and-mitigation events across all kinds.
    pub faults_total: u64,
    /// Open quarantine/disturbance state at `at`.
    pub open: OpenState,
    /// Delta-encoded series: every series whose value changed since the
    /// previous snapshot. Counters and histograms carry the increment,
    /// gauges the new absolute value; name/help/labels ride along so a
    /// fold can recreate series it has never seen.
    pub changed: Vec<Series>,
}

/// Apply one snapshot's deltas to a registry being folded: counters add,
/// histograms merge bucketwise, gauges overwrite.
pub fn apply_snapshot(reg: &mut MetricsRegistry, snap: &EpochSnapshot) -> Result<(), serde::Error> {
    for s in &snap.changed {
        let id = s.id();
        match reg.series.get_mut(&id) {
            None => {
                reg.series.insert(id, s.clone());
            }
            Some(mine) => match (&mut mine.value, &s.value) {
                (SeriesValue::Counter(a), SeriesValue::Counter(b)) => *a += b,
                (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) => *a = *b,
                (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => a.merge(b),
                _ => {
                    return Err(serde::Error::custom(format!(
                        "snapshot {}: series `{id}` changed kind mid-stream",
                        snap.seq
                    )))
                }
            },
        }
    }
    Ok(())
}

/// Fold a whole metrics stream (one [`EpochSnapshot`] JSON object per line)
/// back into the registry it was streamed from. Validates the sequence
/// numbering; the result is byte-for-byte identical to the end-of-run
/// [`MetricsRegistry::to_json`] of the emitting observer (fuzz oracle 9).
pub fn fold_stream(stream: &str) -> Result<MetricsRegistry, serde::Error> {
    let mut reg = MetricsRegistry::new();
    let mut expect = 0u64;
    for (i, line) in stream.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let snap: EpochSnapshot = serde_json::from_str(line)
            .map_err(|e| serde::Error::custom(format!("stream line {}: {e}", i + 1)))?;
        if snap.seq != expect {
            return Err(serde::Error::custom(format!(
                "stream line {}: snapshot seq {} but expected {expect}",
                i + 1,
                snap.seq
            )));
        }
        expect += 1;
        apply_snapshot(&mut reg, &snap)?;
    }
    Ok(reg)
}

/// A live per-line sink for emitted snapshot lines.
type LineSink = Box<dyn FnMut(&str)>;

/// The streaming metrics sink: a [`MetricsObserver`] that additionally
/// emits one delta-encoded [`EpochSnapshot`] JSON line per committed epoch
/// flush, plus a final run-end line. Lines are collected in order (see
/// [`SnapshotObserver::stream`]) and optionally pushed to a live sink as
/// they are produced.
pub struct SnapshotObserver {
    inner: MetricsObserver,
    prev: MetricsRegistry,
    lines: Vec<String>,
    seq: u64,
    quarantined: BTreeSet<usize>,
    dead: BTreeSet<usize>,
    correlated_until: Vec<SimTime>,
    sink: Option<LineSink>,
}

impl std::fmt::Debug for SnapshotObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotObserver")
            .field("seq", &self.seq)
            .field("lines", &self.lines.len())
            .finish()
    }
}

impl SnapshotObserver {
    /// A streaming sink for one run of `strategy` on `platform` (the same
    /// arguments as [`MetricsObserver::new`]; the wrapped observer is
    /// constructed internally so stream and registry always agree).
    pub fn new(platform: &Platform, strategy: &str) -> Self {
        Self {
            inner: MetricsObserver::new(platform, strategy),
            prev: MetricsRegistry::new(),
            lines: Vec::new(),
            seq: 0,
            quarantined: BTreeSet::new(),
            dead: BTreeSet::new(),
            correlated_until: Vec::new(),
            sink: None,
        }
    }

    /// Attach a live sink called with each snapshot line as it is emitted
    /// (e.g. printing a feed, or appending to a file mid-run).
    pub fn with_sink(mut self, sink: impl FnMut(&str) + 'static) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// The registry accumulated so far (the wrapped observer's).
    pub fn registry(&self) -> &MetricsRegistry {
        self.inner.registry()
    }

    /// All snapshot lines emitted so far, each terminated by `\n` — the
    /// canonical on-disk stream format (`matchmake run --metrics-stream`).
    pub fn stream(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// The snapshot lines emitted so far, without newlines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    fn counter_sum(reg: &MetricsRegistry, name: &str) -> u64 {
        reg.series
            .values()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                SeriesValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    fn delta(prev: &Series, cur: &Series) -> Series {
        let value = match (&prev.value, &cur.value) {
            (SeriesValue::Counter(a), SeriesValue::Counter(b)) => {
                SeriesValue::Counter(b.saturating_sub(*a))
            }
            (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => {
                let mut d = b.clone();
                for (db, ab) in d.buckets.iter_mut().zip(&a.buckets) {
                    *db = db.saturating_sub(*ab);
                }
                d.overflow = d.overflow.saturating_sub(a.overflow);
                d.count = d.count.saturating_sub(a.count);
                d.sum_nanos = d.sum_nanos.saturating_sub(a.sum_nanos);
                SeriesValue::Histogram(d)
            }
            // Gauges (and the impossible kind-change case) are carried as
            // the new absolute value.
            (_, v) => v.clone(),
        };
        Series {
            name: cur.name.clone(),
            help: cur.help.clone(),
            labels: cur.labels.clone(),
            value,
        }
    }

    fn emit(&mut self, epoch: Option<u64>, at: SimTime) {
        self.correlated_until.retain(|&u| u > at);
        let cur = self.inner.registry();
        let mut changed = Vec::new();
        for (id, s) in &cur.series {
            match self.prev.series.get(id) {
                Some(p) if p.value == s.value => {}
                Some(p) => changed.push(Self::delta(p, s)),
                None => changed.push(s.clone()),
            }
        }
        let snap = EpochSnapshot {
            seq: self.seq,
            epoch,
            at,
            tasks_total: Self::counter_sum(cur, "hm_tasks_total"),
            faults_total: Self::counter_sum(cur, "hm_faults_total"),
            open: OpenState {
                quarantined: self.quarantined.iter().copied().collect(),
                dead: self.dead.iter().copied().collect(),
                correlated_open: self.correlated_until.len() as u64,
            },
            changed,
        };
        self.seq += 1;
        self.prev = cur.clone();
        let line = serde_json::to_string(&snap).expect("snapshot serializes");
        if let Some(sink) = &mut self.sink {
            sink(&line);
        }
        self.lines.push(line);
    }
}

impl Observer for SnapshotObserver {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.inner.on_event(ev);
    }

    fn on_task_start(
        &mut self,
        task: TaskId,
        kernel: KernelId,
        dev: DeviceId,
        items: u64,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner
            .on_task_start(task, kernel, dev, items, start, end);
    }

    fn on_task_done(&mut self, task: TaskId, dev: DeviceId, at: SimTime) {
        self.inner.on_task_done(task, dev, at);
    }

    fn on_task_bound(&mut self, task: TaskId, dev: DeviceId, at: SimTime, queue_depth: usize) {
        self.inner.on_task_bound(task, dev, at, queue_depth);
    }

    fn on_transfer(
        &mut self,
        from: MemSpaceId,
        to: MemSpaceId,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        self.inner.on_transfer(from, to, bytes, start, end);
    }

    fn on_epoch_end(&mut self, epoch: usize, start: SimTime, end: SimTime) {
        self.inner.on_epoch_end(epoch, start, end);
        self.emit(Some(epoch as u64), end);
    }

    fn on_fault(&mut self, ev: &TraceEvent) {
        self.inner.on_fault(ev);
        match ev {
            TraceEvent::CircuitOpen { dev, .. } => {
                self.quarantined.insert(dev.0);
            }
            TraceEvent::CircuitClose { dev, .. } => {
                self.quarantined.remove(&dev.0);
            }
            TraceEvent::DeviceDropout { dev, .. } => {
                self.dead.insert(dev.0);
            }
            TraceEvent::CorrelatedFaultTriggered { until, .. } => {
                self.correlated_until.push(*until);
            }
            _ => {}
        }
    }

    fn on_adapt_action(&mut self, ev: &TraceEvent) {
        self.inner.on_adapt_action(ev);
    }

    fn on_run_end(&mut self, report: &RunReport) {
        self.inner.on_run_end(report);
        self.emit(None, report.makespan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::route_event;

    #[test]
    fn deltas_fold_back_to_the_registry() {
        let platform = Platform::test_small();
        let mut obs = SnapshotObserver::new(&platform, "test");
        // Two epochs of synthetic activity.
        let t = |us| SimTime::from_micros(us);
        route_event(
            &mut obs,
            &TraceEvent::Task {
                task: TaskId(0),
                kernel: KernelId(0),
                dev: DeviceId(0),
                items: 100,
                start: t(0),
                end: t(10),
            },
        );
        route_event(
            &mut obs,
            &TraceEvent::Flush {
                epoch: 0,
                start: t(10),
                end: t(12),
            },
        );
        route_event(
            &mut obs,
            &TraceEvent::Task {
                task: TaskId(1),
                kernel: KernelId(0),
                dev: DeviceId(1),
                items: 50,
                start: t(12),
                end: t(30),
            },
        );
        route_event(
            &mut obs,
            &TraceEvent::Flush {
                epoch: 1,
                start: t(30),
                end: t(31),
            },
        );
        assert_eq!(obs.lines().len(), 2);
        let folded = fold_stream(&obs.stream()).unwrap();
        assert_eq!(folded.to_json(), obs.registry().to_json());
        // A second epoch's delta only carries what changed.
        let second: EpochSnapshot = serde_json::from_str(&obs.lines()[1]).unwrap();
        assert_eq!(second.epoch, Some(1));
        assert_eq!(second.tasks_total, 2);
        assert!(second
            .changed
            .iter()
            .all(|s| !s.labels.contains(&("epoch".to_string(), "0".to_string()))));
    }

    #[test]
    fn open_state_tracks_quarantine_and_death() {
        let platform = Platform::test_small();
        let mut obs = SnapshotObserver::new(&platform, "test");
        let t = |us| SimTime::from_micros(us);
        route_event(
            &mut obs,
            &TraceEvent::CircuitOpen {
                dev: DeviceId(1),
                at: t(1),
            },
        );
        route_event(
            &mut obs,
            &TraceEvent::DeviceDropout {
                dev: DeviceId(0),
                at: t(2),
            },
        );
        route_event(
            &mut obs,
            &TraceEvent::Flush {
                epoch: 0,
                start: t(3),
                end: t(4),
            },
        );
        let snap: EpochSnapshot = serde_json::from_str(&obs.lines()[0]).unwrap();
        assert_eq!(snap.open.quarantined, vec![1]);
        assert_eq!(snap.open.dead, vec![0]);
        route_event(
            &mut obs,
            &TraceEvent::CircuitClose {
                dev: DeviceId(1),
                at: t(5),
            },
        );
        route_event(
            &mut obs,
            &TraceEvent::Flush {
                epoch: 1,
                start: t(6),
                end: t(7),
            },
        );
        let snap: EpochSnapshot = serde_json::from_str(&obs.lines()[1]).unwrap();
        assert!(snap.open.quarantined.is_empty());
        assert_eq!(snap.open.dead, vec![0]);
    }

    #[test]
    fn fold_rejects_bad_sequences() {
        assert!(fold_stream("not json").is_err());
        let snap = EpochSnapshot {
            seq: 3,
            epoch: Some(0),
            at: SimTime::ZERO,
            tasks_total: 0,
            faults_total: 0,
            open: OpenState::default(),
            changed: Vec::new(),
        };
        let line = serde_json::to_string(&snap).unwrap();
        assert!(fold_stream(&line).is_err(), "seq must start at 0");
    }
}
