//! Runtime observability: pluggable observer hooks, a metrics registry with
//! Prometheus/JSON export, and makespan blame attribution.
//!
//! Prior to this module each executor path hand-built a [`Trace`] behind a
//! `traced: bool` flag. The executor now emits every event through an
//! [`Observer`], and trace recording, metrics collection and user-defined
//! sinks are all just observer implementations:
//!
//! * [`NullObserver`] — the default; reports `enabled() == false` so the hot
//!   path skips event routing entirely and stays byte-identical to the
//!   pre-observer executor.
//! * [`TraceObserver`] — collects the full [`TraceEvent`] stream, powering
//!   the `simulate_*_traced` entry points.
//! * [`MetricsObserver`] — feeds a [`MetricsRegistry`] of typed counters,
//!   gauges and log-bucketed histograms labeled by device/kernel/strategy.
//! * [`MultiObserver`] — fans one event stream out to several sinks.
//! * [`SnapshotObserver`] — live observability: emits one delta-encoded
//!   [`EpochSnapshot`] JSON line per committed taskwait barrier, with the
//!   invariant that [`fold_stream`] reconstructs the final registry
//!   byte-for-byte (fuzz oracle 9, `stream-fold-equivalence`).
//!
//! Post-hoc analyses over a collected [`Trace`]: [`SpanTree`] lifts the
//! flat event stream into a causal run → epoch → wave → task hierarchy
//! (folded stacks for speedscope, Chrome-trace flow arrows,
//! `hm_span_seconds` tiling); [`RunDiff`] compares two metrics/report
//! exports into a typed per-series verdict table (`matchmake diff`).
//!
//! Observers are strictly *observational*: no hook can influence virtual
//! time, placement, or any other simulation outcome. Determinism of the
//! simulator therefore extends to everything an observer records.
//!
//! Blame attribution ([`TimeBreakdown`], [`CriticalPath`]) lives in
//! [`blame`] and is always on — the executor tracks where every slot-second
//! went regardless of which observer is installed, and publishes the result
//! as `RunReport::breakdown`.

pub mod blame;
pub mod diff;
pub mod metrics;
pub mod snapshot;
pub mod span;

pub use blame::{CriticalPath, DeviceBreakdown, PathKind, PathSegment, TimeBreakdown};
pub use diff::{DiffEntry, DiffVerdict, RunDiff};
pub use metrics::{LogHistogram, MetricsObserver, MetricsRegistry, Series, SeriesValue};
pub use snapshot::{apply_snapshot, fold_stream, EpochSnapshot, OpenState, SnapshotObserver};
pub use span::{Span, SpanKind, SpanTree};

use crate::program::{KernelId, TaskId};
use crate::stats::RunReport;
use crate::trace::{Trace, TraceEvent};
use hetero_platform::{DeviceId, MemSpaceId, SimTime};

/// A sink for executor events. All hooks have empty default bodies: an
/// implementation overrides only what it cares about.
///
/// The executor calls [`Observer::on_event`] with every [`TraceEvent`] it
/// would previously have pushed into a `Trace`, in exactly the same order,
/// plus the typed convenience hooks routed by [`route_event`]. Three hooks
/// have no `TraceEvent` equivalent and are invoked directly:
/// [`Observer::on_task_done`] (task completion commits), [`Observer::on_task_bound`]
/// (a task is placed on a device queue) and [`Observer::on_run_end`] (the
/// final [`RunReport`], including its blame breakdown).
pub trait Observer {
    /// Whether this observer wants events at all. When `false` the executor
    /// skips event construction and routing — [`NullObserver`] returns
    /// `false` to keep the un-observed hot path unchanged.
    fn enabled(&self) -> bool {
        true
    }

    /// Every event, in emission order (the firehose hook).
    fn on_event(&mut self, _ev: &TraceEvent) {}

    /// A task occupied a device slot: `[start, end)` is the full slot span
    /// (scheduling overhead + input transfers + faulted attempts + execution).
    fn on_task_start(
        &mut self,
        _task: TaskId,
        _kernel: KernelId,
        _dev: DeviceId,
        _items: u64,
        _start: SimTime,
        _end: SimTime,
    ) {
    }

    /// A task's completion committed at `at` on `dev` (after any hedge or
    /// suppression logic resolved).
    fn on_task_done(&mut self, _task: TaskId, _dev: DeviceId, _at: SimTime) {}

    /// A task was bound to `dev` and enqueued; `queue_depth` is the device
    /// queue length including this task.
    fn on_task_bound(&mut self, _task: TaskId, _dev: DeviceId, _at: SimTime, _queue_depth: usize) {}

    /// A coherence or write-back transfer of `bytes` bytes between memory
    /// spaces over `[start, end)`.
    fn on_transfer(
        &mut self,
        _from: MemSpaceId,
        _to: MemSpaceId,
        _bytes: u64,
        _start: SimTime,
        _end: SimTime,
    ) {
    }

    /// An epoch's write-back flush completed: `epoch` is the flush index,
    /// `[start, end)` the flush span.
    fn on_epoch_end(&mut self, _epoch: usize, _start: SimTime, _end: SimTime) {}

    /// A fault-or-mitigation event: task/transfer faults, dropouts,
    /// failovers, hedges, corruption detections, circuit transitions.
    fn on_fault(&mut self, _ev: &TraceEvent) {}

    /// An adaptation event: imbalance detection, repartitioning, strategy
    /// escalation, or a plan repair/readmission.
    fn on_adapt_action(&mut self, _ev: &TraceEvent) {}

    /// The run finished; `report` is the final [`RunReport`] (with
    /// `breakdown` populated).
    fn on_run_end(&mut self, _report: &RunReport) {}
}

/// Route one event to an observer: the [`Observer::on_event`] firehose plus
/// the matching typed hook. No-op when the observer is disabled.
///
/// The match is exhaustive on purpose: adding a [`TraceEvent`] variant
/// without deciding its observer routing is a compile error.
pub fn route_event(obs: &mut dyn Observer, ev: &TraceEvent) {
    if !obs.enabled() {
        return;
    }
    obs.on_event(ev);
    match ev {
        TraceEvent::Task {
            task,
            kernel,
            dev,
            items,
            start,
            end,
        } => obs.on_task_start(*task, *kernel, *dev, *items, *start, *end),
        TraceEvent::Transfer {
            from,
            to,
            bytes,
            start,
            end,
        } => obs.on_transfer(*from, *to, *bytes, *start, *end),
        TraceEvent::Flush { epoch, start, end } => obs.on_epoch_end(*epoch, *start, *end),
        // A held slot is pure occupancy geometry: the per-attempt faults
        // already went through `on_fault`, so the span only reaches
        // `on_event` (trace recording and span trees), never the metrics.
        TraceEvent::SlotHeld { .. } => {}
        TraceEvent::TransferRetry { .. }
        | TraceEvent::TaskFault { .. }
        | TraceEvent::DeviceDropout { .. }
        | TraceEvent::Failover { .. }
        | TraceEvent::HedgeLaunched { .. }
        | TraceEvent::HedgeWon { .. }
        | TraceEvent::CorruptionDetected { .. }
        | TraceEvent::CircuitOpen { .. }
        | TraceEvent::CircuitClose { .. }
        | TraceEvent::CorrelatedFaultTriggered { .. } => obs.on_fault(ev),
        TraceEvent::ImbalanceDetected { .. }
        | TraceEvent::Repartitioned { .. }
        | TraceEvent::StrategyEscalated { .. }
        | TraceEvent::StrategyReinstated { .. }
        | TraceEvent::PlanRepaired { .. }
        | TraceEvent::DeviceReadmitted { .. } => obs.on_adapt_action(ev),
    }
}

/// The do-nothing observer. `enabled()` is `false`, so the executor skips
/// event routing entirely — `simulate*` without tracing uses this and the
/// hot path is unchanged from the pre-observer executor.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }
}

/// Collects the full event stream into a [`Trace`]. This is what the
/// `simulate_*_traced` entry points install; the resulting trace is
/// identical to what the executor used to build by hand.
#[derive(Clone, Debug, Default)]
pub struct TraceObserver {
    trace: Trace,
}

impl TraceObserver {
    /// A fresh, empty trace collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The trace collected so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consume the observer and return the collected trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Observer for TraceObserver {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.trace.events.push(ev.clone());
    }
}

/// Fans one event stream out to several observers, in order. `enabled()` is
/// true when any member is enabled; disabled members are skipped per-hook.
#[derive(Default)]
pub struct MultiObserver<'a> {
    sinks: Vec<&'a mut dyn Observer>,
}

impl<'a> MultiObserver<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Add a sink; returns `self` for chaining.
    pub fn with(mut self, obs: &'a mut dyn Observer) -> Self {
        self.sinks.push(obs);
        self
    }
}

impl Observer for MultiObserver<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn on_event(&mut self, ev: &TraceEvent) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_event(ev);
        }
    }

    fn on_task_start(
        &mut self,
        task: TaskId,
        kernel: KernelId,
        dev: DeviceId,
        items: u64,
        start: SimTime,
        end: SimTime,
    ) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_task_start(task, kernel, dev, items, start, end);
        }
    }

    fn on_task_done(&mut self, task: TaskId, dev: DeviceId, at: SimTime) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_task_done(task, dev, at);
        }
    }

    fn on_task_bound(&mut self, task: TaskId, dev: DeviceId, at: SimTime, queue_depth: usize) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_task_bound(task, dev, at, queue_depth);
        }
    }

    fn on_transfer(
        &mut self,
        from: MemSpaceId,
        to: MemSpaceId,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_transfer(from, to, bytes, start, end);
        }
    }

    fn on_epoch_end(&mut self, epoch: usize, start: SimTime, end: SimTime) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_epoch_end(epoch, start, end);
        }
    }

    fn on_fault(&mut self, ev: &TraceEvent) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_fault(ev);
        }
    }

    fn on_adapt_action(&mut self, ev: &TraceEvent) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_adapt_action(ev);
        }
    }

    fn on_run_end(&mut self, report: &RunReport) {
        for s in self.sinks.iter_mut().filter(|s| s.enabled()) {
            s.on_run_end(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.enabled());
    }

    #[test]
    fn route_event_feeds_trace_observer() {
        let mut obs = TraceObserver::new();
        let ev = TraceEvent::DeviceDropout {
            dev: DeviceId(1),
            at: SimTime::from_millis(3),
        };
        route_event(&mut obs, &ev);
        assert_eq!(obs.trace().events.len(), 1);
    }

    #[test]
    fn multi_observer_fans_out() {
        let mut a = TraceObserver::new();
        let mut b = TraceObserver::new();
        {
            let mut multi = MultiObserver::new().with(&mut a).with(&mut b);
            let ev = TraceEvent::CircuitOpen {
                dev: DeviceId(2),
                at: SimTime::from_millis(1),
            };
            route_event(&mut multi, &ev);
        }
        assert_eq!(a.trace().events.len(), 1);
        assert_eq!(b.trace().events.len(), 1);
    }
}
