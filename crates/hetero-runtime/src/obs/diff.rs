//! Run-diff regression engine: compare two metrics/report/bench JSON
//! exports into a typed per-series verdict table.
//!
//! Three input shapes are auto-detected:
//!
//! - a [`MetricsRegistry`] export (`matchmake run --metrics`): each
//!   counter/gauge series becomes one numeric entry; histograms contribute
//!   `.count` and `.sum_seconds` sub-entries plus their quantiles;
//! - a bench file (`BENCH_N.json`, `{"results": [{"name", "mean_ns"}]}`):
//!   each result's `mean_ns` becomes one entry;
//! - any other JSON: every numeric leaf keyed by its `a.b[2].c` path.
//!
//! Series whose name smells like a duration (`seconds`, `_ns`, `nanos`,
//! `makespan`) are *lower-is-better*: a decrease beyond tolerance is
//! `Improved`, an increase `Regressed`. Other series treat any move beyond
//! tolerance as `Regressed` (counts changing under a supposedly identical
//! configuration is a determinism regression, not progress). The engine
//! backs `matchmake diff <a.json> <b.json> [--tolerance pct]`, which exits
//! non-zero when [`RunDiff::has_regressions`] — CI gates every bench file
//! and determinism example on it.

use super::metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Verdict for one series when comparing run B against baseline A.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffVerdict {
    /// Time-like series decreased beyond tolerance.
    Improved,
    /// Series moved beyond tolerance in the wrong (or any, for
    /// non-time-like series) direction.
    Regressed,
    /// Within tolerance (or exactly equal).
    Unchanged,
    /// Present only in B.
    New,
    /// Present only in A.
    Missing,
}

impl DiffVerdict {
    /// Stable lower-case name for table rendering and JSON export.
    pub fn name(self) -> &'static str {
        match self {
            DiffVerdict::Improved => "improved",
            DiffVerdict::Regressed => "regressed",
            DiffVerdict::Unchanged => "unchanged",
            DiffVerdict::New => "new",
            DiffVerdict::Missing => "missing",
        }
    }
}

/// One row of the diff table.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffEntry {
    /// Series identifier (`hm_makespan_seconds{...}`, bench name, or
    /// JSON path).
    pub name: String,
    /// The verdict for this series.
    pub verdict: DiffVerdict,
    /// Baseline value (run A), if present.
    pub a: Option<f64>,
    /// Candidate value (run B), if present.
    pub b: Option<f64>,
    /// Relative change in percent, `(b - a) / |a| × 100`; 0 when either
    /// side is missing or the baseline is 0 with b equal.
    pub delta_pct: f64,
}

/// The comparison of two runs: a verdict per series, ordered by name.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunDiff {
    /// Per-series verdicts, sorted by series name.
    pub entries: Vec<DiffEntry>,
    /// The tolerance (percent) the verdicts were computed with.
    pub tolerance_pct: f64,
}

/// True when the series name denotes a duration, where smaller is better.
fn lower_is_better(name: &str) -> bool {
    name.contains("seconds")
        || name.contains("makespan")
        || name.contains("nanos")
        || name.contains("_ns")
        || name.contains("mean_ns")
}

/// Extract comparable `(name, value)` pairs from one export.
fn extract(v: &serde_json::Value) -> Vec<(String, f64)> {
    // Shape 1: a MetricsRegistry export.
    if let Ok(reg) = MetricsRegistry::from_value(v) {
        if !reg.series.is_empty() {
            let mut out = Vec::new();
            for (id, series) in &reg.series {
                match &series.value {
                    super::metrics::SeriesValue::Counter(c) => out.push((id.clone(), *c as f64)),
                    super::metrics::SeriesValue::Gauge(g) => out.push((id.clone(), *g)),
                    super::metrics::SeriesValue::Histogram(h) => {
                        out.push((format!("{id}.count"), h.count as f64));
                        out.push((format!("{id}.sum_seconds"), h.sum_nanos as f64 / 1e9));
                        out.push((format!("{id}.p50_seconds"), h.quantile(0.50)));
                        out.push((format!("{id}.p95_seconds"), h.quantile(0.95)));
                        out.push((format!("{id}.p99_seconds"), h.quantile(0.99)));
                    }
                }
            }
            return out;
        }
    }
    // Shape 2: a bench file with named mean_ns results.
    if let Some(m) = v.as_map() {
        if let Some(results) = m
            .iter()
            .find(|(k, _)| k == "results")
            .and_then(|(_, v)| v.as_array())
        {
            let mut out = Vec::new();
            for r in results {
                let name = r["name"].as_str();
                let mean = r["mean_ns"]
                    .as_f64()
                    .or_else(|| r["mean_ns"].as_u64().map(|u| u as f64));
                if let (Some(name), Some(mean)) = (name, mean) {
                    out.push((format!("{name}.mean_ns"), mean));
                }
            }
            if !out.is_empty() {
                return out;
            }
        }
    }
    // Shape 3: generic numeric leaves by path.
    let mut out = Vec::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &serde_json::Value, path: String, out: &mut Vec<(String, f64)>) {
    use serde_json::Value;
    match v {
        Value::U64(u) => out.push((path, *u as f64)),
        Value::I64(i) => out.push((path, *i as f64)),
        Value::F64(f) => out.push((path, *f)),
        Value::Map(m) => {
            for (k, v) in m {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(v, p, out);
            }
        }
        Value::Seq(s) => {
            for (i, v) in s.iter().enumerate() {
                walk(v, format!("{path}[{i}]"), out);
            }
        }
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

impl RunDiff {
    /// Compare two JSON exports (candidate `b` against baseline `a`) with
    /// a symmetric relative tolerance in percent.
    pub fn between(
        a_json: &str,
        b_json: &str,
        tolerance_pct: f64,
    ) -> Result<RunDiff, serde::Error> {
        let a: serde_json::Value = serde_json::from_str(a_json)
            .map_err(|e| serde::Error::custom(format!("baseline: {e}")))?;
        let b: serde_json::Value = serde_json::from_str(b_json)
            .map_err(|e| serde::Error::custom(format!("candidate: {e}")))?;
        let mut names: Vec<String> = Vec::new();
        let amap: std::collections::BTreeMap<String, f64> = extract(&a).into_iter().collect();
        let bmap: std::collections::BTreeMap<String, f64> = extract(&b).into_iter().collect();
        names.extend(amap.keys().cloned());
        names.extend(bmap.keys().filter(|k| !amap.contains_key(*k)).cloned());
        names.sort();
        let entries = names
            .into_iter()
            .map(|name| {
                let av = amap.get(&name).copied();
                let bv = bmap.get(&name).copied();
                let (verdict, delta_pct) = match (av, bv) {
                    (None, Some(_)) => (DiffVerdict::New, 0.0),
                    (Some(_), None) => (DiffVerdict::Missing, 0.0),
                    (Some(a), Some(b)) => {
                        let delta_pct = if a == b {
                            0.0
                        } else if a == 0.0 {
                            100.0 * b.signum()
                        } else {
                            (b - a) / a.abs() * 100.0
                        };
                        let verdict = if delta_pct.abs() <= tolerance_pct {
                            DiffVerdict::Unchanged
                        } else if lower_is_better(&name) && delta_pct < 0.0 {
                            DiffVerdict::Improved
                        } else {
                            DiffVerdict::Regressed
                        };
                        (verdict, delta_pct)
                    }
                    (None, None) => unreachable!("name came from one of the maps"),
                };
                DiffEntry {
                    name,
                    verdict,
                    a: av,
                    b: bv,
                    delta_pct,
                }
            })
            .collect();
        Ok(RunDiff {
            entries,
            tolerance_pct,
        })
    }

    /// True when any series regressed or went missing.
    pub fn has_regressions(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.verdict, DiffVerdict::Regressed | DiffVerdict::Missing))
    }

    /// Count entries with the given verdict.
    pub fn count(&self, verdict: DiffVerdict) -> usize {
        self.entries.iter().filter(|e| e.verdict == verdict).count()
    }

    /// Render the verdict table (one row per series plus a summary line).
    pub fn render(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<w$}  {:>14}  {:>14}  {:>9}  verdict\n",
            "series",
            "baseline",
            "candidate",
            "delta",
            w = width
        ));
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.6}"),
            None => "-".to_string(),
        };
        for e in &self.entries {
            out.push_str(&format!(
                "{:<w$}  {:>14}  {:>14}  {:>8.2}%  {}\n",
                e.name,
                fmt(e.a),
                fmt(e.b),
                e.delta_pct,
                e.verdict.name(),
                w = width
            ));
        }
        out.push_str(&format!(
            "{} series: {} improved, {} regressed, {} unchanged, {} new, {} missing (tolerance {}%)\n",
            self.entries.len(),
            self.count(DiffVerdict::Improved),
            self.count(DiffVerdict::Regressed),
            self.count(DiffVerdict::Unchanged),
            self.count(DiffVerdict::New),
            self.count(DiffVerdict::Missing),
            self.tolerance_pct,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_registries_diff_clean() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("hm_tasks_total", "Tasks.", &[("strategy", "t")], 4);
        reg.gauge_set(
            "hm_makespan_seconds",
            "Makespan.",
            &[("strategy", "t")],
            1.5,
        );
        let json = reg.to_json();
        let diff = RunDiff::between(&json, &json, 0.0).unwrap();
        assert!(!diff.has_regressions());
        assert!(diff
            .entries
            .iter()
            .all(|e| e.verdict == DiffVerdict::Unchanged));
    }

    #[test]
    fn time_like_improvement_and_regression_have_direction() {
        let mut a = MetricsRegistry::new();
        a.gauge_set(
            "hm_makespan_seconds",
            "Makespan.",
            &[("strategy", "t")],
            2.0,
        );
        a.counter_add("hm_tasks_total", "Tasks.", &[("strategy", "t")], 4);
        let mut b = MetricsRegistry::new();
        b.gauge_set(
            "hm_makespan_seconds",
            "Makespan.",
            &[("strategy", "t")],
            1.0,
        );
        b.counter_add("hm_tasks_total", "Tasks.", &[("strategy", "t")], 5);
        let diff = RunDiff::between(&a.to_json(), &b.to_json(), 0.0).unwrap();
        let makespan = diff
            .entries
            .iter()
            .find(|e| e.name.starts_with("hm_makespan_seconds"))
            .unwrap();
        assert_eq!(makespan.verdict, DiffVerdict::Improved);
        assert_eq!(makespan.delta_pct, -50.0);
        // A task-count drift is a regression even though it "went up".
        let tasks = diff
            .entries
            .iter()
            .find(|e| e.name.starts_with("hm_tasks_total"))
            .unwrap();
        assert_eq!(tasks.verdict, DiffVerdict::Regressed);
        assert!(diff.has_regressions());
    }

    #[test]
    fn tolerance_absorbs_small_moves_and_missing_regresses() {
        let mut a = MetricsRegistry::new();
        a.gauge_set(
            "hm_makespan_seconds",
            "Makespan.",
            &[("strategy", "t")],
            1.00,
        );
        a.counter_add("hm_retries_total", "Retries.", &[("strategy", "t")], 2);
        let mut b = MetricsRegistry::new();
        b.gauge_set(
            "hm_makespan_seconds",
            "Makespan.",
            &[("strategy", "t")],
            1.02,
        );
        let diff = RunDiff::between(&a.to_json(), &b.to_json(), 5.0).unwrap();
        let makespan = diff
            .entries
            .iter()
            .find(|e| e.name.starts_with("hm_makespan_seconds"))
            .unwrap();
        assert_eq!(makespan.verdict, DiffVerdict::Unchanged);
        let retries = diff
            .entries
            .iter()
            .find(|e| e.name.starts_with("hm_retries_total"))
            .unwrap();
        assert_eq!(retries.verdict, DiffVerdict::Missing);
        assert!(diff.has_regressions());
    }

    #[test]
    fn bench_files_compare_by_mean_ns() {
        let a = r#"{"pr": 8, "bench": "journal", "results": [
            {"name": "record", "mean_ns": 1000.0, "units": 1, "unit": "run"},
            {"name": "resume", "mean_ns": 2000.0, "units": 1, "unit": "run"}
        ]}"#;
        let b = r#"{"pr": 9, "bench": "journal", "results": [
            {"name": "record", "mean_ns": 900.0, "units": 1, "unit": "run"},
            {"name": "resume", "mean_ns": 2500.0, "units": 1, "unit": "run"}
        ]}"#;
        let diff = RunDiff::between(a, b, 10.0).unwrap();
        assert_eq!(diff.entries.len(), 2);
        assert_eq!(diff.entries[0].name, "record.mean_ns");
        assert_eq!(diff.entries[0].verdict, DiffVerdict::Unchanged);
        assert_eq!(diff.entries[1].verdict, DiffVerdict::Regressed);
        let table = diff.render();
        assert!(table.contains("regressed"));
        assert!(table.contains("tolerance 10%"));
    }

    #[test]
    fn generic_json_diffs_by_path() {
        let a = r#"{"makespan": {"seconds": 3.0}, "tasks": [1, 2]}"#;
        let b = r#"{"makespan": {"seconds": 3.0}, "tasks": [1, 3]}"#;
        let diff = RunDiff::between(a, b, 0.0).unwrap();
        let changed: Vec<_> = diff
            .entries
            .iter()
            .filter(|e| e.verdict != DiffVerdict::Unchanged)
            .collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].name, "tasks[1]");
        assert_eq!(changed[0].verdict, DiffVerdict::Regressed);
    }
}
