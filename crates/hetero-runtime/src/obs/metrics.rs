//! A deterministic metrics registry: typed counters, gauges and log-bucketed
//! histograms with Prometheus text exposition and JSON export, plus the
//! built-in [`MetricsObserver`] that feeds it from executor events.
//!
//! Determinism is load-bearing: the simulator replays byte-for-byte from a
//! seed, and the exported metrics must too (CI diffs a double run). The
//! registry therefore keys series in a `BTreeMap` by their rendered identity
//! (`name{label="value",...}` with labels sorted by key) and renders floats
//! with Rust's shortest-roundtrip `Display` — no HashMap iteration order, no
//! locale, no timestamps.

use crate::program::{KernelId, TaskId};
use crate::stats::RunReport;
use crate::trace::TraceEvent;
use hetero_platform::{DeviceId, MemSpaceId, Platform, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

use super::Observer;

/// Number of log2 buckets in a [`LogHistogram`]. With a 1µs base bucket the
/// largest finite bound is `1µs × 2^26 ≈ 67s`; beyond that counts land in
/// the overflow (`+Inf`) bucket.
pub const HISTOGRAM_BUCKETS: usize = 27;

/// Base (smallest) bucket upper bound for [`LogHistogram`], in nanoseconds.
pub const HISTOGRAM_BASE_NANOS: u64 = 1_000;

/// A log2-bucketed latency histogram over virtual time. Bucket `i` counts
/// observations `≤ HISTOGRAM_BASE_NANOS << i`; larger observations go to the
/// overflow bucket (rendered as `+Inf`).
///
/// Serialization is hand-written: the JSON form carries the four stored
/// fields plus a computed `quantiles` object (`p50`/`p95`/`p99`, in
/// seconds). Deserialization reads only the stored fields — quantiles are
/// derived, so a value survives a JSON round-trip unchanged and two equal
/// histograms always serialize to identical bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: Vec<u64>,
    /// Observations above the largest finite bound.
    pub overflow: u64,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observations, in nanoseconds.
    pub sum_nanos: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            overflow: 0,
            count: 0,
            sum_nanos: 0,
        }
    }
}

impl LogHistogram {
    /// Record one observation.
    pub fn observe(&mut self, t: SimTime) {
        let ns = t.as_nanos();
        self.count += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(ns);
        for (i, b) in self.buckets.iter_mut().enumerate() {
            if ns <= HISTOGRAM_BASE_NANOS << i {
                *b += 1;
                return;
            }
        }
        self.overflow += 1;
    }

    /// Merge another histogram into this one (bucketwise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
    }

    /// The upper bound of bucket `i`, in seconds (for `le` labels).
    pub fn bound_secs(i: usize) -> f64 {
        (HISTOGRAM_BASE_NANOS << i) as f64 / 1e9
    }

    /// The quantile-`q` estimate, in seconds: the upper bound of the bucket
    /// containing the `⌈q·count⌉`-th observation (log-bucketed histograms
    /// resolve to bucket boundaries, the conservative upper estimate).
    /// Observations in the overflow bucket report the first bound past the
    /// largest finite one; an empty histogram reports `0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return Self::bound_secs(i);
            }
        }
        Self::bound_secs(HISTOGRAM_BUCKETS)
    }
}

impl Serialize for LogHistogram {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("buckets".into(), self.buckets.to_value()),
            ("overflow".into(), self.overflow.to_value()),
            ("count".into(), self.count.to_value()),
            ("sum_nanos".into(), self.sum_nanos.to_value()),
            (
                "quantiles".into(),
                serde::Value::Map(vec![
                    ("p50".into(), self.quantile(0.50).to_value()),
                    ("p95".into(), self.quantile(0.95).to_value()),
                    ("p99".into(), self.quantile(0.99).to_value()),
                ]),
            ),
        ])
    }
}

impl Deserialize for LogHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom(format!("expected LogHistogram map, got {v:?}")))?;
        Ok(LogHistogram {
            buckets: serde::de::field(m, "buckets", "LogHistogram")?,
            overflow: serde::de::field(m, "overflow", "LogHistogram")?,
            count: serde::de::field(m, "count", "LogHistogram")?,
            sum_nanos: serde::de::field(m, "sum_nanos", "LogHistogram")?,
        })
    }
}

/// The value of one series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SeriesValue {
    /// A monotonically increasing integer.
    Counter(u64),
    /// A point-in-time float.
    Gauge(f64),
    /// A latency distribution.
    Histogram(LogHistogram),
}

/// One labeled series in the registry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Metric name (Prometheus naming conventions, `hm_` prefix).
    pub name: String,
    /// Help text emitted as `# HELP`.
    pub help: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The series value.
    pub value: SeriesValue,
}

impl Series {
    /// The rendered registry identity of this series:
    /// `name{label="value",...}` with labels sorted by key (the key the
    /// registry stores it under, and the id streaming deltas carry).
    pub fn id(&self) -> String {
        series_id(&self.name, &self.labels)
    }
}

/// A registry of labeled series with deterministic iteration and export.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Series keyed by rendered identity `name{k="v",...}`.
    pub series: BTreeMap<String, Series>,
}

fn series_id(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut id = String::from(name);
    id.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            id.push(',');
        }
        let _ = write!(id, "{k}=\"{v}\"");
    }
    id.push('}');
    id
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    ls
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        init: impl FnOnce() -> SeriesValue,
    ) -> &mut Series {
        let ls = sorted_labels(labels);
        let id = series_id(name, &ls);
        self.series.entry(id).or_insert_with(|| Series {
            name: name.to_string(),
            help: help.to_string(),
            labels: ls,
            value: init(),
        })
    }

    /// Add `delta` to a counter series, creating it at zero if absent.
    pub fn counter_add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], delta: u64) {
        let s = self.entry(name, help, labels, || SeriesValue::Counter(0));
        if let SeriesValue::Counter(c) = &mut s.value {
            *c += delta;
        }
    }

    /// Set a gauge series to `value`.
    pub fn gauge_set(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let s = self.entry(name, help, labels, || SeriesValue::Gauge(0.0));
        if let SeriesValue::Gauge(g) = &mut s.value {
            *g = value;
        }
    }

    /// Raise a gauge series to `value` if larger (high-water mark).
    pub fn gauge_max(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let s = self.entry(name, help, labels, || SeriesValue::Gauge(f64::NEG_INFINITY));
        if let SeriesValue::Gauge(g) = &mut s.value {
            if value > *g {
                *g = value;
            }
        }
    }

    /// Record an observation into a histogram series.
    pub fn observe(&mut self, name: &str, help: &str, labels: &[(&str, &str)], t: SimTime) {
        let s = self.entry(name, help, labels, || {
            SeriesValue::Histogram(LogHistogram::default())
        });
        if let SeriesValue::Histogram(h) = &mut s.value {
            h.observe(t);
        }
    }

    /// Merge another registry: counters add, histograms merge bucketwise,
    /// gauges take the maximum. Series absent here are copied.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (id, s) in &other.series {
            match self.series.get_mut(id) {
                None => {
                    self.series.insert(id.clone(), s.clone());
                }
                Some(mine) => match (&mut mine.value, &s.value) {
                    (SeriesValue::Counter(a), SeriesValue::Counter(b)) => *a += b,
                    (SeriesValue::Gauge(a), SeriesValue::Gauge(b)) if *b > *a => *a = *b,
                    (SeriesValue::Histogram(a), SeriesValue::Histogram(b)) => a.merge(b),
                    _ => {}
                },
            }
        }
    }

    /// Render the registry in the Prometheus text exposition format.
    /// Deterministic: metric families sorted by name, series by label
    /// identity, histograms expanded to cumulative `_bucket`/`_sum`/`_count`.
    pub fn to_prometheus(&self) -> String {
        let mut families: BTreeMap<&str, Vec<&Series>> = BTreeMap::new();
        for s in self.series.values() {
            families.entry(&s.name).or_default().push(s);
        }
        let mut out = String::new();
        for (name, series) in families {
            let (help, kind) = {
                let s = series[0];
                let kind = match s.value {
                    SeriesValue::Counter(_) => "counter",
                    SeriesValue::Gauge(_) => "gauge",
                    SeriesValue::Histogram(_) => "histogram",
                };
                (&s.help, kind)
            };
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for s in series {
                let id = series_id(&s.name, &s.labels);
                match &s.value {
                    SeriesValue::Counter(c) => {
                        let _ = writeln!(out, "{id} {c}");
                    }
                    SeriesValue::Gauge(g) => {
                        let _ = writeln!(out, "{id} {g}");
                    }
                    SeriesValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for (i, b) in h.buckets.iter().enumerate() {
                            cum += b;
                            let mut labels = s.labels.clone();
                            labels.push(("le".into(), format!("{}", LogHistogram::bound_secs(i))));
                            labels.sort();
                            let _ = writeln!(
                                out,
                                "{} {cum}",
                                series_id(&format!("{name}_bucket"), &labels)
                            );
                        }
                        let mut labels = s.labels.clone();
                        labels.push(("le".into(), "+Inf".into()));
                        labels.sort();
                        let _ = writeln!(
                            out,
                            "{} {}",
                            series_id(&format!("{name}_bucket"), &labels),
                            cum + h.overflow
                        );
                        let sum = h.sum_nanos as f64 / 1e9;
                        let _ = writeln!(
                            out,
                            "{} {sum}",
                            series_id(&format!("{name}_sum"), &s.labels)
                        );
                        let _ = writeln!(
                            out,
                            "{} {}",
                            series_id(&format!("{name}_count"), &s.labels),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }

    /// Render the registry as pretty-printed JSON (via serde).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics registry serializes")
    }
}

/// The built-in metrics sink: implements [`Observer`] and feeds a
/// [`MetricsRegistry`] with the metric catalog documented in DESIGN.md §8.3
/// (task latency, transfer bytes/latency, queue depth, fault and adaptation
/// counts, per-epoch per-device utilization, and the final makespan plus
/// blame components).
#[derive(Clone, Debug)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
    strategy: String,
    dev_names: Vec<String>,
    dev_slots: Vec<u64>,
    epoch_busy: Vec<SimTime>,
    last_flush_end: SimTime,
    queue_peak: Vec<usize>,
}

impl MetricsObserver {
    /// A metrics sink for one run of `strategy` on `platform`. The strategy
    /// string becomes the `strategy` label on every series.
    pub fn new(platform: &Platform, strategy: &str) -> Self {
        let n = platform.devices.len();
        Self {
            registry: MetricsRegistry::new(),
            strategy: strategy.to_string(),
            dev_names: platform
                .devices
                .iter()
                .map(|d| d.spec.name.clone())
                .collect(),
            dev_slots: platform
                .devices
                .iter()
                .map(|d| d.spec.kind.slots() as u64)
                .collect(),
            epoch_busy: vec![SimTime::ZERO; n],
            last_flush_end: SimTime::ZERO,
            queue_peak: vec![0; n],
        }
    }

    /// The registry accumulated so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consume the observer and return its registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    fn fault_kind(ev: &TraceEvent) -> &'static str {
        match ev {
            TraceEvent::TaskFault { .. } => "task_fault",
            TraceEvent::TransferRetry { .. } => "transfer_retry",
            TraceEvent::DeviceDropout { .. } => "dropout",
            TraceEvent::Failover { .. } => "failover",
            TraceEvent::HedgeLaunched { .. } => "hedge_launched",
            TraceEvent::HedgeWon { .. } => "hedge_won",
            TraceEvent::CorruptionDetected { .. } => "corruption_detected",
            TraceEvent::CircuitOpen { .. } => "circuit_open",
            TraceEvent::CircuitClose { .. } => "circuit_close",
            TraceEvent::CorrelatedFaultTriggered { .. } => "correlated",
            _ => "other",
        }
    }

    fn adapt_kind(ev: &TraceEvent) -> &'static str {
        match ev {
            TraceEvent::ImbalanceDetected { .. } => "imbalance_detected",
            TraceEvent::Repartitioned { .. } => "repartitioned",
            TraceEvent::StrategyEscalated { .. } => "escalated",
            TraceEvent::StrategyReinstated { .. } => "reinstated",
            TraceEvent::PlanRepaired { .. } => "plan_repaired",
            TraceEvent::DeviceReadmitted { .. } => "device_readmitted",
            _ => "other",
        }
    }

    fn dev_name(&self, dev: DeviceId) -> &str {
        self.dev_names
            .get(dev.0)
            .map(String::as_str)
            .unwrap_or("unknown")
    }
}

impl Observer for MetricsObserver {
    fn on_task_start(
        &mut self,
        _task: TaskId,
        kernel: KernelId,
        dev: DeviceId,
        items: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let strategy = self.strategy.clone();
        let device = self.dev_name(dev).to_string();
        let kernel = format!("k{}", kernel.0);
        let labels: &[(&str, &str)] = &[
            ("device", device.as_str()),
            ("kernel", kernel.as_str()),
            ("strategy", strategy.as_str()),
        ];
        self.registry.counter_add(
            "hm_tasks_total",
            "Task instances committed to a device slot.",
            labels,
            1,
        );
        self.registry.counter_add(
            "hm_task_items_total",
            "Work items across committed task instances.",
            labels,
            items,
        );
        self.registry.observe(
            "hm_task_slot_seconds",
            "Slot occupancy per task instance (transfers + attempts + execution).",
            labels,
            end.saturating_sub(start),
        );
        if let Some(b) = self.epoch_busy.get_mut(dev.0) {
            *b += end.saturating_sub(start);
        }
    }

    fn on_task_bound(&mut self, _task: TaskId, dev: DeviceId, _at: SimTime, queue_depth: usize) {
        if let Some(p) = self.queue_peak.get_mut(dev.0) {
            if queue_depth > *p {
                *p = queue_depth;
            }
        }
    }

    fn on_transfer(
        &mut self,
        _from: MemSpaceId,
        _to: MemSpaceId,
        bytes: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let strategy = self.strategy.clone();
        let labels: &[(&str, &str)] = &[("strategy", strategy.as_str())];
        self.registry.counter_add(
            "hm_transfers_total",
            "Coherence and write-back transfers.",
            labels,
            1,
        );
        self.registry.counter_add(
            "hm_transfer_bytes_total",
            "Bytes moved by coherence and write-back transfers.",
            labels,
            bytes,
        );
        self.registry.observe(
            "hm_transfer_seconds",
            "Latency per transfer.",
            labels,
            end.saturating_sub(start),
        );
    }

    fn on_epoch_end(&mut self, epoch: usize, _start: SimTime, end: SimTime) {
        let strategy = self.strategy.clone();
        let window = end.saturating_sub(self.last_flush_end);
        let epoch_s = format!("{epoch}");
        for d in 0..self.epoch_busy.len() {
            let device = self.dev_names[d].clone();
            let cap = window * self.dev_slots[d];
            let util = if cap.is_zero() {
                0.0
            } else {
                self.epoch_busy[d].as_secs_f64() / cap.as_secs_f64()
            };
            self.registry.gauge_set(
                "hm_epoch_utilization",
                "Fraction of a device's slot capacity busy within an epoch window.",
                &[
                    ("device", device.as_str()),
                    ("epoch", epoch_s.as_str()),
                    ("strategy", strategy.as_str()),
                ],
                util,
            );
            self.epoch_busy[d] = SimTime::ZERO;
        }
        self.last_flush_end = end;
    }

    fn on_fault(&mut self, ev: &TraceEvent) {
        let strategy = self.strategy.clone();
        self.registry.counter_add(
            "hm_faults_total",
            "Fault and mitigation events by kind.",
            &[
                ("kind", Self::fault_kind(ev)),
                ("strategy", strategy.as_str()),
            ],
            1,
        );
    }

    fn on_adapt_action(&mut self, ev: &TraceEvent) {
        let strategy = self.strategy.clone();
        self.registry.counter_add(
            "hm_adapt_total",
            "Adaptation events by kind.",
            &[
                ("kind", Self::adapt_kind(ev)),
                ("strategy", strategy.as_str()),
            ],
            1,
        );
    }

    fn on_run_end(&mut self, report: &RunReport) {
        let strategy = self.strategy.clone();
        self.registry.gauge_set(
            "hm_makespan_seconds",
            "Run makespan.",
            &[
                ("scheduler", report.scheduler.as_str()),
                ("strategy", strategy.as_str()),
            ],
            report.makespan.as_secs_f64(),
        );
        for (d, peak) in self.queue_peak.iter().enumerate() {
            let device = self.dev_names[d].clone();
            self.registry.gauge_max(
                "hm_queue_depth_peak",
                "High-water mark of a device's bound-task queue.",
                &[("device", device.as_str()), ("strategy", strategy.as_str())],
                *peak as f64,
            );
        }
        for (d, b) in report.breakdown.per_device.iter().enumerate() {
            let device = self
                .dev_names
                .get(d)
                .cloned()
                .unwrap_or_else(|| format!("dev{d}"));
            for (component, v) in b.components() {
                self.registry.gauge_set(
                    "hm_blame_seconds",
                    "Slot time attributed to each blame component.",
                    &[
                        ("component", component),
                        ("device", device.as_str()),
                        ("strategy", strategy.as_str()),
                    ],
                    v.as_secs_f64(),
                );
            }
        }
        // Quarantined time per device. The executor closes open-ended spans
        // at run end, but tolerate `until: None` (treat as "until makespan")
        // so a hand-built report still exports consistently.
        let mut quarantined: Vec<SimTime> = vec![SimTime::ZERO; self.dev_names.len()];
        for span in &report.health.quarantine {
            if let Some(q) = quarantined.get_mut(span.dev.0) {
                let until = span.until.unwrap_or(report.makespan);
                *q += until.saturating_sub(span.from);
            }
        }
        for (d, q) in quarantined.iter().enumerate() {
            if q.is_zero() {
                continue;
            }
            let device = self.dev_names[d].clone();
            self.registry.gauge_set(
                "hm_quarantine_seconds",
                "Total time a device spent quarantined by the circuit breaker.",
                &[("device", device.as_str()), ("strategy", strategy.as_str())],
                q.as_secs_f64(),
            );
        }
        let retries = report.faults.task_retries + report.faults.transfer_retries;
        for (name, help, v) in [
            (
                "hm_retries_total",
                "Task and transfer retries across the run.",
                retries,
            ),
            (
                "hm_hedges_won_total",
                "Hedged replicas that overtook their primary.",
                report.health.hedges_won,
            ),
            (
                "hm_rollbacks_total",
                "Epoch rollbacks after corruption detection.",
                report.health.epoch_rollbacks,
            ),
            (
                "hm_repartitions_total",
                "Barrier repartitions applied by the adaptive controller.",
                report.adapt.repartitions,
            ),
            (
                "hm_replans_total",
                "Survivor re-plans applied after device death or quarantine.",
                report.adapt.replans,
            ),
            (
                "hm_readmissions_total",
                "Healing re-plans that readmitted a reclosed device.",
                report.adapt.readmissions,
            ),
        ] {
            self.registry
                .counter_add(name, help, &[("strategy", strategy.as_str())], v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_export() {
        let mut h = LogHistogram::default();
        h.observe(SimTime::from_nanos(500)); // bucket 0 (≤ 1µs)
        h.observe(SimTime::from_micros(3)); // ≤ 4µs → bucket 2
        h.observe(SimTime::from_secs_f64(100.0)); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn quantiles_pin_bucket_boundaries() {
        // Empty histogram: every quantile is zero.
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        // Exact-boundary observations land in the bucket they bound:
        // `ns <= base << i` is inclusive, so 1µs is bucket 0 and 2µs bucket 1.
        let mut h = LogHistogram::default();
        h.observe(SimTime::from_micros(1));
        assert_eq!(h.buckets[0], 1);
        h.observe(SimTime::from_micros(2));
        assert_eq!(h.buckets[1], 1);
        // 50 obs in bucket 0, 45 in bucket 2, 5 in overflow: p50 resolves to
        // bucket 0's bound, p95 to bucket 2's, and p99 (rank 99 > largest
        // finite cumulative count 97) to the first bound past the table.
        let mut h = LogHistogram::default();
        for _ in 0..50 {
            h.observe(SimTime::from_nanos(500));
        }
        for _ in 0..45 {
            h.observe(SimTime::from_micros(3));
        }
        for _ in 0..5 {
            h.observe(SimTime::from_secs_f64(100.0));
        }
        assert_eq!(h.count, 100);
        assert_eq!(h.quantile(0.50), LogHistogram::bound_secs(0));
        assert_eq!(h.quantile(0.95), LogHistogram::bound_secs(2));
        assert_eq!(
            h.quantile(0.99),
            LogHistogram::bound_secs(HISTOGRAM_BUCKETS)
        );
        // A quantile beyond 1.0 clamps to the last observation's bucket.
        assert_eq!(h.quantile(1.0), LogHistogram::bound_secs(HISTOGRAM_BUCKETS));
    }

    #[test]
    fn histogram_json_carries_quantiles_and_round_trips() {
        let mut r = MetricsRegistry::new();
        for _ in 0..20 {
            r.observe("hm_lat", "lat", &[], SimTime::from_micros(2));
        }
        let json = r.to_json();
        assert!(
            json.contains("\"quantiles\""),
            "computed quantiles exported"
        );
        assert!(json.contains("\"p50\""));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"p99\""));
        // Quantiles are derived, not stored: the registry round-trips to an
        // equal value and re-serializes to identical bytes.
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn prometheus_export_is_deterministic_and_sorted() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hm_b", "b help", &[("x", "2")], 2);
        r.counter_add("hm_a", "a help", &[], 1);
        r.observe("hm_lat", "lat", &[], SimTime::from_micros(2));
        let a = r.to_prometheus();
        let b = r.to_prometheus();
        assert_eq!(a, b);
        let ia = a.find("# HELP hm_a").unwrap();
        let ib = a.find("# HELP hm_b").unwrap();
        assert!(ia < ib, "families sorted by name");
        assert!(a.contains("hm_lat_bucket{le=\"+Inf\"} 1"));
        assert!(a.contains("hm_lat_count 1"));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter_add("hm_c", "h", &[], 1);
        b.counter_add("hm_c", "h", &[], 2);
        b.gauge_set("hm_g", "h", &[], 4.0);
        a.merge(&b);
        match &a.series.get("hm_c").unwrap().value {
            SeriesValue::Counter(c) => assert_eq!(*c, 3),
            _ => panic!("counter expected"),
        }
        assert!(a.series.contains_key("hm_g"));
    }

    #[test]
    fn registry_json_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.counter_add("hm_c", "h", &[("device", "cpu")], 7);
        r.observe("hm_lat", "lat", &[], SimTime::from_micros(9));
        let json = r.to_json();
        let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
