//! Causal span profiling: lift the flat [`Trace`] into a run → epoch →
//! wave → task hierarchy with fault/mitigation child spans linked to their
//! causes.
//!
//! The trace records *what happened when*; this pass recovers *why time
//! went where*. Epochs come from the taskwait flush windows, waves from
//! greedy per-device lane assignment inside each epoch (two tasks share a
//! wave when one starts after the other's lane freed), and point events
//! (faults, retries, hedges, rollbacks, repartitions, plan repairs) attach
//! as zero-width child spans under the task or epoch that caused them,
//! with a `cause` string naming the causal link.
//!
//! Exports: Brendan-Gregg folded stacks ([`SpanTree::to_folded`], loadable
//! by speedscope and `flamegraph.pl` — `matchmake flame`), Chrome
//! trace-event flow arrows splicing causal links into
//! [`Trace::to_chrome_json`] output ([`SpanTree::to_chrome_json_with_flows`]),
//! and `hm_span_seconds{kind}` gauges ([`SpanTree::export_metrics`]) whose
//! task/dead/idle kinds exactly tile `makespan × slots` — the same total
//! the blame identity accounts for, checked by `tests/observability.rs`.

use super::metrics::MetricsRegistry;
use crate::trace::{Trace, TraceEvent};
use hetero_platform::{Platform, SimTime};
use serde::{Deserialize, Serialize};

/// What a [`Span`] represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// The whole run.
    Run,
    /// One taskwait epoch (barrier-to-barrier window, flush included).
    Epoch,
    /// One per-device lane of task instances within an epoch.
    Wave,
    /// One task instance's slot occupancy.
    Task,
    /// A faulted attempt inside a task slot (leads to a retry).
    Retry,
    /// A task re-dispatched to another device after its home died.
    Failover,
    /// A hedged replica launched against a slow primary.
    Hedge,
    /// A hedged replica overtaking its primary.
    HedgeWon,
    /// An epoch rollback after corruption detection.
    Rollback,
    /// A survivor re-plan after device death or quarantine.
    Replan,
    /// A healing re-plan readmitting a re-closed device.
    Readmission,
    /// A barrier repartition by the adaptive controller.
    Repartition,
    /// An imbalance detection that may trigger adaptation.
    Imbalance,
    /// Strategy escalation to a dynamic scheduler.
    Escalation,
    /// Reinstatement of the static plan after calm.
    Reinstatement,
    /// A permanent device death.
    Dropout,
    /// A circuit-breaker quarantine opening or closing.
    Circuit,
    /// A correlated-fault window triggering on a sibling device.
    Correlated,
}

impl SpanKind {
    /// Stable lower-case name (folded-stack frames, metric labels).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Epoch => "epoch",
            SpanKind::Wave => "wave",
            SpanKind::Task => "task",
            SpanKind::Retry => "retry",
            SpanKind::Failover => "failover",
            SpanKind::Hedge => "hedge",
            SpanKind::HedgeWon => "hedge_won",
            SpanKind::Rollback => "rollback",
            SpanKind::Replan => "replan",
            SpanKind::Readmission => "readmission",
            SpanKind::Repartition => "repartition",
            SpanKind::Imbalance => "imbalance",
            SpanKind::Escalation => "escalation",
            SpanKind::Reinstatement => "reinstatement",
            SpanKind::Dropout => "dropout",
            SpanKind::Circuit => "circuit",
            SpanKind::Correlated => "correlated",
        }
    }
}

/// One node of the causal hierarchy. Point events are zero-width spans
/// (`start == end`) carrying a `cause` string that names their causal link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// What this span represents.
    pub kind: SpanKind,
    /// Display label (`task3 (k0)`, `gpu wave 1`, `epoch 2`, ...).
    pub label: String,
    /// The device this span occupies, if it is device-bound.
    pub dev: Option<usize>,
    /// Span start (virtual time).
    pub start: SimTime,
    /// Span end; equals `start` for point events.
    pub end: SimTime,
    /// The causal link for fault/mitigation children (human-readable).
    pub cause: Option<String>,
    /// Nested spans.
    pub children: Vec<Span>,
}

impl Span {
    fn point(
        kind: SpanKind,
        label: String,
        dev: Option<usize>,
        at: SimTime,
        cause: String,
    ) -> Self {
        Span {
            kind,
            label,
            dev,
            start: at,
            end: at,
            cause: Some(cause),
            children: Vec::new(),
        }
    }
}

/// Per-device span totals: slot-seconds inside task spans, slot-seconds
/// dead after a dropout, and the idle remainder to `makespan × slots`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpanSeconds {
    /// Σ task slot spans on this device.
    pub task: SimTime,
    /// Post-dropout capacity, `(end − death) × slots`.
    pub dead: SimTime,
    /// `capacity − task − dead`.
    pub idle: SimTime,
}

/// The causal span hierarchy of one run. Build with
/// [`SpanTree::from_trace`]; the tree is a pure function of the trace, so
/// every export is byte-deterministic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// The root [`SpanKind::Run`] span; children are epochs.
    pub root: Span,
    /// Run end (the trace's latest event instant).
    pub end: SimTime,
    dev_names: Vec<String>,
    dev_slots: Vec<u64>,
    /// Death instant per device, if a dropout was observed.
    deaths: Vec<Option<SimTime>>,
}

/// Internal task-slot record used during construction.
struct Slot {
    task: usize,
    kernel: usize,
    dev: usize,
    start: SimTime,
    end: SimTime,
    epoch: usize,
    lane: usize,
    /// Retry-exhausted occupancy ([`TraceEvent::SlotHeld`]): the slot was
    /// burned by failed attempts and the task ran elsewhere.
    held: bool,
    children: Vec<Span>,
}

impl SpanTree {
    /// Lift `trace` into the causal hierarchy. Epoch windows come from the
    /// taskwait flush events (a trace without flushes gets one synthetic
    /// epoch spanning the whole run); waves are greedy per-device lanes
    /// within each epoch; fault/mitigation point events attach under the
    /// task or epoch span that contains them, labeled with their cause.
    pub fn from_trace(trace: &Trace, platform: &Platform) -> SpanTree {
        let end = trace.end_time();
        let dev_names: Vec<String> = platform
            .devices
            .iter()
            .map(|d| d.spec.name.clone())
            .collect();
        let dev_slots: Vec<u64> = platform
            .devices
            .iter()
            .map(|d| d.spec.kind.slots() as u64)
            .collect();

        // Epoch windows from flush events (in emission order): epoch i is
        // (previous flush end, flush_i end], with the first starting at 0.
        let mut epochs: Vec<(SimTime, SimTime)> = Vec::new();
        let mut prev = SimTime::ZERO;
        for e in &trace.events {
            if let TraceEvent::Flush { end: fe, .. } = e {
                epochs.push((prev, *fe));
                prev = *fe;
            }
        }
        if epochs.is_empty() {
            epochs.push((SimTime::ZERO, end));
        } else if prev < end {
            // Events past the final flush extend the last epoch to run end.
            epochs.last_mut().expect("non-empty").1 = end;
        }
        let epoch_of = |t: SimTime| -> usize {
            epochs
                .iter()
                .position(|&(_, e)| t <= e)
                .unwrap_or(epochs.len() - 1)
        };

        // Deaths first: task events are emitted at dispatch with their
        // projected end, so an attempt in flight when its device drops out
        // appears in the trace with a span past the death. The executor
        // takes that accounting back (the dead tail covers it); the span
        // tree mirrors it by clamping task slots at the device's death.
        let mut deaths: Vec<Option<SimTime>> = vec![None; dev_names.len()];
        for e in &trace.events {
            if let TraceEvent::DeviceDropout { dev, at } = e {
                if let Some(d) = deaths.get_mut(dev.0) {
                    d.get_or_insert(*at);
                }
            }
        }

        // Task slots: epoch by completion time, wave by greedy per-device
        // lane assignment restarted at each epoch boundary.
        let mut slots: Vec<Slot> = Vec::new();
        let mut lanes: Vec<Vec<SimTime>> = vec![Vec::new(); dev_names.len().max(1)];
        let mut lanes_epoch = 0usize;
        for e in &trace.events {
            match e {
                TraceEvent::Task {
                    task,
                    kernel,
                    dev,
                    start,
                    end,
                    ..
                }
                | TraceEvent::SlotHeld {
                    task,
                    kernel,
                    dev,
                    start,
                    end,
                } => {
                    let te = &match deaths.get(dev.0).copied().flatten() {
                        Some(d) if *end > d => d.max(*start),
                        _ => *end,
                    };
                    let epoch = epoch_of(*te);
                    if epoch != lanes_epoch {
                        lanes.iter_mut().for_each(Vec::clear);
                        lanes_epoch = epoch;
                    }
                    let li = dev.0.min(lanes.len() - 1);
                    let ls = &mut lanes[li];
                    let lane = match ls.iter().position(|&free| free <= *start) {
                        Some(i) => {
                            ls[i] = *te;
                            i
                        }
                        None => {
                            ls.push(*te);
                            ls.len() - 1
                        }
                    };
                    slots.push(Slot {
                        task: task.0,
                        kernel: kernel.0,
                        dev: dev.0,
                        start: *start,
                        end: *te,
                        epoch,
                        lane,
                        held: matches!(e, TraceEvent::SlotHeld { .. }),
                        children: Vec::new(),
                    });
                }
                _ => {}
            }
        }

        // Attach point events to their causal parents.
        let mut extras: Vec<Vec<Span>> = vec![Vec::new(); epochs.len()];
        let find_slot =
            |slots: &mut Vec<Slot>, task: usize, dev: usize, at: SimTime| -> Option<usize> {
                slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.task == task && s.dev == dev && s.start <= at && at <= s.end)
                    .map(|(i, _)| i)
                    .next_back()
            };
        let find_next_slot =
            |slots: &mut Vec<Slot>, task: usize, dev: usize, at: SimTime| -> Option<usize> {
                slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.task == task && s.dev == dev && s.end >= at)
                    .map(|(i, _)| i)
                    .next()
            };
        for e in &trace.events {
            match e {
                TraceEvent::TaskFault {
                    task,
                    dev,
                    attempt,
                    at,
                } => {
                    let span = Span::point(
                        SpanKind::Retry,
                        format!("retry attempt {attempt}"),
                        Some(dev.0),
                        *at,
                        format!("task{} attempt {attempt} faulted on dev{}", task.0, dev.0),
                    );
                    match find_slot(&mut slots, task.0, dev.0, *at) {
                        Some(i) => slots[i].children.push(span),
                        None => extras[epoch_of(*at)].push(span),
                    }
                }
                TraceEvent::Failover { task, from, to, at } => {
                    let span = Span::point(
                        SpanKind::Failover,
                        format!("failover task{}", task.0),
                        Some(to.0),
                        *at,
                        format!(
                            "task{} lost with dev{}, re-dispatched to dev{}",
                            task.0, from.0, to.0
                        ),
                    );
                    match find_next_slot(&mut slots, task.0, to.0, *at) {
                        Some(i) => slots[i].children.push(span),
                        None => extras[epoch_of(*at)].push(span),
                    }
                }
                TraceEvent::HedgeLaunched { task, from, to, at } => {
                    let span = Span::point(
                        SpanKind::Hedge,
                        format!("hedge task{}", task.0),
                        Some(to.0),
                        *at,
                        format!("slow primary on dev{}, replica on dev{}", from.0, to.0),
                    );
                    match find_next_slot(&mut slots, task.0, to.0, *at) {
                        Some(i) => slots[i].children.push(span),
                        None => extras[epoch_of(*at)].push(span),
                    }
                }
                TraceEvent::HedgeWon { task, dev, at } => {
                    let span = Span::point(
                        SpanKind::HedgeWon,
                        format!("hedge won task{}", task.0),
                        Some(dev.0),
                        *at,
                        format!("replica on dev{} overtook the primary", dev.0),
                    );
                    match find_slot(&mut slots, task.0, dev.0, *at) {
                        Some(i) => slots[i].children.push(span),
                        None => extras[epoch_of(*at)].push(span),
                    }
                }
                TraceEvent::CorruptionDetected { task, dev, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Rollback,
                        format!("rollback after task{}", task.0),
                        Some(dev.0),
                        *at,
                        format!("corruption detected in task{} on dev{}", task.0, dev.0),
                    ));
                }
                TraceEvent::DeviceDropout { dev, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Dropout,
                        format!("dropout dev{}", dev.0),
                        Some(dev.0),
                        *at,
                        format!("dev{} died permanently", dev.0),
                    ));
                }
                TraceEvent::CircuitOpen { dev, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Circuit,
                        format!("circuit open dev{}", dev.0),
                        Some(dev.0),
                        *at,
                        format!("breaker quarantined dev{}", dev.0),
                    ));
                }
                TraceEvent::CircuitClose { dev, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Circuit,
                        format!("circuit close dev{}", dev.0),
                        Some(dev.0),
                        *at,
                        format!("breaker reclosed dev{}", dev.0),
                    ));
                }
                TraceEvent::CorrelatedFaultTriggered {
                    domain,
                    source,
                    sibling,
                    at,
                    ..
                } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Correlated,
                        format!("correlated domain {domain}"),
                        Some(sibling.0),
                        *at,
                        format!("fault on dev{} propagated to dev{}", source.0, sibling.0),
                    ));
                }
                TraceEvent::ImbalanceDetected { epoch, skew, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Imbalance,
                        format!("imbalance epoch {epoch}"),
                        None,
                        *at,
                        format!("observed skew {skew:.2} at the barrier"),
                    ));
                }
                TraceEvent::Repartitioned {
                    epoch,
                    gpu_items,
                    cpu_items,
                    at,
                } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Repartition,
                        format!("repartition epoch {epoch}"),
                        None,
                        *at,
                        format!("observed imbalance; next epoch gpu {gpu_items} / cpu {cpu_items}"),
                    ));
                }
                TraceEvent::StrategyEscalated { epoch, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Escalation,
                        format!("escalate epoch {epoch}"),
                        None,
                        *at,
                        "repartition budget exhausted; switching to DP-Perf".into(),
                    ));
                }
                TraceEvent::StrategyReinstated { epoch, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Reinstatement,
                        format!("reinstate epoch {epoch}"),
                        None,
                        *at,
                        "calm restored; returning to the static plan".into(),
                    ));
                }
                TraceEvent::PlanRepaired { dev, moved, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Replan,
                        format!("plan repair after dev{}", dev.0),
                        Some(dev.0),
                        *at,
                        format!(
                            "dev{} lost; {moved} chunks re-planned onto survivors",
                            dev.0
                        ),
                    ));
                }
                TraceEvent::DeviceReadmitted { dev, moved, at } => {
                    extras[epoch_of(*at)].push(Span::point(
                        SpanKind::Readmission,
                        format!("readmit dev{}", dev.0),
                        Some(dev.0),
                        *at,
                        format!("dev{} reclosed; {moved} chunks moved back", dev.0),
                    ));
                }
                TraceEvent::Task { .. }
                | TraceEvent::SlotHeld { .. }
                | TraceEvent::Transfer { .. }
                | TraceEvent::TransferRetry { .. }
                | TraceEvent::Flush { .. } => {}
            }
        }

        // Assemble: run → epochs → waves → tasks.
        let dev_label =
            |d: usize| -> &str { dev_names.get(d).map(String::as_str).unwrap_or("unknown") };
        let mut epoch_spans: Vec<Span> = epochs
            .iter()
            .enumerate()
            .map(|(i, &(s, e))| Span {
                kind: SpanKind::Epoch,
                label: format!("epoch {i}"),
                dev: None,
                start: s,
                end: e,
                cause: None,
                children: Vec::new(),
            })
            .collect();
        // Group slots into waves keyed (epoch, dev, lane), preserving
        // submission order inside each wave.
        let mut waves: std::collections::BTreeMap<(usize, usize, usize), Span> =
            std::collections::BTreeMap::new();
        for slot in slots {
            let wave = waves
                .entry((slot.epoch, slot.dev, slot.lane))
                .or_insert_with(|| Span {
                    kind: SpanKind::Wave,
                    label: format!("{} wave {}", dev_label(slot.dev), slot.lane),
                    dev: Some(slot.dev),
                    start: slot.start,
                    end: slot.end,
                    cause: None,
                    children: Vec::new(),
                });
            wave.start = wave.start.min(slot.start);
            wave.end = wave.end.max(slot.end);
            wave.children.push(Span {
                kind: SpanKind::Task,
                label: if slot.held {
                    format!("task{} held (k{})", slot.task, slot.kernel)
                } else {
                    format!("task{} (k{})", slot.task, slot.kernel)
                },
                dev: Some(slot.dev),
                start: slot.start,
                end: slot.end,
                cause: None,
                children: slot.children,
            });
        }
        for ((epoch, _, _), wave) in waves {
            epoch_spans[epoch].children.push(wave);
        }
        for (epoch, mut ex) in extras.into_iter().enumerate() {
            ex.sort_by_key(|s| s.start);
            epoch_spans[epoch].children.append(&mut ex);
        }
        SpanTree {
            root: Span {
                kind: SpanKind::Run,
                label: "run".into(),
                dev: None,
                start: SimTime::ZERO,
                end,
                cause: None,
                children: epoch_spans,
            },
            end,
            dev_names,
            dev_slots,
            deaths,
        }
    }

    /// Total number of spans in the tree, root and point children
    /// included.
    pub fn span_count(&self) -> usize {
        fn count(span: &Span) -> usize {
            1 + span.children.iter().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// Per-device task/dead/idle slot-second totals. The three kinds tile
    /// the device's capacity exactly: `task + dead + idle = end × slots`,
    /// the same total the blame identity accounts for.
    pub fn device_span_seconds(&self) -> Vec<DeviceSpanSeconds> {
        let mut busy: Vec<SimTime> = vec![SimTime::ZERO; self.dev_names.len()];
        for epoch in &self.root.children {
            for wave in &epoch.children {
                if wave.kind != SpanKind::Wave {
                    continue;
                }
                for task in &wave.children {
                    if let Some(d) = task.dev {
                        if let Some(b) = busy.get_mut(d) {
                            *b += task.end.saturating_sub(task.start);
                        }
                    }
                }
            }
        }
        (0..self.dev_names.len())
            .map(|d| {
                let slots = self.dev_slots[d];
                let capacity = self.end * slots;
                let task = busy[d];
                let dead = self.deaths[d]
                    .map(|at| self.end.saturating_sub(at) * slots)
                    .unwrap_or(SimTime::ZERO);
                DeviceSpanSeconds {
                    task,
                    dead,
                    idle: capacity.saturating_sub(task).saturating_sub(dead),
                }
            })
            .collect()
    }

    /// Export `hm_span_seconds{kind,device,strategy}` gauges into
    /// `registry`. The task/dead/idle kinds tile `end × slots` per device.
    pub fn export_metrics(&self, registry: &mut MetricsRegistry, strategy: &str) {
        for (d, s) in self.device_span_seconds().iter().enumerate() {
            let device = self.dev_names[d].as_str();
            for (kind, v) in [("task", s.task), ("dead", s.dead), ("idle", s.idle)] {
                registry.gauge_set(
                    "hm_span_seconds",
                    "Slot time per span kind; task+dead+idle tile makespan×slots.",
                    &[("device", device), ("kind", kind), ("strategy", strategy)],
                    v.as_secs_f64(),
                );
            }
        }
    }

    /// Render Brendan-Gregg folded stacks (one `frame;frame;... value`
    /// line per task slot, values in nanoseconds) — the input format of
    /// speedscope and `flamegraph.pl`. Zero-width point children annotate
    /// the task frame with a `+retry`/`+hedge`/... suffix so mitigated
    /// tasks stand out in the flame graph.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for epoch in &self.root.children {
            for wave in &epoch.children {
                if wave.kind != SpanKind::Wave {
                    continue;
                }
                for task in &wave.children {
                    let mut frame = task.label.clone();
                    for c in &task.children {
                        frame.push('+');
                        frame.push_str(c.kind.name());
                    }
                    out.push_str(&format!(
                        "{};{};{};{} {}\n",
                        self.root.label,
                        epoch.label,
                        wave.label,
                        frame,
                        task.end.saturating_sub(task.start).as_nanos()
                    ));
                }
            }
        }
        out
    }

    /// [`Trace::to_chrome_json`] with causal flow arrows spliced in:
    /// `ph:"s"`/`ph:"f"` event pairs linking each failover and hedge launch
    /// to the task slot it caused, and each repartition/plan-repair/
    /// readmission to the first task dispatched after it. Lane (tid)
    /// assignment replays the chrome exporter's greedy algorithm so arrows
    /// land on the rendered slices.
    pub fn to_chrome_json_with_flows(trace: &Trace, platform: &Platform) -> String {
        // Replay the chrome exporter's global greedy lane assignment.
        let mut lanes: Vec<Vec<SimTime>> = platform.devices.iter().map(|_| Vec::new()).collect();
        // (task, dev, start, lane) per slot, in trace order.
        let mut slots: Vec<(usize, usize, SimTime, usize)> = Vec::new();
        for e in &trace.events {
            if let TraceEvent::Task {
                task,
                dev,
                start,
                end,
                ..
            }
            | TraceEvent::SlotHeld {
                task,
                dev,
                start,
                end,
                ..
            } = e
            {
                let ls = &mut lanes[dev.0];
                let lane = match ls.iter().position(|&free| free <= *start) {
                    Some(i) => {
                        ls[i] = *end;
                        i
                    }
                    None => {
                        ls.push(*end);
                        ls.len() - 1
                    }
                };
                slots.push((task.0, dev.0, *start, lane));
            }
        }
        let next_slot = |task: usize, dev: usize, at: SimTime| {
            slots
                .iter()
                .find(|&&(t, d, s, _)| t == task && d == dev && s >= at)
                .copied()
        };
        let first_slot_after = |at: SimTime| slots.iter().find(|&&(_, _, s, _)| s >= at).copied();
        let mut flows: Vec<serde_json::Value> = Vec::new();
        let mut id = 0u64;
        let mut arrow = |name: String,
                         from: (usize, usize, SimTime),
                         to: (usize, usize, SimTime),
                         flows: &mut Vec<serde_json::Value>| {
            id += 1;
            for (ph, (pid, tid, ts)) in [("s", from), ("f", to)] {
                let mut m = vec![
                    ("name".to_string(), serde_json::Value::Str(name.clone())),
                    ("ph".to_string(), serde_json::Value::Str(ph.into())),
                    ("id".to_string(), serde_json::Value::U64(id)),
                    ("ts".to_string(), serde_json::Value::F64(ts.as_micros_f64())),
                    ("pid".to_string(), serde_json::Value::U64(pid as u64)),
                    ("tid".to_string(), serde_json::Value::U64(tid as u64)),
                ];
                if ph == "f" {
                    m.push(("bp".to_string(), serde_json::Value::Str("e".into())));
                }
                flows.push(serde_json::Value::Map(m));
            }
        };
        let interconnect = platform.devices.len();
        for e in &trace.events {
            match e {
                TraceEvent::Failover { task, from, to, at } => {
                    if let Some((_, d, s, lane)) = next_slot(task.0, to.0, *at) {
                        arrow(
                            format!("failover task{}", task.0),
                            (from.0, 63, *at),
                            (d, lane, s),
                            &mut flows,
                        );
                    }
                }
                TraceEvent::HedgeLaunched { task, from, to, at } => {
                    if let Some((_, d, s, lane)) = next_slot(task.0, to.0, *at) {
                        arrow(
                            format!("hedge task{}", task.0),
                            (from.0, 63, *at),
                            (d, lane, s),
                            &mut flows,
                        );
                    }
                }
                TraceEvent::Repartitioned { epoch, at, .. } => {
                    if let Some((_, d, s, lane)) = first_slot_after(*at) {
                        arrow(
                            format!("repartition epoch {epoch}"),
                            (interconnect, 63, *at),
                            (d, lane, s),
                            &mut flows,
                        );
                    }
                }
                TraceEvent::PlanRepaired { dev, at, .. } => {
                    if let Some((_, d, s, lane)) = first_slot_after(*at) {
                        arrow(
                            format!("plan repair after dev{}", dev.0),
                            (interconnect, 63, *at),
                            (d, lane, s),
                            &mut flows,
                        );
                    }
                }
                TraceEvent::DeviceReadmitted { dev, at, .. } => {
                    if let Some((_, d, s, lane)) = first_slot_after(*at) {
                        arrow(
                            format!("readmit dev{}", dev.0),
                            (interconnect, 63, *at),
                            (d, lane, s),
                            &mut flows,
                        );
                    }
                }
                _ => {}
            }
        }
        let base = trace.to_chrome_json(platform);
        let mut all: serde_json::Value = serde_json::from_str(&base).expect("chrome JSON parses");
        if let serde_json::Value::Seq(events) = &mut all {
            events.extend(flows);
        }
        serde_json::to_string_pretty(&all).expect("chrome JSON serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{KernelId, TaskId};
    use hetero_platform::DeviceId;

    fn task(task: usize, dev: usize, s: u64, e: u64) -> TraceEvent {
        TraceEvent::Task {
            task: TaskId(task),
            kernel: KernelId(0),
            dev: DeviceId(dev),
            items: 1,
            start: SimTime::from_micros(s),
            end: SimTime::from_micros(e),
        }
    }

    fn flush(epoch: usize, s: u64, e: u64) -> TraceEvent {
        TraceEvent::Flush {
            epoch,
            start: SimTime::from_micros(s),
            end: SimTime::from_micros(e),
        }
    }

    #[test]
    fn epochs_waves_and_tasks_nest() {
        let platform = Platform::test_small();
        let trace = Trace {
            events: vec![
                task(0, 0, 0, 10),
                task(1, 0, 5, 20), // overlaps task 0 → second wave
                flush(0, 20, 22),
                task(2, 1, 22, 30),
                flush(1, 30, 31),
            ],
        };
        let tree = SpanTree::from_trace(&trace, &platform);
        assert_eq!(tree.root.kind, SpanKind::Run);
        assert_eq!(tree.root.children.len(), 2, "two epochs");
        let e0 = &tree.root.children[0];
        let w: Vec<_> = e0
            .children
            .iter()
            .filter(|c| c.kind == SpanKind::Wave)
            .collect();
        assert_eq!(w.len(), 2, "overlapping tasks occupy two waves");
        assert_eq!(tree.root.children[1].children.len(), 1);
        // Folded stacks: one line per task, nanosecond weights.
        let folded = tree.to_folded();
        assert_eq!(folded.lines().count(), 3);
        assert!(folded.contains("run;epoch 0;"));
        assert!(folded.contains("task2 (k0) 8000"));
    }

    #[test]
    fn retries_attach_to_their_task_and_dropouts_to_their_epoch() {
        let platform = Platform::test_small();
        let trace = Trace {
            events: vec![
                task(0, 1, 0, 10),
                TraceEvent::TaskFault {
                    task: TaskId(0),
                    dev: DeviceId(1),
                    attempt: 1,
                    at: SimTime::from_micros(4),
                },
                TraceEvent::DeviceDropout {
                    dev: DeviceId(1),
                    at: SimTime::from_micros(12),
                },
                flush(0, 14, 15),
            ],
        };
        let tree = SpanTree::from_trace(&trace, &platform);
        let e0 = &tree.root.children[0];
        let wave = e0
            .children
            .iter()
            .find(|c| c.kind == SpanKind::Wave)
            .unwrap();
        let t0 = &wave.children[0];
        assert_eq!(t0.children.len(), 1);
        assert_eq!(t0.children[0].kind, SpanKind::Retry);
        assert!(t0.children[0].cause.as_deref().unwrap().contains("faulted"));
        assert!(e0.children.iter().any(|c| c.kind == SpanKind::Dropout));
        // The dead device's post-death capacity is accounted dead.
        let spans = tree.device_span_seconds();
        let slots = platform.devices[1].spec.kind.slots() as u64;
        assert_eq!(spans[1].dead, (tree.end - SimTime::from_micros(12)) * slots);
    }

    #[test]
    fn span_kinds_tile_capacity() {
        let platform = Platform::test_small();
        let trace = Trace {
            events: vec![task(0, 0, 0, 10), task(1, 1, 0, 8), flush(0, 10, 12)],
        };
        let tree = SpanTree::from_trace(&trace, &platform);
        for (d, s) in tree.device_span_seconds().iter().enumerate() {
            let slots = platform.devices[d].spec.kind.slots() as u64;
            assert_eq!(s.task + s.dead + s.idle, tree.end * slots, "device {d}");
        }
        let mut reg = MetricsRegistry::new();
        tree.export_metrics(&mut reg, "test");
        assert!(reg
            .series
            .keys()
            .any(|k| k.starts_with("hm_span_seconds{") && k.contains("kind=\"task\"")));
    }

    #[test]
    fn flow_arrows_land_on_caused_slots() {
        let platform = Platform::test_small();
        let trace = Trace {
            events: vec![
                task(0, 1, 0, 10),
                TraceEvent::DeviceDropout {
                    dev: DeviceId(1),
                    at: SimTime::from_micros(10),
                },
                TraceEvent::Failover {
                    task: TaskId(1),
                    from: DeviceId(1),
                    to: DeviceId(0),
                    at: SimTime::from_micros(10),
                },
                task(1, 0, 10, 30),
                flush(0, 30, 31),
            ],
        };
        let json = SpanTree::to_chrome_json_with_flows(&trace, &platform);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v.as_array().unwrap();
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("s"))
            .collect();
        let finishes: Vec<_> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("f"))
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(finishes.len(), 1);
        assert_eq!(starts[0]["id"], finishes[0]["id"]);
        // The arrow lands on device 0 at the failover re-run's start.
        assert_eq!(finishes[0]["pid"].as_u64(), Some(0));
        assert_eq!(finishes[0]["ts"].as_f64(), Some(10.0));
    }
}
