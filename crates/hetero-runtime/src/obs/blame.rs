//! Makespan blame attribution: where did every slot-second go?
//!
//! The paper's comparison figures (Figs. 6–12) are ultimately an accounting
//! exercise — a strategy wins because it spends less wall-clock on transfers
//! or scheduling overhead, or leaves fewer slots idle. This module gives the
//! simulator the same vocabulary:
//!
//! * [`TimeBreakdown`] / [`DeviceBreakdown`] — a per-device decomposition of
//!   `makespan × slots` (the device's *capacity* over the run) into compute,
//!   transfer, link degradation, scheduling, adaptation, fault loss, hedge
//!   waste, rollback, verification, dead time and idle time. The executor
//!   maintains this
//!   alongside its ordinary counters, with the same reversal discipline
//!   (dropout kills, hedge losses and epoch rollbacks *recategorize* time
//!   rather than drop it), so the components always sum to capacity.
//! * [`CriticalPath`] — a trace analyzer that walks the dependency-free
//!   "latest predecessor span" chain backwards from the last event and
//!   classifies the makespan into compute / transfer / flush / wait
//!   segments.

use crate::trace::{Trace, TraceEvent};
use hetero_platform::SimTime;
use serde::{Deserialize, Serialize};

/// Per-device decomposition of the run. All time components are in *slot
/// time*: a 12-slot CPU accrues up to 12 seconds of slot time per second of
/// makespan. The identity maintained by the executor is
///
/// ```text
/// compute + transfer + link_degraded + scheduling + adaptation + replan
///   + fault_loss + hedge_waste + rollback + verify + dead + idle
///   ==  makespan × slots
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceBreakdown {
    /// Number of schedulable slots on this device.
    pub slots: u64,
    /// Useful kernel execution (committed work, net of reversals).
    pub compute: SimTime,
    /// Slot time spent waiting on coherence transfers for bound tasks,
    /// priced at the *nominal* wire.
    pub transfer: SimTime,
    /// The slowdown beyond the nominal wire caused by open `LinkDegrade`
    /// windows: degraded minus nominal transfer cost of successful
    /// transfers (retry storms on a degraded link stay `fault_loss`).
    pub link_degraded: SimTime,
    /// Dynamic scheduling overhead charged to this device's slots.
    pub scheduling: SimTime,
    /// Adaptation overhead: decisions charged to tasks bound by an
    /// escalated (fallback) scheduler.
    pub adaptation: SimTime,
    /// Plan-repair overhead: binding decisions charged to chunks rebound
    /// by a survivor re-plan (device death, quarantine, or healing
    /// readmission).
    pub replan: SimTime,
    /// Time lost to faults: failed attempts, retry backoff, transfer
    /// retries, and work discarded by device dropout.
    pub fault_loss: SimTime,
    /// Duplicate work burnt on hedges: losing-replica spans and the
    /// overtaken portion of hedged primaries.
    pub hedge_waste: SimTime,
    /// Committed work discarded by an epoch rollback after a corruption
    /// detection.
    pub rollback: SimTime,
    /// Slot time spent re-executing sampled tasks for corruption
    /// verification (DupCheck).
    pub verify: SimTime,
    /// Capacity lost to a dropped-out device: `(makespan − death) × slots`.
    pub dead: SimTime,
    /// Remaining capacity: slots up and idle.
    pub idle: SimTime,
}

impl DeviceBreakdown {
    /// Sum of every component (should equal `makespan × slots`).
    pub fn accounted(&self) -> SimTime {
        self.active() + self.dead + self.idle
    }

    /// Sum of the *active* components — everything except `dead` and
    /// `idle`; i.e. slot time actually charged to work of some kind.
    pub fn active(&self) -> SimTime {
        self.compute
            + self.transfer
            + self.link_degraded
            + self.scheduling
            + self.adaptation
            + self.replan
            + self.fault_loss
            + self.hedge_waste
            + self.rollback
            + self.verify
    }

    /// The overhead components introduced by fault handling and mitigation:
    /// `fault_loss + hedge_waste + rollback + verify`.
    pub fn resilience_overhead(&self) -> SimTime {
        self.fault_loss + self.hedge_waste + self.rollback + self.verify
    }

    /// The component names and values, in canonical order (excluding
    /// `slots`). Useful for generic rendering and metric export.
    pub fn components(&self) -> [(&'static str, SimTime); 12] {
        [
            ("compute", self.compute),
            ("transfer", self.transfer),
            ("link_degraded", self.link_degraded),
            ("scheduling", self.scheduling),
            ("adaptation", self.adaptation),
            ("replan", self.replan),
            ("fault_loss", self.fault_loss),
            ("hedge_waste", self.hedge_waste),
            ("rollback", self.rollback),
            ("verify", self.verify),
            ("dead", self.dead),
            ("idle", self.idle),
        ]
    }
}

/// The full blame decomposition of a run: one [`DeviceBreakdown`] per
/// device, indexed by `DeviceId.0`, plus the run makespan.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// The run's makespan (same value as `RunReport::makespan`).
    pub makespan: SimTime,
    /// Per-device decompositions, indexed by `DeviceId.0`.
    pub per_device: Vec<DeviceBreakdown>,
}

impl TimeBreakdown {
    /// The slot-time capacity of device `dev` over the run:
    /// `makespan × slots`.
    pub fn capacity(&self, dev: usize) -> SimTime {
        self.makespan * self.per_device[dev].slots
    }

    /// Whether every device's components sum exactly to its capacity — the
    /// invariant the executor maintains, and the property test asserts.
    pub fn identity_holds(&self) -> bool {
        (0..self.per_device.len()).all(|d| self.per_device[d].accounted() == self.capacity(d))
    }

    /// Render a compact per-device table. `names` are device names indexed
    /// by `DeviceId.0` (missing names fall back to `dev<i>`). Components
    /// that round to 0.0% of capacity are omitted.
    pub fn render(&self, names: &[&str]) -> String {
        let mut out = String::new();
        for (i, b) in self.per_device.iter().enumerate() {
            let name = names
                .get(i)
                .copied()
                .map(String::from)
                .unwrap_or_else(|| format!("dev{i}"));
            let cap = self.capacity(i).as_secs_f64();
            out.push_str(&format!("{:<22} ({:>2} slots)", name, b.slots));
            if cap <= 0.0 {
                out.push_str("  (no capacity)\n");
                continue;
            }
            for (label, v) in b.components() {
                let pct = 100.0 * v.as_secs_f64() / cap;
                if pct >= 0.05 {
                    out.push_str(&format!("  {label} {pct:.1}%"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// One segment of the extracted critical path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathKind {
    /// A task slot span on a device.
    Task {
        /// Task index within the program.
        task: usize,
        /// Device the span ran on.
        dev: usize,
    },
    /// A coherence or write-back transfer (including faulted retries).
    Transfer,
    /// An epoch write-back flush.
    Flush {
        /// Flush index.
        epoch: usize,
    },
    /// A gap where no span ends at the next segment's start — scheduling
    /// latency, barrier waits, or event-queue slack.
    Wait,
}

/// A `[start, end)` slice of the critical path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSegment {
    /// What occupied this slice.
    pub kind: PathKind,
    /// Segment start (virtual time).
    pub start: SimTime,
    /// Segment end (virtual time).
    pub end: SimTime,
}

impl PathSegment {
    /// Segment duration.
    pub fn dur(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

/// The critical path of a traced run: a back-to-front chain of span events
/// where each link is the latest-ending span that finishes at or before the
/// next link starts, with explicit [`PathKind::Wait`] segments for gaps.
///
/// This is a *trace-level* approximation of the DAG critical path: it does
/// not consult task dependences, only observable span containment, which is
/// exactly what an external profile (e.g. a Chrome trace) could compute.
/// It is deterministic: ties are broken by (end, kind, position) order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Path segments in chronological order, covering `[0, makespan)`.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Extract the critical path from a trace. Returns an empty path for an
    /// empty trace.
    pub fn from_trace(trace: &Trace) -> Self {
        // Collect all span events with a deterministic rank: Task spans are
        // preferred over Transfers over Flushes when several end together.
        let mut spans: Vec<(SimTime, SimTime, u8, usize, PathKind)> = Vec::new();
        for (idx, ev) in trace.events.iter().enumerate() {
            let Some((start, end)) = ev.span() else {
                continue;
            };
            let (rank, kind) = match ev {
                TraceEvent::Task { task, dev, .. } => (
                    2u8,
                    PathKind::Task {
                        task: task.0,
                        dev: dev.0,
                    },
                ),
                TraceEvent::Transfer { .. } | TraceEvent::TransferRetry { .. } => {
                    (1, PathKind::Transfer)
                }
                TraceEvent::Flush { epoch, .. } => (0, PathKind::Flush { epoch: *epoch }),
                _ => continue,
            };
            spans.push((start, end, rank, idx, kind));
        }
        let Some(last) = spans
            .iter()
            .max_by_key(|(_, end, rank, idx, _)| (*end, *rank, *idx))
            .cloned()
        else {
            return Self::default();
        };

        let mut rev: Vec<PathSegment> = Vec::new();
        let mut cur = last;
        loop {
            rev.push(PathSegment {
                kind: cur.4.clone(),
                start: cur.0,
                end: cur.1,
            });
            let cur_start = cur.0;
            if cur_start == SimTime::ZERO {
                break;
            }
            let pred = spans
                .iter()
                .filter(|(_, end, _, idx, _)| *end <= cur_start && *idx != cur.3)
                .max_by_key(|(_, end, rank, idx, _)| (*end, *rank, *idx))
                .cloned();
            match pred {
                Some(p) => {
                    if p.1 < cur_start {
                        rev.push(PathSegment {
                            kind: PathKind::Wait,
                            start: p.1,
                            end: cur_start,
                        });
                    }
                    cur = p;
                }
                None => {
                    rev.push(PathSegment {
                        kind: PathKind::Wait,
                        start: SimTime::ZERO,
                        end: cur_start,
                    });
                    break;
                }
            }
        }
        rev.reverse();
        Self { segments: rev }
    }

    /// Total time in task spans along the path.
    pub fn compute_time(&self) -> SimTime {
        self.time_in(|k| matches!(k, PathKind::Task { .. }))
    }

    /// Total time in transfer spans along the path.
    pub fn transfer_time(&self) -> SimTime {
        self.time_in(|k| matches!(k, PathKind::Transfer))
    }

    /// Total time in flush spans along the path.
    pub fn flush_time(&self) -> SimTime {
        self.time_in(|k| matches!(k, PathKind::Flush { .. }))
    }

    /// Total gap time along the path.
    pub fn wait_time(&self) -> SimTime {
        self.time_in(|k| matches!(k, PathKind::Wait))
    }

    /// The end of the last segment (the traced makespan), or zero when
    /// empty.
    pub fn end(&self) -> SimTime {
        self.segments.last().map(|s| s.end).unwrap_or(SimTime::ZERO)
    }

    fn time_in(&self, pred: impl Fn(&PathKind) -> bool) -> SimTime {
        self.segments
            .iter()
            .filter(|s| pred(&s.kind))
            .map(PathSegment::dur)
            .sum()
    }

    /// One-line summary: `compute X / transfer Y / flush Z / wait W`.
    pub fn summary(&self) -> String {
        format!(
            "compute {} / transfer {} / flush {} / wait {}",
            self.compute_time(),
            self.transfer_time(),
            self.flush_time(),
            self.wait_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{KernelId, TaskId};
    use hetero_platform::DeviceId;

    fn task(t: usize, dev: usize, s: u64, e: u64) -> TraceEvent {
        TraceEvent::Task {
            task: TaskId(t),
            kernel: KernelId(0),
            dev: DeviceId(dev),
            items: 1,
            start: SimTime::from_millis(s),
            end: SimTime::from_millis(e),
        }
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let p = CriticalPath::from_trace(&Trace::default());
        assert!(p.segments.is_empty());
        assert_eq!(p.end(), SimTime::ZERO);
    }

    #[test]
    fn chain_with_gap_inserts_wait() {
        let trace = Trace {
            events: vec![task(0, 0, 0, 10), task(1, 1, 12, 20)],
        };
        let p = CriticalPath::from_trace(&trace);
        assert_eq!(p.segments.len(), 3);
        assert_eq!(p.end(), SimTime::from_millis(20));
        assert_eq!(p.wait_time(), SimTime::from_millis(2));
        assert_eq!(p.compute_time(), SimTime::from_millis(18));
        // Path covers [0, end) with no overlap.
        let mut t = SimTime::ZERO;
        for s in &p.segments {
            assert_eq!(s.start, t);
            t = s.end;
        }
    }

    #[test]
    fn breakdown_identity_and_render() {
        let b = TimeBreakdown {
            makespan: SimTime::from_millis(10),
            per_device: vec![DeviceBreakdown {
                slots: 2,
                compute: SimTime::from_millis(12),
                idle: SimTime::from_millis(8),
                ..Default::default()
            }],
        };
        assert!(b.identity_holds());
        let s = b.render(&["cpu"]);
        assert!(s.contains("compute 60.0%"), "{s}");
        assert!(s.contains("idle 40.0%"), "{s}");
    }
}
