//! Programs: recorded streams of task submissions and synchronisation points.
//!
//! A [`Program`] is the runtime-facing form of an application: kernels with
//! workload profiles, buffers, and an ordered list of operations — task
//! submissions (with their data accesses and an optional device pinning) and
//! `taskwait` global synchronisation points. Partitioning strategies differ
//! only in how they emit this stream: how many instances per kernel, where
//! each is pinned (static) or left to the scheduler (dynamic), and where the
//! taskwaits sit.

use crate::data::{Access, BufferDesc, BufferId};
use hetero_platform::{DeviceId, KernelProfile};
use serde::{Deserialize, Serialize};

/// A structural defect in a program, or in the inputs handed to a planner
/// lowering a strategy to a program. Produced by [`Program::validate`] /
/// [`ProgramBuilder::try_build`] (the program-level variants) and by the
/// matchmaker planner's fallible entry point (the planning-level
/// variants); the panicking entry points format these through [`Display`].
///
/// [`Display`]: std::fmt::Display
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// A submitted task names a kernel that was never declared.
    KernelOutOfRange {
        /// Index of the offending operation in the stream.
        op: usize,
        /// The undeclared kernel id.
        kernel: KernelId,
    },
    /// A task access names a buffer that was never declared.
    BufferOutOfRange {
        /// Index of the offending operation in the stream.
        op: usize,
        /// The undeclared buffer id.
        buffer: BufferId,
    },
    /// A task access region reaches past the end of its buffer.
    RegionOutOfRange {
        /// Index of the offending operation in the stream.
        op: usize,
        /// Region start (inclusive), in items.
        start: u64,
        /// Region end (exclusive), in items.
        end: u64,
        /// Name of the overrun buffer.
        buffer: String,
        /// The buffer's actual length, in items.
        items: u64,
    },
    /// The application descriptor failed its own validation.
    InvalidDescriptor {
        /// The application's name.
        app: String,
        /// The descriptor's validation message.
        reason: String,
    },
    /// SP-Single was asked to plan a multi-kernel application.
    SingleKernelStrategy {
        /// How many kernels the application actually has.
        kernels: usize,
    },
    /// SP-Unified was asked to plan kernels with differing domains (one
    /// fused partitioning point needs a common domain).
    UnifiedDomainMismatch,
    /// A partitioned access combines a halo with write permission; the
    /// overlapping writes of neighbouring instances would race.
    HaloWrite {
        /// Name of the offending kernel.
        kernel: String,
    },
    /// A whole-buffer write was requested for a kernel the configuration
    /// splits into partial instances; every instance would claim to
    /// produce the full buffer.
    PartitionedFullWrite {
        /// Name of the offending kernel.
        kernel: String,
    },
    /// Planning targets a CPU+accelerator split, but the platform has no
    /// accelerator.
    NoGpu,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::KernelOutOfRange { op, kernel } => {
                write!(f, "op {op}: kernel {kernel:?} out of range")
            }
            PlanError::BufferOutOfRange { op, buffer } => {
                write!(f, "op {op}: buffer {buffer:?} out of range")
            }
            PlanError::RegionOutOfRange {
                op,
                start,
                end,
                buffer,
                items,
            } => write!(
                f,
                "op {op}: region [{start}, {end}) exceeds buffer '{buffer}' ({items} items)"
            ),
            PlanError::InvalidDescriptor { app, reason } => {
                write!(f, "invalid descriptor '{app}': {reason}")
            }
            PlanError::SingleKernelStrategy { kernels } => write!(
                f,
                "SP-Single targets single-kernel applications ({kernels} kernels)"
            ),
            PlanError::UnifiedDomainMismatch => {
                write!(f, "SP-Unified requires a common kernel domain")
            }
            PlanError::HaloWrite { kernel } => {
                write!(f, "halo'd write access is unsound (kernel '{kernel}')")
            }
            PlanError::PartitionedFullWrite { kernel } => write!(
                f,
                "whole-buffer write by a partitioned instance (kernel '{kernel}')"
            ),
            PlanError::NoGpu => write!(f, "planning requires a platform with a GPU"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Identifies a kernel (a parallel section of code) within a program.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct KernelId(pub usize);

/// A kernel: a name plus the workload profile used by device models and by
/// the DP-Perf scheduler's per-kernel performance bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Human-readable name (e.g. `"triad"`).
    pub name: String,
    /// Per-item/per-invocation resource demands.
    pub profile: KernelProfile,
}

/// Identifies a submitted task instance (index in submission order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// One task instance: a partition of one kernel invocation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskDesc {
    /// The kernel this instance belongs to.
    pub kernel: KernelId,
    /// Number of data items this instance computes (drives its cost).
    pub items: u64,
    /// Declared data accesses (drive dependences and transfers).
    pub accesses: Vec<Access>,
    /// `Some(dev)` pins the instance to a device (static partitioning /
    /// Only-CPU / Only-GPU); `None` leaves placement to the dynamic
    /// scheduler (the OmpSs `implements` case: one implementation per
    /// device kind exists and the runtime chooses).
    pub pinned: Option<DeviceId>,
    /// Relative cost multiplier for imbalanced workloads: this instance's
    /// items cost `cost_scale ×` the kernel profile's per-item resources
    /// (1.0 = the kernel's average item). Used by the device models and by
    /// DP-Perf's observations alike.
    pub cost_scale: f64,
}

/// One recorded operation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Op {
    /// Submit a task instance.
    Submit(TaskDesc),
    /// Global synchronisation: wait for all prior instances, flush device
    /// data to the host, and invalidate device copies (OmpSs `taskwait`
    /// semantics in heterogeneous mode).
    Taskwait,
}

/// A complete recorded program.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Program {
    /// Buffer table.
    pub buffers: Vec<BufferDesc>,
    /// Kernel table.
    pub kernels: Vec<KernelDesc>,
    /// Operation stream.
    pub ops: Vec<Op>,
}

impl Program {
    /// Start building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// All submitted tasks in submission order (TaskId order).
    pub fn tasks(&self) -> Vec<(TaskId, &TaskDesc)> {
        let mut out = Vec::new();
        for op in &self.ops {
            if let Op::Submit(t) = op {
                out.push((TaskId(out.len()), t));
            }
        }
        out
    }

    /// Number of submitted tasks.
    pub fn task_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Submit(_)))
            .count()
    }

    /// Split the operation stream into *epochs*: maximal runs of submissions
    /// separated by taskwaits. Returns, per epoch, the `TaskId`s submitted
    /// in it. Empty epochs (two adjacent taskwaits) are preserved.
    pub fn epochs(&self) -> Vec<Vec<TaskId>> {
        let mut epochs = vec![Vec::new()];
        let mut next = 0usize;
        for op in &self.ops {
            match op {
                Op::Submit(_) => {
                    epochs.last_mut().unwrap().push(TaskId(next));
                    next += 1;
                }
                Op::Taskwait => epochs.push(Vec::new()),
            }
        }
        // A trailing empty epoch after a final taskwait carries no work.
        if epochs.last().is_some_and(|e| e.is_empty()) && epochs.len() > 1 {
            epochs.pop();
        }
        epochs
    }

    /// Total items across all instances of a kernel (sanity checks).
    pub fn kernel_items(&self, kernel: KernelId) -> u64 {
        self.tasks()
            .iter()
            .filter(|(_, t)| t.kernel == kernel)
            .map(|(_, t)| t.items)
            .sum()
    }

    /// Validate internal consistency: buffer/kernel indices in range and
    /// regions within their buffers. Returns the first violation as a
    /// typed [`PlanError`].
    pub fn validate(&self) -> Result<(), PlanError> {
        for (i, op) in self.ops.iter().enumerate() {
            let Op::Submit(t) = op else { continue };
            if t.kernel.0 >= self.kernels.len() {
                return Err(PlanError::KernelOutOfRange {
                    op: i,
                    kernel: t.kernel,
                });
            }
            for a in &t.accesses {
                let b = a.region.buffer;
                let Some(desc) = self.buffers.get(b.0) else {
                    return Err(PlanError::BufferOutOfRange { op: i, buffer: b });
                };
                if a.region.span.end > desc.items {
                    return Err(PlanError::RegionOutOfRange {
                        op: i,
                        start: a.region.span.start,
                        end: a.region.span.end,
                        buffer: desc.name.clone(),
                        items: desc.items,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Builds a [`Program`] imperatively, the way an OmpSs-annotated source file
/// executes: declare buffers and kernels, then submit tasks and taskwaits.
#[derive(Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Declare a buffer; returns its id.
    pub fn buffer(&mut self, name: &str, items: u64, item_bytes: u64) -> BufferId {
        self.program.buffers.push(BufferDesc {
            name: name.to_string(),
            items,
            item_bytes,
        });
        BufferId(self.program.buffers.len() - 1)
    }

    /// Declare a kernel; returns its id.
    pub fn kernel(&mut self, name: &str, profile: KernelProfile) -> KernelId {
        self.program.kernels.push(KernelDesc {
            name: name.to_string(),
            profile,
        });
        KernelId(self.program.kernels.len() - 1)
    }

    /// Submit a task instance; returns its id.
    pub fn submit(&mut self, task: TaskDesc) -> TaskId {
        let id = TaskId(self.program.task_count());
        self.program.ops.push(Op::Submit(task));
        id
    }

    /// Submit an unpinned (dynamically scheduled) instance.
    pub fn submit_dynamic(
        &mut self,
        kernel: KernelId,
        items: u64,
        accesses: Vec<Access>,
    ) -> TaskId {
        self.submit(TaskDesc {
            kernel,
            items,
            accesses,
            pinned: None,
            cost_scale: 1.0,
        })
    }

    /// Submit an instance pinned to `dev`.
    pub fn submit_pinned(
        &mut self,
        kernel: KernelId,
        items: u64,
        accesses: Vec<Access>,
        dev: DeviceId,
    ) -> TaskId {
        self.submit(TaskDesc {
            kernel,
            items,
            accesses,
            pinned: Some(dev),
            cost_scale: 1.0,
        })
    }

    /// Record a `taskwait` global synchronisation point.
    pub fn taskwait(&mut self) {
        self.program.ops.push(Op::Taskwait);
    }

    /// Finish; returns the first validation violation as a [`PlanError`].
    pub fn try_build(self) -> Result<Program, PlanError> {
        self.program.validate()?;
        Ok(self.program)
    }

    /// Finish; panics if the program fails validation (use
    /// [`ProgramBuilder::try_build`] to handle the error instead).
    pub fn build(self) -> Program {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid program: {e}"))
    }
}

/// Convenience: evenly split `[0, items)` into `parts` contiguous chunks
/// (first `items % parts` chunks one item longer). Returns `(start, end)`
/// pairs; never returns empty chunks (fewer chunks when `items < parts`).
pub fn split_even(items: u64, parts: u64) -> Vec<(u64, u64)> {
    assert!(parts > 0, "parts must be positive");
    let mut out = Vec::with_capacity(parts as usize);
    let base = items / parts;
    let rem = items % parts;
    let mut start = 0;
    for i in 0..parts {
        let len = base + u64::from(i < rem);
        if len == 0 {
            continue;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Access, Region};
    use hetero_platform::KernelProfile;

    fn tiny_program() -> Program {
        let mut b = Program::builder();
        let buf = b.buffer("x", 100, 4);
        let k = b.kernel("k", KernelProfile::compute_only(1.0));
        b.submit_dynamic(k, 50, vec![Access::write(Region::new(buf, 0, 50))]);
        b.submit_dynamic(k, 50, vec![Access::write(Region::new(buf, 50, 100))]);
        b.taskwait();
        b.submit_dynamic(k, 100, vec![Access::read(Region::new(buf, 0, 100))]);
        b.build()
    }

    #[test]
    fn epochs_split_on_taskwait() {
        let p = tiny_program();
        let e = p.epochs();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0], vec![TaskId(0), TaskId(1)]);
        assert_eq!(e[1], vec![TaskId(2)]);
    }

    #[test]
    fn trailing_taskwait_adds_no_epoch() {
        let mut b = Program::builder();
        let buf = b.buffer("x", 10, 4);
        let k = b.kernel("k", KernelProfile::compute_only(1.0));
        b.submit_dynamic(k, 10, vec![Access::write(Region::new(buf, 0, 10))]);
        b.taskwait();
        let p = b.build();
        assert_eq!(p.epochs().len(), 1);
    }

    #[test]
    fn task_count_and_kernel_items() {
        let p = tiny_program();
        assert_eq!(p.task_count(), 3);
        assert_eq!(p.kernel_items(KernelId(0)), 200);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn build_rejects_out_of_range_region() {
        let mut b = Program::builder();
        let buf = b.buffer("x", 10, 4);
        let k = b.kernel("k", KernelProfile::compute_only(1.0));
        b.submit_dynamic(k, 20, vec![Access::write(Region::new(buf, 0, 20))]);
        let _ = b.build();
    }

    #[test]
    fn try_build_reports_out_of_range_region() {
        let mut b = Program::builder();
        let buf = b.buffer("x", 10, 4);
        let k = b.kernel("k", KernelProfile::compute_only(1.0));
        b.submit_dynamic(k, 20, vec![Access::write(Region::new(buf, 0, 20))]);
        let err = b.try_build().unwrap_err();
        assert_eq!(
            err,
            PlanError::RegionOutOfRange {
                op: 0,
                start: 0,
                end: 20,
                buffer: "x".into(),
                items: 10,
            }
        );
        assert!(err.to_string().contains("exceeds buffer 'x'"));
    }

    #[test]
    fn try_build_reports_undeclared_kernel() {
        let mut b = Program::builder();
        let buf = b.buffer("x", 10, 4);
        b.submit_dynamic(KernelId(3), 10, vec![Access::read(Region::new(buf, 0, 10))]);
        let err = b.try_build().unwrap_err();
        assert_eq!(
            err,
            PlanError::KernelOutOfRange {
                op: 0,
                kernel: KernelId(3),
            }
        );
        assert!(err.to_string().contains("kernel KernelId(3) out of range"));
    }

    #[test]
    fn try_build_reports_undeclared_buffer() {
        let mut b = Program::builder();
        let k = b.kernel("k", KernelProfile::compute_only(1.0));
        b.submit_dynamic(k, 10, vec![Access::read(Region::new(BufferId(7), 0, 10))]);
        let err = b.try_build().unwrap_err();
        assert_eq!(
            err,
            PlanError::BufferOutOfRange {
                op: 0,
                buffer: BufferId(7),
            }
        );
        assert!(err.to_string().contains("buffer BufferId(7) out of range"));
    }

    #[test]
    fn split_even_covers_everything_once() {
        for (items, parts) in [(100u64, 7u64), (5, 8), (24, 24), (1, 1), (0, 3)] {
            let chunks = split_even(items, parts);
            let total: u64 = chunks.iter().map(|(s, e)| e - s).sum();
            assert_eq!(total, items);
            // contiguous and ordered
            let mut cursor = 0;
            for &(s, e) in &chunks {
                assert_eq!(s, cursor);
                assert!(e > s);
                cursor = e;
            }
        }
    }

    #[test]
    fn split_even_balance() {
        let chunks = split_even(10, 3);
        let lens: Vec<u64> = chunks.iter().map(|(s, e)| e - s).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }
}
