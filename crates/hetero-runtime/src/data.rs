//! Logical data objects and task data accesses.
//!
//! Mirrors the OmpSs data model the paper relies on: tasks declare which
//! regions of which buffers they read and write (`in`/`out`/`inout`
//! clauses), and the runtime derives both the dependence graph and the
//! host↔device data transfers from these declarations.

use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// Identifies a logical buffer within a [`crate::Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct BufferId(pub usize);

/// A logical 1-D array of fixed-size items.
///
/// Data-parallel partitioning splits the *item index space*; an "item" is
/// whatever unit the application partitions by (an option for BlackScholes,
/// a matrix row for MatrixMul, a grid row for HotSpot, ...). `item_bytes`
/// carries the per-item footprint so transfer volumes follow from region
/// sizes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BufferDesc {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of items.
    pub items: u64,
    /// Bytes per item.
    pub item_bytes: u64,
}

impl BufferDesc {
    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.items * self.item_bytes
    }

    /// The full index range of the buffer.
    pub fn full(&self) -> Interval {
        Interval::new(0, self.items)
    }
}

/// A contiguous region of a buffer, in items.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Region {
    /// The buffer.
    pub buffer: BufferId,
    /// Item interval within the buffer.
    pub span: Interval,
}

impl Region {
    /// Construct a region covering `[start, end)` of `buffer`.
    pub fn new(buffer: BufferId, start: u64, end: u64) -> Self {
        Region {
            buffer,
            span: Interval::new(start, end),
        }
    }

    /// Number of items in the region.
    pub fn len(&self) -> u64 {
        self.span.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.span.is_empty()
    }
}

/// How a task accesses a region — the OmpSs `in`/`out`/`inout` clauses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AccessMode {
    /// Read-only (`in`): orders after previous writers of the region.
    In,
    /// Write-only (`out`): orders after previous readers and writers.
    Out,
    /// Read-write (`inout`): both of the above.
    InOut,
}

impl AccessMode {
    /// `true` if the access observes previous values.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// `true` if the access produces new values.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

/// One declared access of a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// The region touched.
    pub region: Region,
    /// Read/write mode.
    pub mode: AccessMode,
}

impl Access {
    /// Shorthand for an `in` access.
    pub fn read(region: Region) -> Self {
        Access {
            region,
            mode: AccessMode::In,
        }
    }

    /// Shorthand for an `out` access.
    pub fn write(region: Region) -> Self {
        Access {
            region,
            mode: AccessMode::Out,
        }
    }

    /// Shorthand for an `inout` access.
    pub fn read_write(region: Region) -> Self {
        Access {
            region,
            mode: AccessMode::InOut,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_footprint() {
        let b = BufferDesc {
            name: "a".into(),
            items: 100,
            item_bytes: 8,
        };
        assert_eq!(b.total_bytes(), 800);
        assert_eq!(b.full(), Interval::new(0, 100));
    }

    #[test]
    fn access_modes() {
        assert!(AccessMode::In.reads() && !AccessMode::In.writes());
        assert!(!AccessMode::Out.reads() && AccessMode::Out.writes());
        assert!(AccessMode::InOut.reads() && AccessMode::InOut.writes());
    }

    #[test]
    fn region_len() {
        let r = Region::new(BufferId(0), 10, 25);
        assert_eq!(r.len(), 15);
        assert!(!r.is_empty());
        assert!(Region::new(BufferId(0), 3, 3).is_empty());
    }
}
