//! Invariant oracles for the scenario fuzzing harness (DESIGN.md §8.5).
//!
//! This module holds the runtime-layer half of the fuzzer: the vocabulary
//! of invariants ([`OracleKind`]), the violation record the shrinker
//! minimizes against ([`OracleViolation`]), and the oracle checks that
//! need nothing above a [`RunReport`] — the blame identity and
//! byte-identical report digests. The scenario *generator* and the oracles
//! that need a planner (differential execution, adaptive no-regression)
//! live in `matchmaker::fuzz`, which drives everything end to end.
//!
//! Every check here is pure and deterministic: same report, same verdict.

use crate::stats::RunReport;
use serde::{Deserialize, Serialize};

/// The invariants the fuzzer checks on every generated scenario. Each
/// variant is one oracle; a failing scenario records which oracle it broke
/// so the shrinker can require the *same* oracle to keep failing as it
/// minimizes (see PROPERTY-TESTS.md for the full catalogue).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// Simulated and native execution compute the same buffer contents:
    /// for every applicable strategy and execution order, the natively
    /// executed partitioned program produces outputs identical to the
    /// whole-domain reference.
    Differential,
    /// `TimeBreakdown` components sum exactly to `makespan × slots` on
    /// every device, for every executor path.
    BlameIdentity,
    /// On a mispredicted static plan (ProfilePerturb), enabling adaptive
    /// repartitioning never yields a worse makespan than running the
    /// mispredicted plan unchanged.
    AdaptiveNeverLoses,
    /// On a mispredicted static plan, reinstating the static plan after
    /// calm (de-escalation) never yields a worse makespan than staying
    /// escalated forever.
    DeescalationNeverLoses,
    /// Running the identical scenario twice yields byte-identical
    /// serialized reports.
    DoubleRunDeterminism,
    /// Recording a `FaultTrace` and replaying it (synthesized windows baked
    /// in, conditional triggering disabled) reproduces the run
    /// byte-identically.
    ReplayDeterminism,
    /// On a permanent mid-run device dropout, enabling degraded-mode plan
    /// repair (survivor re-planning) never yields a worse makespan than
    /// the naive chunk-by-chunk host failover of the same run.
    RepairNeverLoses,
    /// For every kill point of a journaled run (after each committed
    /// record, torn or clean, and mid-epoch at simulated time t), crash +
    /// resume-from-journal produces a final report, journal text, and
    /// metrics export byte-identical to the uninterrupted run.
    CrashResumeEquivalence,
    /// Folding every `EpochSnapshot` delta emitted by a streaming
    /// `SnapshotObserver` reproduces the end-of-run `MetricsRegistry`
    /// JSON byte-for-byte, across plain/faulty/resilient/adaptive/
    /// repairing execution paths.
    StreamFoldEquivalence,
    /// Under any seeded chaos schedule, the planning service answers
    /// every arrival with exactly one terminal response — a plan, or a
    /// typed `ServiceError` — never a silent drop, a duplicate, or a
    /// hang, and two same-seed runs answer byte-identically.
    ShedOrServe,
}

impl OracleKind {
    /// Stable kebab-case name, used in corpus file names and summaries.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Differential => "differential",
            OracleKind::BlameIdentity => "blame-identity",
            OracleKind::AdaptiveNeverLoses => "adaptive-never-loses",
            OracleKind::DeescalationNeverLoses => "deescalation-never-loses",
            OracleKind::DoubleRunDeterminism => "double-run-determinism",
            OracleKind::ReplayDeterminism => "replay-determinism",
            OracleKind::RepairNeverLoses => "repair-never-loses",
            OracleKind::CrashResumeEquivalence => "crash-resume-equivalence",
            OracleKind::StreamFoldEquivalence => "stream-fold-equivalence",
            OracleKind::ShedOrServe => "shed-or-serve",
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One oracle failure on one scenario: which invariant broke and a
/// human-readable account of how.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OracleViolation {
    /// The invariant that failed.
    pub oracle: OracleKind,
    /// What the oracle saw (expected vs actual, device, component…).
    pub detail: String,
}

impl OracleViolation {
    /// Construct a violation.
    pub fn new(oracle: OracleKind, detail: impl Into<String>) -> Self {
        OracleViolation {
            oracle,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// The blame-identity oracle: every device's breakdown components must sum
/// *exactly* (integer nanoseconds, no tolerance) to `makespan × slots`,
/// and the breakdown's makespan must equal the report's.
pub fn check_blame_identity(report: &RunReport) -> Result<(), OracleViolation> {
    if report.breakdown.makespan != report.makespan {
        return Err(OracleViolation::new(
            OracleKind::BlameIdentity,
            format!(
                "breakdown.makespan {} != report.makespan {}",
                report.breakdown.makespan, report.makespan
            ),
        ));
    }
    for (d, b) in report.breakdown.per_device.iter().enumerate() {
        let accounted = b.accounted();
        let capacity = report.breakdown.capacity(d);
        if accounted != capacity {
            return Err(OracleViolation::new(
                OracleKind::BlameIdentity,
                format!("device {d}: accounted {accounted} != capacity {capacity}"),
            ));
        }
    }
    Ok(())
}

/// Canonical byte representation of a report for determinism oracles.
/// `RunReport` serializes through ordered containers only (`Vec`,
/// `BTreeMap`), so equal runs produce equal strings — the same digest the
/// CI determinism matrix diffs.
pub fn report_digest(report: &RunReport) -> String {
    serde_json::to_string(report).expect("RunReport serializes")
}

/// The determinism oracle: two reports from what should be the same run
/// must serialize byte-identically. `what` names the comparison in the
/// violation detail ("double run", "trace replay").
pub fn check_identical(
    oracle: OracleKind,
    what: &str,
    a: &RunReport,
    b: &RunReport,
) -> Result<(), OracleViolation> {
    let (da, db) = (report_digest(a), report_digest(b));
    if da != db {
        // Point at the first divergent byte: enough to find the field
        // without dumping two full reports.
        let at = da
            .bytes()
            .zip(db.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or_else(|| da.len().min(db.len()));
        let lo = at.saturating_sub(40);
        return Err(OracleViolation::new(
            oracle,
            format!(
                "{what}: reports diverge at byte {at}: …{}… vs …{}…",
                &da[lo..(at + 20).min(da.len())],
                &db[lo..(at + 20).min(db.len())],
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{ADAPT_STREAM, CORRELATED_STREAM, HEALTH_STREAM, REPLAN_STREAM};
    use hetero_platform::FaultRng;

    /// The golden-seed pin for the dedicated RNG stream constants. These
    /// values are load-bearing: a recorded `FaultTrace`, a fuzz-corpus
    /// entry, or a CI determinism digest replays byte-identically *only*
    /// if the streams split off the schedule seed exactly as they did when
    /// it was recorded. A refactor that touches them must fail here, not
    /// silently re-roll every archived scenario.
    #[test]
    fn stream_constants_are_pinned() {
        assert_eq!(HEALTH_STREAM, 0x5EED_C0DE_D00D_FEED);
        assert_eq!(ADAPT_STREAM, 0xADA7_ADA7_ADA7_ADA7);
        assert_eq!(CORRELATED_STREAM, 0x00C0_DEFA_17D0_5EED);
        assert_eq!(REPLAN_STREAM, 0x9EBA_1A2C_D00D_5EED);

        // And the first draws of each derived stream for the golden seed 42
        // (the executor seeds each stream as `schedule.seed ^ CONST`).
        let first = |stream: u64| FaultRng::new(42 ^ stream).next_u64();
        assert_eq!(first(HEALTH_STREAM), 0xc969_5ae0_ce0b_0516);
        assert_eq!(first(ADAPT_STREAM), 0x9024_cc17_4f75_f328);
        assert_eq!(first(CORRELATED_STREAM), 0x520f_8a72_3679_28dd);
        assert_eq!(first(REPLAN_STREAM), 0xd729_1413_2a59_e353);

        // The streams must stay pairwise distinct — equal constants would
        // collapse two streams into one and correlate their sampling.
        let streams = [
            HEALTH_STREAM,
            ADAPT_STREAM,
            CORRELATED_STREAM,
            REPLAN_STREAM,
        ];
        for (i, a) in streams.iter().enumerate() {
            for b in &streams[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn blame_identity_accepts_the_empty_report() {
        let report = RunReport {
            scheduler: "pinned".into(),
            makespan: hetero_platform::SimTime::ZERO,
            counters: hetero_platform::PlatformCounters::new(1),
            per_kernel: Vec::new(),
            device_is_gpu: vec![false],
            faults: Default::default(),
            synthesized_faults: Vec::new(),
            health: Default::default(),
            adapt: Default::default(),
            breakdown: Default::default(),
        };
        assert!(check_blame_identity(&report).is_ok());
        // Double-run check on the same value trivially passes.
        assert!(check_identical(
            OracleKind::DoubleRunDeterminism,
            "double run",
            &report,
            &report
        )
        .is_ok());
    }
}
