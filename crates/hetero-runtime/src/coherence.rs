//! Multi-memory-space coherence directory.
//!
//! The OmpSs memory model lets task data live in several memory spaces; the
//! runtime keeps copies consistent by analysing the declared accesses and
//! inserting transfers. This module tracks, per buffer item, which spaces
//! hold a valid copy:
//!
//! * reading on a device copies missing items from a valid holder (host
//!   preferred) — *the source keeps its copy*;
//! * writing on a device makes that device's space the sole valid holder;
//! * `taskwait` flushes device-only data back to the host **and invalidates
//!   device copies** (the flush-to-host semantics described in §II-B of the
//!   paper; invalidation is what makes SP-Varied and per-iteration
//!   synchronisation pay repeated transfers, exactly the behaviour the
//!   paper reports).

use crate::data::{BufferDesc, BufferId};
use crate::interval::{Interval, IntervalSet};
use hetero_platform::MemSpaceId;

/// One required data movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Buffer being moved.
    pub buffer: BufferId,
    /// Item interval being moved.
    pub span: Interval,
    /// Source memory space.
    pub from: MemSpaceId,
    /// Destination memory space.
    pub to: MemSpaceId,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Validity directory: `valid[space][buffer]` = items with a valid copy.
pub struct CoherenceDir {
    valid: Vec<Vec<IntervalSet>>,
    item_bytes: Vec<u64>,
}

impl CoherenceDir {
    /// Create a directory for `n_spaces` memory spaces over the given
    /// buffers. All data starts valid on the host (space 0) only.
    pub fn new(n_spaces: usize, buffers: &[BufferDesc]) -> Self {
        assert!(n_spaces >= 1);
        let mut valid = vec![vec![IntervalSet::new(); buffers.len()]; n_spaces];
        for (i, b) in buffers.iter().enumerate() {
            valid[0][i] = IntervalSet::of(b.full());
        }
        CoherenceDir {
            valid,
            item_bytes: buffers.iter().map(|b| b.item_bytes).collect(),
        }
    }

    fn bytes(&self, buffer: BufferId, span: Interval) -> u64 {
        span.len() * self.item_bytes[buffer.0]
    }

    /// Make `span` of `buffer` readable in `target`: returns the transfers
    /// required (empty if already valid) and marks the copies valid.
    pub fn acquire_for_read(
        &mut self,
        buffer: BufferId,
        span: Interval,
        target: MemSpaceId,
    ) -> Vec<Transfer> {
        let mut transfers = Vec::new();
        let mut missing = self.valid[target.0][buffer.0].gaps_within(span);
        if missing.is_empty() {
            return transfers;
        }
        // Fill from the host first, then from any other space.
        let mut source_order: Vec<usize> = vec![0];
        source_order.extend((0..self.valid.len()).filter(|&s| s != 0 && s != target.0));
        for src in source_order {
            if src == target.0 || missing.is_empty() {
                continue;
            }
            let mut still_missing = Vec::new();
            for gap in missing {
                let covered = self.valid[src][buffer.0].intersection_with(gap);
                for part in &covered {
                    transfers.push(Transfer {
                        buffer,
                        span: *part,
                        from: MemSpaceId(src),
                        to: target,
                        bytes: self.bytes(buffer, *part),
                    });
                }
                // What `src` couldn't provide remains missing.
                let mut cover_set = IntervalSet::new();
                for part in covered {
                    cover_set.insert(part);
                }
                still_missing.extend(cover_set.gaps_within(gap));
            }
            missing = still_missing;
        }
        assert!(
            missing.is_empty(),
            "coherence: no valid copy anywhere for {buffer:?} {missing:?}"
        );
        for t in &transfers {
            self.valid[target.0][buffer.0].insert(t.span);
        }
        transfers
    }

    /// Record that `span` of `buffer` was written in `target`: `target`
    /// becomes the sole valid holder of those items.
    pub fn record_write(&mut self, buffer: BufferId, span: Interval, target: MemSpaceId) {
        for (s, spaces) in self.valid.iter_mut().enumerate() {
            if s != target.0 {
                spaces[buffer.0].remove(span);
            }
        }
        self.valid[target.0][buffer.0].insert(span);
    }

    /// `taskwait` semantics: copy every item whose only valid copies live in
    /// device spaces back to the host, then invalidate all device copies.
    /// Returns the device→host transfers required.
    pub fn flush_and_invalidate(&mut self) -> Vec<Transfer> {
        let mut transfers = Vec::new();
        let n_buffers = self.item_bytes.len();
        for buf in 0..n_buffers {
            for src in 1..self.valid.len() {
                // Parts valid on this device but stale/absent on the host.
                let dev_valid: Vec<Interval> = self.valid[src][buf].iter().collect();
                for iv in dev_valid {
                    for gap in self.valid[0][buf].gaps_within(iv) {
                        transfers.push(Transfer {
                            buffer: BufferId(buf),
                            span: gap,
                            from: MemSpaceId(src),
                            to: MemSpaceId::HOST,
                            bytes: self.bytes(BufferId(buf), gap),
                        });
                        self.valid[0][buf].insert(gap);
                    }
                }
            }
            // Invalidate all device copies.
            for src in 1..self.valid.len() {
                self.valid[src][buf] = IntervalSet::new();
            }
        }
        transfers
    }

    /// A memory space was lost (device dropout): discard every copy it
    /// held. Items whose *only* valid copy lived there are restored from
    /// the host's epoch checkpoint — the host held every item at the last
    /// taskwait flush, and the resilient executor re-executes the
    /// uncommitted tasks that had overwritten them — so the directory never
    /// ends up with data that is valid nowhere.
    pub fn drop_space(&mut self, space: MemSpaceId) {
        assert!(!space.is_host(), "cannot drop the host memory space");
        let n_buffers = self.item_bytes.len();
        for buf in 0..n_buffers {
            let lost: Vec<Interval> = self.valid[space.0][buf].iter().collect();
            self.valid[space.0][buf] = IntervalSet::new();
            for iv in lost {
                // Union of what the surviving spaces still cover within iv.
                let mut survivors = IntervalSet::new();
                for (s, spaces) in self.valid.iter().enumerate() {
                    if s == space.0 {
                        continue;
                    }
                    for part in spaces[buf].intersection_with(iv) {
                        survivors.insert(part);
                    }
                }
                // Nowhere else valid: recover from the host checkpoint.
                for gap in survivors.gaps_within(iv) {
                    self.valid[0][buf].insert(gap);
                }
            }
        }
    }

    /// `true` if `span` of `buffer` is valid in `space` (tests/diagnostics).
    pub fn is_valid(&self, buffer: BufferId, span: Interval, space: MemSpaceId) -> bool {
        self.valid[space.0][buffer.0].covers(span)
    }

    /// Bytes of `span` that a reader in `space` would have to transfer in —
    /// a *non-mutating* query used by locality-aware schedulers to estimate
    /// the data-movement cost of a placement.
    pub fn missing_read_bytes(&self, buffer: BufferId, span: Interval, space: MemSpaceId) -> u64 {
        self.valid[space.0][buffer.0]
            .gaps_within(span)
            .iter()
            .map(|iv| iv.len() * self.item_bytes[buffer.0])
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buffers() -> Vec<BufferDesc> {
        vec![BufferDesc {
            name: "x".into(),
            items: 100,
            item_bytes: 4,
        }]
    }

    const B: BufferId = BufferId(0);
    const HOST: MemSpaceId = MemSpaceId(0);
    const GPU: MemSpaceId = MemSpaceId(1);

    fn iv(s: u64, e: u64) -> Interval {
        Interval::new(s, e)
    }

    #[test]
    fn initial_data_is_host_valid() {
        let dir = CoherenceDir::new(2, &buffers());
        assert!(dir.is_valid(B, iv(0, 100), HOST));
        assert!(!dir.is_valid(B, iv(0, 1), GPU));
    }

    #[test]
    fn read_on_device_copies_from_host_once() {
        let mut dir = CoherenceDir::new(2, &buffers());
        let t = dir.acquire_for_read(B, iv(0, 50), GPU);
        assert_eq!(
            t,
            vec![Transfer {
                buffer: B,
                span: iv(0, 50),
                from: HOST,
                to: GPU,
                bytes: 200
            }]
        );
        // Second read: already valid, no transfer.
        assert!(dir.acquire_for_read(B, iv(10, 40), GPU).is_empty());
        // Host copy still valid (copies, not moves).
        assert!(dir.is_valid(B, iv(0, 100), HOST));
    }

    #[test]
    fn partial_overlap_transfers_only_gaps() {
        let mut dir = CoherenceDir::new(2, &buffers());
        dir.acquire_for_read(B, iv(0, 30), GPU);
        let t = dir.acquire_for_read(B, iv(20, 60), GPU);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].span, iv(30, 60));
    }

    #[test]
    fn write_invalidates_other_spaces() {
        let mut dir = CoherenceDir::new(2, &buffers());
        dir.record_write(B, iv(0, 50), GPU);
        assert!(!dir.is_valid(B, iv(0, 1), HOST));
        assert!(dir.is_valid(B, iv(50, 100), HOST));
        assert!(dir.is_valid(B, iv(0, 50), GPU));
        // Host read of written part now needs a transfer back.
        let t = dir.acquire_for_read(B, iv(0, 60), HOST);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, GPU);
        assert_eq!(t[0].span, iv(0, 50));
    }

    #[test]
    fn flush_moves_device_only_data_home_and_invalidates() {
        let mut dir = CoherenceDir::new(2, &buffers());
        dir.record_write(B, iv(0, 50), GPU);
        let t = dir.flush_and_invalidate();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].span, iv(0, 50));
        assert_eq!(t[0].from, GPU);
        assert_eq!(t[0].to, HOST);
        assert!(dir.is_valid(B, iv(0, 100), HOST));
        assert!(!dir.is_valid(B, iv(0, 1), GPU));
        // A second flush transfers nothing.
        assert!(dir.flush_and_invalidate().is_empty());
    }

    #[test]
    fn flush_skips_clean_device_copies() {
        let mut dir = CoherenceDir::new(2, &buffers());
        dir.acquire_for_read(B, iv(0, 100), GPU); // clean copy
        let t = dir.flush_and_invalidate();
        assert!(t.is_empty());
        assert!(!dir.is_valid(B, iv(0, 1), GPU)); // still invalidated
    }

    #[test]
    fn three_space_read_prefers_host_source() {
        let mut dir = CoherenceDir::new(3, &buffers());
        let gpu2 = MemSpaceId(2);
        dir.acquire_for_read(B, iv(0, 100), GPU);
        let t = dir.acquire_for_read(B, iv(0, 100), gpu2);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, HOST);
    }

    #[test]
    fn drop_space_recovers_sole_copies_from_host_checkpoint() {
        let mut dir = CoherenceDir::new(2, &buffers());
        // GPU wrote [0, 50): it is the sole holder; host holds [50, 100).
        dir.record_write(B, iv(0, 50), GPU);
        dir.drop_space(GPU);
        // The GPU's copies are gone; the lost region is restored on the
        // host (checkpoint state), so everything is readable again.
        assert!(!dir.is_valid(B, iv(0, 1), GPU));
        assert!(dir.is_valid(B, iv(0, 100), HOST));
        assert!(dir.acquire_for_read(B, iv(0, 100), HOST).is_empty());
    }

    #[test]
    fn drop_space_keeps_surviving_copies_authoritative() {
        let mut dir = CoherenceDir::new(3, &buffers());
        let gpu2 = MemSpaceId(2);
        // gpu2 wrote [0, 40); GPU also has a copy of [0, 40).
        dir.record_write(B, iv(0, 40), gpu2);
        dir.acquire_for_read(B, iv(0, 40), GPU);
        dir.drop_space(GPU);
        // gpu2 still holds the data: no phantom host restore of [0, 40).
        assert!(!dir.is_valid(B, iv(0, 1), HOST));
        assert!(dir.is_valid(B, iv(0, 40), gpu2));
        let t = dir.acquire_for_read(B, iv(0, 40), HOST);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, gpu2);
    }

    #[test]
    fn device_to_device_via_peer_when_host_stale() {
        let mut dir = CoherenceDir::new(3, &buffers());
        let gpu2 = MemSpaceId(2);
        dir.record_write(B, iv(0, 50), GPU);
        let t = dir.acquire_for_read(B, iv(0, 50), gpu2);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].from, GPU);
    }
}
