#![warn(missing_docs)]

//! # hetero-runtime
//!
//! An OmpSs-analog task-based runtime for heterogeneous platforms, built
//! from scratch as the dynamic-partitioning substrate of the ICPP'15
//! *matchmaking* reproduction (see the repository `DESIGN.md`).
//!
//! The programming model mirrors what the paper relies on (§II-B):
//!
//! * applications are recorded as [`Program`]s — streams of *task instance*
//!   submissions with declared `in`/`out`/`inout` region accesses, plus
//!   `taskwait` global synchronisation points;
//! * the runtime derives the task dependency graph ([`TaskGraph`]) from the
//!   declared accesses and keeps data consistent across memory spaces
//!   ([`coherence`]), inserting host↔device transfers;
//! * placement is pluggable ([`Scheduler`]): pinned placement for static
//!   partitioning plans, and the paper's two dynamic policies — [`DepScheduler`]
//!   (**DP-Dep**, breadth-first + dependency-chain affinity) and
//!   [`PerfScheduler`] (**DP-Perf**, performance-aware earliest-finisher with a
//!   profiling warm-up);
//! * [`simulate`] executes a program in deterministic virtual time over a
//!   `hetero_platform::Platform` and reports makespan, partitioning ratios,
//!   transfer volumes and scheduling overhead;
//! * [`native`] executes the program's real computation on host data to
//!   validate that partitioning is semantically correct.
//!
//! ```
//! use hetero_platform::{KernelProfile, Platform};
//! use hetero_runtime::{simulate, Access, PinnedScheduler, Program, Region};
//! use hetero_platform::DeviceId;
//!
//! // A two-instance program: half the buffer on the GPU, half on the CPU.
//! let mut b = Program::builder();
//! let x = b.buffer("x", 1_000_000, 4);
//! let k = b.kernel("square", KernelProfile::compute_only(8.0));
//! b.submit_pinned(k, 500_000, vec![Access::read_write(Region::new(x, 0, 500_000))], DeviceId(1));
//! b.submit_pinned(k, 500_000, vec![Access::read_write(Region::new(x, 500_000, 1_000_000))], DeviceId(0));
//! let program = b.build();
//!
//! let platform = Platform::icpp15();
//! let report = simulate(&program, &platform, &mut PinnedScheduler);
//! assert!(report.makespan > hetero_platform::SimTime::ZERO);
//! assert_eq!(report.counters.devices[1].items, 500_000);
//! ```

pub mod adapt;
pub mod coherence;
pub mod data;
pub mod executor;
pub mod fuzz;
pub mod graph;
pub mod health;
pub mod interval;
pub mod journal;
pub mod native;
pub mod obs;
pub mod program;
pub mod scheduler;
pub mod stats;
pub mod trace;

pub use adapt::{
    AdaptConfig, AdaptPlan, AdaptReport, KernelAdaptPlan, MultiAdaptPlan, ReplanConfig, ReplanError,
};
pub use coherence::{CoherenceDir, Transfer};
pub use data::{Access, AccessMode, BufferDesc, BufferId, Region};
pub use executor::{
    simulate, simulate_adaptive, simulate_adaptive_observed, simulate_adaptive_traced,
    simulate_faulty, simulate_faulty_observed, simulate_faulty_traced, simulate_observed,
    simulate_repairing, simulate_repairing_observed, simulate_repairing_traced, simulate_resilient,
    simulate_resilient_observed, simulate_resilient_traced, simulate_traced,
};
pub use executor::{
    simulate_journaled_observed, ADAPT_STREAM, CORRELATED_STREAM, HEALTH_STREAM, REPLAN_STREAM,
};
pub use fuzz::{check_blame_identity, check_identical, report_digest, OracleKind, OracleViolation};
pub use graph::TaskGraph;
pub use health::{
    BreakerConfig, BreakerState, HealthConfig, HealthReport, QuarantineSpan, VerificationPolicy,
    WatchdogConfig,
};
pub use interval::{Interval, IntervalMap, IntervalSet};
pub use journal::{
    EpochDelta, EpochRecord, JournalError, JournalHeader, JournalSink, RngCursors, RunJournal,
    SalvageReport, StreamConstants, JOURNAL_VERSION,
};
pub use native::{run_native, run_native_parallel, ExecOrder, HostBuffers, KernelFn};
pub use obs::{
    apply_snapshot, fold_stream, CriticalPath, DeviceBreakdown, DiffEntry, DiffVerdict,
    EpochSnapshot, LogHistogram, MetricsObserver, MetricsRegistry, MultiObserver, NullObserver,
    Observer, OpenState, PathKind, PathSegment, RunDiff, Series, SeriesValue, SnapshotObserver,
    Span, SpanKind, SpanTree, TimeBreakdown, TraceObserver,
};
pub use program::{
    split_even, KernelDesc, KernelId, Op, PlanError, Program, ProgramBuilder, TaskDesc, TaskId,
};
pub use scheduler::{
    BindCtx, DepScheduler, PerfScheduler, PinnedScheduler, RateObservation, Scheduler,
    WorkConservingScheduler,
};
pub use stats::{KernelStats, RunReport};
pub use trace::{Trace, TraceEvent, DEFAULT_GANTT_WIDTH};

/// Run a program under DP-Perf with the paper's methodology: a warm-up run
/// performs the profiling phase (3 instances per kernel per device), then
/// the measured run starts from the learned rates with profiling excluded
/// from the reported numbers.
pub fn simulate_dp_perf_warmed(
    program: &Program,
    platform: &hetero_platform::Platform,
) -> RunReport {
    let mut warm = PerfScheduler::new(platform);
    let _ = simulate(program, platform, &mut warm);
    let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
    simulate(program, platform, &mut measured)
}

/// [`simulate_dp_perf_warmed`] with an [`Observer`] installed on the
/// *measured* run. The warm-up run is unobserved (it exists only to learn
/// rates and is excluded from reported numbers), so an attached metrics
/// sink sees exactly the run the report describes.
pub fn simulate_dp_perf_warmed_observed(
    program: &Program,
    platform: &hetero_platform::Platform,
    obs: &mut dyn Observer,
) -> RunReport {
    let mut warm = PerfScheduler::new(platform);
    let _ = simulate(program, platform, &mut warm);
    let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
    simulate_observed(program, platform, &mut measured, obs)
}

/// The schedule the DP-Perf warm-up pass runs under: the base events with
/// correlated triggering disabled and any replayed synthesized windows
/// stripped. The warm-up exists only to learn rates, and its synthesized
/// windows are not part of the recorded [`hetero_platform::FaultTrace`]
/// (only the measured run's are) — letting it trigger live would make the
/// learned rates, and therefore the whole run, impossible to replay. With
/// this form the warm-up is a pure function of the base schedule, so a
/// recorded run and its replay learn identical rates.
pub fn warmup_schedule(
    schedule: &hetero_platform::FaultSchedule,
) -> hetero_platform::FaultSchedule {
    let mut w = schedule.clone();
    if let Some(n) = w.synthesized_after.take() {
        w.events.truncate(n);
    }
    for d in &mut w.domains {
        d.trigger_prob = 0.0;
    }
    w
}

/// [`simulate_dp_perf_warmed`] under a fault schedule: both the warm-up and
/// the measured run execute under `schedule`, so the learned rates reflect
/// the platform *as it misbehaves* — this is what lets DP-Perf adapt its
/// partitioning to a throttled or flaky device. The warm-up runs with
/// correlated triggering disabled (see [`warmup_schedule`]); only the
/// measured run propagates domain faults.
pub fn simulate_dp_perf_warmed_faulty(
    program: &Program,
    platform: &hetero_platform::Platform,
    schedule: &hetero_platform::FaultSchedule,
    policy: hetero_platform::RetryPolicy,
) -> RunReport {
    let warm_schedule = warmup_schedule(schedule);
    let mut warm = PerfScheduler::new(platform);
    let _ = simulate_faulty(program, platform, &mut warm, &warm_schedule, policy);
    let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
    simulate_faulty(program, platform, &mut measured, schedule, policy)
}

/// [`simulate_dp_perf_warmed_faulty`] with gray-failure mitigation enabled:
/// both the warm-up and the measured run execute under `schedule` *and*
/// `health`, so the learned rates and the watchdog/breaker see the same
/// misbehaving platform.
pub fn simulate_dp_perf_warmed_resilient(
    program: &Program,
    platform: &hetero_platform::Platform,
    schedule: &hetero_platform::FaultSchedule,
    policy: hetero_platform::RetryPolicy,
    health: &HealthConfig,
) -> RunReport {
    let warm_schedule = warmup_schedule(schedule);
    let mut warm = PerfScheduler::new(platform);
    let _ = simulate_resilient(program, platform, &mut warm, &warm_schedule, policy, health);
    let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
    simulate_resilient(program, platform, &mut measured, schedule, policy, health)
}

/// [`simulate_dp_perf_warmed_resilient`] with the adaptive-repartitioning
/// controller active in the measured run. DP-Perf has no static plan to
/// re-solve (the `AdaptPlan` is `None`): the controller observes skew and
/// can at most "escalate" to a DP-Perf re-seeded from live observations —
/// the interesting comparison is against the static strategies, whose
/// plans it can actually correct.
pub fn simulate_dp_perf_warmed_adaptive(
    program: &Program,
    platform: &hetero_platform::Platform,
    schedule: &hetero_platform::FaultSchedule,
    policy: hetero_platform::RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
) -> RunReport {
    let warm_schedule = warmup_schedule(schedule);
    let mut warm = PerfScheduler::new(platform);
    let _ = simulate_resilient(program, platform, &mut warm, &warm_schedule, policy, health);
    let mut measured = PerfScheduler::seeded(platform, warm.rates().clone());
    simulate_adaptive(
        program,
        platform,
        &mut measured,
        schedule,
        policy,
        health,
        adapt,
        None,
    )
}
