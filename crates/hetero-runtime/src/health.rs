//! Gray-failure resilience: device health, straggler hedging, and silent
//! data corruption detection.
//!
//! PR 1's fault machinery handles *fail-stop* faults — an attempt fails, a
//! transfer errors, a device dies, and the runtime notices immediately.
//! Real heterogeneous platforms mostly degrade through **gray failures**
//! that no retry loop ever sees:
//!
//! * **stragglers** — thermal throttling or co-tenant contention turn a
//!   device 4–8× slower while every task still "succeeds";
//! * **flaky devices** — an elevated transient-fault rate: retries keep
//!   passing, so the device never looks dead, yet it keeps burning time;
//! * **silent data corruption (SDC)** — a task completes on time with a
//!   wrong result; nothing faults at all.
//!
//! The paper's whole argument rests on *predicted* per-device execution
//! times (Glinda's model-based split), so a device that silently runs 5×
//! slow or returns wrong bytes invalidates the chosen strategy. This module
//! is the runtime feedback loop that closes the gap, configured through
//! [`HealthConfig`]:
//!
//! * a **watchdog** ([`WatchdogConfig`]) compares each attempt's elapsed
//!   time against the model's prediction and, past a configurable slack
//!   factor, launches a *hedged duplicate* on the best other device — first
//!   finisher wins, the loser is cancelled and its slot time is charged to
//!   [`HealthReport::time_hedged`];
//! * a **verification policy** ([`VerificationPolicy`]) re-executes a
//!   seeded sample of each epoch's tasks on a peer device at the taskwait
//!   barrier and compares results; a detected corruption rolls the epoch
//!   back to its checkpoint (the PR-1 epoch-commit machinery) and re-runs
//!   it;
//! * a per-device **health score** (EWMA over good/bad observations) feeds
//!   a **circuit breaker** ([`BreakerConfig`]): after `trip_after`
//!   consecutive bad observations the device is *quarantined* (its queue
//!   redirects to survivors), and after a cool-down it *half-opens* — one
//!   probe task is let through, and a clean probe closes the circuit again.
//!
//! Everything is deterministic: health sampling draws from its own seeded
//! SplitMix64 stream (derived from the fault schedule's seed), so enabling
//! verification never perturbs fault sampling, and identical seeds replay
//! byte-identical runs. What happened is reported through
//! [`HealthReport`] (`RunReport::health`).

use hetero_platform::{DeviceId, SimTime};
use serde::{Deserialize, Serialize};

/// Straggler watchdog configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Slack factor over the model's predicted slot occupancy before an
    /// attempt counts as straggling (must be > 1.0). With `slack = 1.5`,
    /// the watchdog fires once an attempt has run 50% past its prediction.
    pub slack: f64,
    /// Launch a hedged duplicate on the best other device when the
    /// watchdog fires (`false` observes stragglers for the health score
    /// without hedging).
    pub hedging: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            slack: 1.5,
            hedging: true,
        }
    }
}

/// How silently-corrupted outputs are detected.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum VerificationPolicy {
    /// No verification: injected corruption commits silently (the
    /// fail-stop baseline of PR 1).
    Off,
    /// Duplicate-check: at each taskwait barrier, a seeded sample of the
    /// epoch's tasks is re-executed on a peer device and compared.
    /// `sample_rate` is the per-task sampling probability in `[0, 1]`; a
    /// mismatch rolls the epoch back to its checkpoint and re-runs it.
    DupCheck {
        /// Per-task verification probability in `[0, 1]`.
        sample_rate: f64,
    },
}

impl VerificationPolicy {
    /// `true` unless the policy is [`VerificationPolicy::Off`].
    pub fn is_on(&self) -> bool {
        !matches!(self, VerificationPolicy::Off)
    }
}

/// Device-health circuit breaker configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive bad observations before the circuit opens and the
    /// device is quarantined (≥ 1). The host (device 0) is never
    /// quarantined: it is the failover target of last resort.
    pub trip_after: u32,
    /// Quarantine duration before the circuit half-opens and a probe task
    /// is let through.
    pub cooldown: SimTime,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            cooldown: SimTime::from_millis(1),
        }
    }
}

/// Configuration for the gray-failure resilience subsystem. The disabled
/// configuration ([`HealthConfig::disabled`]) makes `simulate_resilient`
/// take the exact event sequence of PR 1's `simulate_faulty`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Straggler watchdog (`None` = off).
    pub watchdog: Option<WatchdogConfig>,
    /// Silent-data-corruption detection.
    pub verification: VerificationPolicy,
    /// Device-health circuit breaker (`None` = off).
    pub breaker: Option<BreakerConfig>,
    /// EWMA weight of each new good/bad observation on the per-device
    /// health score in `(0, 1]`.
    pub ewma_alpha: f64,
    /// Detected-corruption rollbacks allowed per epoch before the epoch's
    /// re-run disables corruption injection (the SDC analog of safe mode:
    /// it guarantees termination, and the final commit is clean).
    pub max_rollbacks_per_epoch: u32,
}

impl HealthConfig {
    /// Everything off: byte-identical to PR 1's fail-stop executor.
    pub fn disabled() -> Self {
        HealthConfig {
            watchdog: None,
            verification: VerificationPolicy::Off,
            breaker: None,
            ewma_alpha: 0.25,
            max_rollbacks_per_epoch: 2,
        }
    }

    /// Full gray-failure monitoring with default parameters: watchdog +
    /// hedging, duplicate-check verification on 25% of tasks, and the
    /// circuit breaker.
    pub fn monitored() -> Self {
        HealthConfig {
            watchdog: Some(WatchdogConfig::default()),
            verification: VerificationPolicy::DupCheck { sample_rate: 0.25 },
            breaker: Some(BreakerConfig::default()),
            ewma_alpha: 0.25,
            max_rollbacks_per_epoch: 2,
        }
    }

    /// `true` when any mitigation (watchdog, verification, breaker) is on.
    pub fn enabled(&self) -> bool {
        self.watchdog.is_some() || self.verification.is_on() || self.breaker.is_some()
    }

    /// Check internal consistency: slack > 1, probabilities in `[0, 1]`,
    /// alpha in `(0, 1]`, trip threshold ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(w) = &self.watchdog {
            if w.slack <= 1.0 || w.slack.is_nan() {
                return Err(format!("watchdog slack {} must be > 1.0", w.slack));
            }
        }
        if let VerificationPolicy::DupCheck { sample_rate } = self.verification {
            if !(0.0..=1.0).contains(&sample_rate) {
                return Err(format!("sample_rate {sample_rate} outside [0, 1]"));
            }
        }
        if let Some(b) = &self.breaker {
            if b.trip_after == 0 {
                return Err("breaker trip_after must be >= 1".into());
            }
        }
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(format!("ewma_alpha {} outside (0, 1]", self.ewma_alpha));
        }
        Ok(())
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig::disabled()
    }
}

/// Circuit-breaker state of one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: the device accepts work.
    #[default]
    Closed,
    /// Quarantined: new bindings redirect to survivors.
    Open,
    /// Cool-down elapsed: one probe task is let through; a clean probe
    /// closes the circuit, a bad one re-opens it.
    HalfOpen,
}

/// One quarantine interval of one device. `until` is `None` while the
/// device is still quarantined when the run ends.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuarantineSpan {
    /// The quarantined device.
    pub dev: DeviceId,
    /// When the circuit opened.
    pub from: SimTime,
    /// When the circuit closed again (`None` = still open at run end).
    pub until: Option<SimTime>,
}

/// What the gray-failure machinery observed and did during one run (all
/// zeros/empty for a healthy run or with monitoring disabled). Reported
/// through `RunReport::health`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Final per-device EWMA health scores in `[0, 1]` (1.0 = perfectly
    /// healthy; empty when health monitoring was disabled).
    pub scores: Vec<f64>,
    /// Hedged duplicates launched by the straggler watchdog.
    pub hedges_issued: u64,
    /// Hedges that finished before their straggling primary.
    pub hedges_won: u64,
    /// Slot time of cancelled hedge losers (straggling primaries overtaken
    /// by their hedge, and hedges overtaken by their primary), net of
    /// fault losses already booked to `FaultCounters::time_lost`.
    pub time_hedged: SimTime,
    /// Silently corrupted task results injected by the schedule (ground
    /// truth; counted whether or not verification was on).
    pub corruptions_injected: u64,
    /// Injected corruptions caught by the verification policy.
    pub corruptions_detected: u64,
    /// Task results still corrupt when the run committed them (escaped
    /// detection; 0 under `DupCheck` with `sample_rate` 1.0).
    pub corrupt_committed: u64,
    /// Tasks re-executed on a peer device for verification.
    pub tasks_verified: u64,
    /// Simulated time spent on verification re-execution.
    pub time_verifying: SimTime,
    /// Epochs rolled back to their checkpoint after a detected corruption.
    pub epoch_rollbacks: u64,
    /// Circuit-breaker trips (device quarantined).
    pub circuit_opens: u64,
    /// Circuits closed again after a clean probe.
    pub circuit_closes: u64,
    /// Probe tasks dispatched to half-open devices.
    pub probes: u64,
    /// Quarantine intervals, in open order.
    pub quarantine: Vec<QuarantineSpan>,
}

impl HealthReport {
    /// Injected corruptions that were neither detected nor discarded (a
    /// hedge or rollback can discard a corrupt result without detecting
    /// it): the run's residual SDC exposure.
    pub fn detection_shortfall(&self) -> u64 {
        self.corruptions_injected
            .saturating_sub(self.corruptions_detected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert_and_valid() {
        let c = HealthConfig::disabled();
        assert!(!c.enabled());
        assert!(c.validate().is_ok());
        assert_eq!(c, HealthConfig::default());
    }

    #[test]
    fn monitored_config_is_enabled_and_valid() {
        let c = HealthConfig::monitored();
        assert!(c.enabled());
        assert!(c.validate().is_ok());
        assert!(c.watchdog.unwrap().hedging);
        assert!(c.verification.is_on());
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut c = HealthConfig::monitored();
        c.watchdog = Some(WatchdogConfig {
            slack: 1.0,
            hedging: true,
        });
        assert!(c.validate().is_err());

        let mut c = HealthConfig::monitored();
        c.verification = VerificationPolicy::DupCheck { sample_rate: 1.5 };
        assert!(c.validate().is_err());

        let mut c = HealthConfig::monitored();
        c.breaker = Some(BreakerConfig {
            trip_after: 0,
            cooldown: SimTime::ZERO,
        });
        assert!(c.validate().is_err());

        let mut c = HealthConfig::monitored();
        c.ewma_alpha = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn report_shortfall() {
        let r = HealthReport {
            corruptions_injected: 5,
            corruptions_detected: 3,
            ..HealthReport::default()
        };
        assert_eq!(r.detection_shortfall(), 2);
        assert_eq!(HealthReport::default().detection_shortfall(), 0);
    }
}
