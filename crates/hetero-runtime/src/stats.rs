//! Run reports: everything the paper's figures need from one execution.

use crate::adapt::AdaptReport;
use crate::health::HealthReport;
use crate::obs::TimeBreakdown;
use crate::program::KernelId;
use hetero_platform::{DeviceId, FaultCounters, FaultEvent, PlatformCounters, SimTime};
use serde::{Deserialize, Serialize};

/// Per-kernel placement statistics (Figure 10 reports per-kernel ratios for
/// SP-Varied).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name.
    pub name: String,
    /// Items processed per device (index = `DeviceId.0`).
    pub items_per_device: Vec<u64>,
    /// Instances executed per device.
    pub tasks_per_device: Vec<u64>,
}

impl KernelStats {
    /// Fraction of this kernel's items processed by `dev`.
    pub fn item_share(&self, dev: DeviceId) -> f64 {
        let total: u64 = self.items_per_device.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.items_per_device[dev.0] as f64 / total as f64
        }
    }
}

/// The result of one simulated execution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheduler name ("pinned", "DP-Dep", "DP-Perf").
    pub scheduler: String,
    /// End-to-end virtual execution time (the paper's y-axes).
    pub makespan: SimTime,
    /// Device/transfer/scheduling counters.
    pub counters: PlatformCounters,
    /// Per-kernel placement stats, indexed by `KernelId.0`.
    pub per_kernel: Vec<KernelStats>,
    /// `true` per device if it is a GPU (index = `DeviceId.0`).
    pub device_is_gpu: Vec<bool>,
    /// What the fault machinery did (all zeros for a healthy run).
    pub faults: FaultCounters,
    /// Fault events synthesized *during* the run by correlated fault
    /// domains (empty without domains). Appending these to the input
    /// schedule's events — `FaultTrace::replay_schedule` does exactly
    /// that — replays the run byte-identically.
    pub synthesized_faults: Vec<FaultEvent>,
    /// What the gray-failure machinery did (empty/default when health
    /// monitoring is disabled and no corruption was injected).
    pub health: HealthReport,
    /// What the adaptive-repartitioning controller did (all zeros when
    /// adaptation is disabled or the run stayed balanced).
    pub adapt: AdaptReport,
    /// Where the makespan went: per-device slot-time decomposed into
    /// compute / transfer / scheduling / adaptation / fault-loss /
    /// hedge-waste / rollback / verify / dead / idle. Per device, the
    /// components sum to `makespan × slots`.
    pub breakdown: TimeBreakdown,
}

impl RunReport {
    /// Fraction of all items processed on GPU devices — the paper's
    /// partitioning ratio (GPU side).
    pub fn gpu_item_share(&self) -> f64 {
        let (mut gpu, mut total) = (0u64, 0u64);
        for (i, c) in self.counters.devices.iter().enumerate() {
            total += c.items;
            if self.device_is_gpu[i] {
                gpu += c.items;
            }
        }
        if total == 0 {
            0.0
        } else {
            gpu as f64 / total as f64
        }
    }

    /// CPU-side partitioning ratio.
    pub fn cpu_item_share(&self) -> f64 {
        1.0 - self.gpu_item_share()
    }

    /// Fraction of task instances placed on GPU devices (how the paper
    /// reports ratios for dynamic strategies).
    pub fn gpu_task_share(&self) -> f64 {
        let (mut gpu, mut total) = (0u64, 0u64);
        for (i, c) in self.counters.devices.iter().enumerate() {
            total += c.tasks;
            if self.device_is_gpu[i] {
                gpu += c.tasks;
            }
        }
        if total == 0 {
            0.0
        } else {
            gpu as f64 / total as f64
        }
    }

    /// Per-kernel GPU item share.
    pub fn kernel_gpu_share(&self, kernel: KernelId) -> f64 {
        let ks = &self.per_kernel[kernel.0];
        let (mut gpu, mut total) = (0u64, 0u64);
        for (i, &n) in ks.items_per_device.iter().enumerate() {
            total += n;
            if self.device_is_gpu[i] {
                gpu += n;
            }
        }
        if total == 0 {
            0.0
        } else {
            gpu as f64 / total as f64
        }
    }

    /// Degradation of this (faulty) run relative to a healthy baseline:
    /// `makespan / healthy.makespan`. 1.0 means the faults cost nothing;
    /// the matchmaker's robustness ranking sorts strategies by this ratio.
    pub fn degradation_vs(&self, healthy: &RunReport) -> f64 {
        if healthy.makespan.is_zero() {
            1.0
        } else {
            self.makespan.as_secs_f64() / healthy.makespan.as_secs_f64()
        }
    }

    /// Fraction of total transfer time relative to the makespan (the
    /// "data transfer takes 88% of the GPU execution time" style numbers
    /// in the paper's text are per-device; this global ratio is used in
    /// reports).
    pub fn transfer_time_fraction(&self) -> f64 {
        if self.makespan.is_zero() {
            0.0
        } else {
            self.counters.transfers.time.as_secs_f64() / self.makespan.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::PlatformCounters;

    #[test]
    fn shares() {
        let mut counters = PlatformCounters::new(2);
        counters.record_task(DeviceId(0), 60, SimTime::from_millis(1));
        counters.record_task(DeviceId(1), 40, SimTime::from_millis(1));
        let r = RunReport {
            scheduler: "pinned".into(),
            makespan: SimTime::from_millis(10),
            counters,
            per_kernel: vec![KernelStats {
                name: "k".into(),
                items_per_device: vec![60, 40],
                tasks_per_device: vec![1, 1],
            }],
            device_is_gpu: vec![false, true],
            faults: FaultCounters::default(),
            synthesized_faults: Vec::new(),
            health: HealthReport::default(),
            adapt: AdaptReport::default(),
            breakdown: TimeBreakdown::default(),
        };
        assert!((r.gpu_item_share() - 0.4).abs() < 1e-12);
        assert!((r.cpu_item_share() - 0.6).abs() < 1e-12);
        assert!((r.gpu_task_share() - 0.5).abs() < 1e-12);
        assert!((r.kernel_gpu_share(KernelId(0)) - 0.4).abs() < 1e-12);
    }
}
