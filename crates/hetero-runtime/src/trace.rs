//! Execution traces: what happened when, on which device.
//!
//! [`crate::executor::simulate_traced`] records a [`Trace`] alongside the
//! run report: per-instance start/end times and placements, every data
//! transfer, and the taskwait flush windows. Traces power debugging, the
//! timeline example, and tests that assert *when* things happened rather
//! than only aggregate counters.

use crate::program::{KernelId, TaskId};
use hetero_platform::{DeviceId, MemSpaceId, Platform, SimTime};
use serde::{Deserialize, Serialize};

/// Default bucket count for ASCII gantt rendering, shared by the bench
/// binary and the examples (`--width` overrides it in `matchmake`).
pub const DEFAULT_GANTT_WIDTH: usize = 72;

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A task instance occupied a device slot over `[start, end)` (the
    /// span includes its scheduling overhead and inbound transfers).
    Task {
        /// Instance id.
        task: TaskId,
        /// Kernel the instance belongs to.
        kernel: KernelId,
        /// Device it ran on.
        dev: DeviceId,
        /// Items processed.
        items: u64,
        /// Slot occupancy start.
        start: SimTime,
        /// Slot occupancy end.
        end: SimTime,
    },
    /// A host↔device transfer.
    Transfer {
        /// Source memory space.
        from: MemSpaceId,
        /// Destination memory space.
        to: MemSpaceId,
        /// Payload bytes.
        bytes: u64,
        /// Transfer start.
        start: SimTime,
        /// Transfer end.
        end: SimTime,
    },
    /// A taskwait (or end-of-program) flush window.
    Flush {
        /// Barrier sequence number (0-based).
        epoch: usize,
        /// When the barrier was reached.
        start: SimTime,
        /// When all write-backs had landed.
        end: SimTime,
    },
    /// A transient task-attempt failure (the attempt's work was wasted;
    /// the retry policy decides what happens next).
    TaskFault {
        /// The instance that faulted.
        task: TaskId,
        /// Device it was running on.
        dev: DeviceId,
        /// Attempt number on this device (1-based).
        attempt: u32,
        /// When the failure was detected (end of the wasted attempt).
        at: SimTime,
    },
    /// A transfer attempt failed and was re-issued at full wire cost.
    TransferRetry {
        /// Source memory space.
        from: MemSpaceId,
        /// Destination memory space.
        to: MemSpaceId,
        /// Payload bytes.
        bytes: u64,
        /// Failed attempt start.
        start: SimTime,
        /// Failed attempt end (the re-issue follows).
        end: SimTime,
    },
    /// A device permanently dropped out.
    DeviceDropout {
        /// The device that died.
        dev: DeviceId,
        /// When it died.
        at: SimTime,
    },
    /// A task was forcibly moved to a surviving device (retry exhaustion,
    /// or its binding named a dead device).
    Failover {
        /// The instance that moved.
        task: TaskId,
        /// Where it was bound.
        from: DeviceId,
        /// Where it will run instead.
        to: DeviceId,
        /// When the move happened.
        at: SimTime,
    },
    /// Retry exhaustion held a device slot over `[start, end)`: the
    /// dispatch burned its failed attempts and backoffs, produced nothing,
    /// and the task failed over elsewhere — the span is pure occupancy
    /// (blamed as fault loss), not useful execution.
    SlotHeld {
        /// The instance whose failed attempts held the slot.
        task: TaskId,
        /// Kernel the instance belongs to.
        kernel: KernelId,
        /// Device whose slot was held.
        dev: DeviceId,
        /// When the doomed dispatch began.
        start: SimTime,
        /// When the slot was released (the failover instant).
        end: SimTime,
    },
    /// The watchdog judged an attempt a straggler and launched a hedged
    /// duplicate on another device (first finisher wins).
    HedgeLaunched {
        /// The straggling instance.
        task: TaskId,
        /// Device the straggling attempt occupies.
        from: DeviceId,
        /// Device the duplicate was launched on.
        to: DeviceId,
        /// When the hedge was launched.
        at: SimTime,
    },
    /// A hedged duplicate finished before the straggling original; the
    /// original's result is discarded and its slot time charged to
    /// `time_hedged`.
    HedgeWon {
        /// The instance whose hedge won.
        task: TaskId,
        /// Device the winning duplicate ran on.
        dev: DeviceId,
        /// When the duplicate finished.
        at: SimTime,
    },
    /// Duplicate-execution verification caught a silently corrupted output.
    CorruptionDetected {
        /// The instance whose output was wrong.
        task: TaskId,
        /// Device that produced the corrupt output.
        dev: DeviceId,
        /// When the mismatch was established.
        at: SimTime,
    },
    /// The health circuit breaker quarantined a device (its queue is
    /// redirected to survivors until a probe succeeds).
    CircuitOpen {
        /// The quarantined device.
        dev: DeviceId,
        /// When the breaker tripped.
        at: SimTime,
    },
    /// A half-open probe succeeded and the device rejoined the pool.
    CircuitClose {
        /// The rehabilitated device.
        dev: DeviceId,
        /// When the breaker re-closed.
        at: SimTime,
    },
    /// The adaptive controller observed per-device busy-time skew above
    /// its threshold at a taskwait barrier.
    ImbalanceDetected {
        /// Epoch whose barrier observed the imbalance.
        epoch: usize,
        /// Observed skew, `(max − min) / max` over slot-normalised busy.
        skew: f64,
        /// When the barrier was reached.
        at: SimTime,
    },
    /// The controller re-solved the partition against observed
    /// throughputs and re-pinned the remaining epochs' chunks.
    Repartitioned {
        /// Epoch whose barrier triggered the re-solve.
        epoch: usize,
        /// Corrected split: items on the accelerator side.
        gpu_items: u64,
        /// Corrected split: items on the CPU side.
        cpu_items: u64,
        /// When the re-solve was applied.
        at: SimTime,
    },
    /// The static plan was abandoned for its dynamic sibling (DP-Perf)
    /// after consecutive corrections missed the balance target.
    StrategyEscalated {
        /// Epoch whose barrier escalated the strategy.
        epoch: usize,
        /// When the escalation happened.
        at: SimTime,
    },
    /// A fault in one member of a fault domain raised a sibling's fault
    /// probability for a window (correlated trigger, synthesized during
    /// the run and recorded in `RunReport::synthesized_faults`).
    CorrelatedFaultTriggered {
        /// Index of the triggering domain in `FaultSchedule::domains`.
        domain: usize,
        /// The member whose fault triggered the correlation.
        source: DeviceId,
        /// The sibling whose fault probability was raised.
        sibling: DeviceId,
        /// End of the raised-probability window.
        until: SimTime,
        /// When the trigger fired.
        at: SimTime,
    },
    /// An escalated run returned to its (re-solved) static plan after
    /// consecutive calm barriers with no open fault window (DP-Perf →
    /// SP-* de-escalation).
    StrategyReinstated {
        /// Epoch whose barrier reinstated the static plan.
        epoch: usize,
        /// When the reinstatement happened.
        at: SimTime,
    },
    /// The plan-repair subsystem re-solved the remaining epochs over the
    /// surviving device set after a device death or quarantine and
    /// rebound the queued chunks.
    PlanRepaired {
        /// The device whose death or quarantine triggered the repair.
        dev: DeviceId,
        /// Queued chunks whose binding changed.
        moved: u64,
        /// When the repair was applied.
        at: SimTime,
    },
    /// A healing re-plan readmitted a reclosed (HalfOpen→Closed) device
    /// into the surviving split.
    DeviceReadmitted {
        /// The readmitted device.
        dev: DeviceId,
        /// Queued chunks whose binding changed.
        moved: u64,
        /// When the healing re-plan was applied.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The `[start, end)` interval of a span event (tasks, transfers,
    /// retried transfers, flush windows); `None` for point events.
    ///
    /// The match is exhaustive on purpose: a new variant must decide here
    /// whether it is a span or a point, which keeps every consumer
    /// ([`Trace::end_time`], the gantt, the Chrome exporter, the critical
    /// path) in sync automatically.
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        match self {
            TraceEvent::Task { start, end, .. }
            | TraceEvent::Transfer { start, end, .. }
            | TraceEvent::Flush { start, end, .. }
            | TraceEvent::TransferRetry { start, end, .. }
            | TraceEvent::SlotHeld { start, end, .. } => Some((*start, *end)),
            TraceEvent::TaskFault { .. }
            | TraceEvent::DeviceDropout { .. }
            | TraceEvent::Failover { .. }
            | TraceEvent::HedgeLaunched { .. }
            | TraceEvent::HedgeWon { .. }
            | TraceEvent::CorruptionDetected { .. }
            | TraceEvent::CircuitOpen { .. }
            | TraceEvent::CircuitClose { .. }
            | TraceEvent::ImbalanceDetected { .. }
            | TraceEvent::Repartitioned { .. }
            | TraceEvent::StrategyEscalated { .. }
            | TraceEvent::CorrelatedFaultTriggered { .. }
            | TraceEvent::StrategyReinstated { .. }
            | TraceEvent::PlanRepaired { .. }
            | TraceEvent::DeviceReadmitted { .. } => None,
        }
    }

    /// The instant the event is anchored at: a span's `end`, a point
    /// event's `at`. This is the timestamp `Trace::end_time` maximises
    /// over.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Task { end, .. }
            | TraceEvent::Transfer { end, .. }
            | TraceEvent::Flush { end, .. }
            | TraceEvent::TransferRetry { end, .. }
            | TraceEvent::SlotHeld { end, .. } => *end,
            TraceEvent::TaskFault { at, .. }
            | TraceEvent::DeviceDropout { at, .. }
            | TraceEvent::Failover { at, .. }
            | TraceEvent::HedgeLaunched { at, .. }
            | TraceEvent::HedgeWon { at, .. }
            | TraceEvent::CorruptionDetected { at, .. }
            | TraceEvent::CircuitOpen { at, .. }
            | TraceEvent::CircuitClose { at, .. }
            | TraceEvent::ImbalanceDetected { at, .. }
            | TraceEvent::Repartitioned { at, .. }
            | TraceEvent::StrategyEscalated { at, .. }
            | TraceEvent::CorrelatedFaultTriggered { at, .. }
            | TraceEvent::StrategyReinstated { at, .. }
            | TraceEvent::PlanRepaired { at, .. }
            | TraceEvent::DeviceReadmitted { at, .. } => *at,
        }
    }
}

/// A complete execution trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Events in recording order (task events ordered by dispatch).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// All task events, in dispatch order.
    pub fn tasks(&self) -> impl Iterator<Item = (&TaskId, &DeviceId, &SimTime, &SimTime)> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Task {
                task,
                dev,
                start,
                end,
                ..
            } => Some((task, dev, start, end)),
            _ => None,
        })
    }

    /// Total busy time recorded for one device across all its slots.
    pub fn device_busy(&self, dev: DeviceId) -> SimTime {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Task {
                    dev: d, start, end, ..
                } if *d == dev => Some(*end - *start),
                _ => None,
            })
            .sum()
    }

    /// The latest instant any recorded event touches ([`TraceEvent::at`]
    /// maximised over the trace); zero for an empty trace.
    pub fn end_time(&self) -> SimTime {
        self.events
            .iter()
            .map(TraceEvent::at)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Render an ASCII utilisation timeline: one row per device, `width`
    /// time buckets; each cell shows the fraction of the device's slots
    /// busy in that bucket (` .:-=+*#%@` from idle to saturated).
    pub fn gantt(&self, platform: &Platform, width: usize) -> String {
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let end = self.end_time();
        if end.is_zero() || width == 0 {
            return String::from("(empty trace)\n");
        }
        let total = end.as_secs_f64();
        let bucket = total / width as f64;
        let mut out = String::new();
        for dev in &platform.devices {
            let slots = dev.spec.kind.slots() as f64;
            // busy[b] = slot-seconds of work in bucket b.
            let mut busy = vec![0.0f64; width];
            for e in &self.events {
                let TraceEvent::Task {
                    dev: d, start, end, ..
                } = e
                else {
                    continue;
                };
                if *d != dev.id {
                    continue;
                }
                let (s, t) = (start.as_secs_f64(), end.as_secs_f64());
                let first = ((s / bucket) as usize).min(width - 1);
                let last = ((t / bucket) as usize).min(width - 1);
                for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                    let b0 = b as f64 * bucket;
                    let b1 = b0 + bucket;
                    let overlap = (t.min(b1) - s.max(b0)).max(0.0);
                    *slot += overlap;
                }
            }
            let row: String = busy
                .iter()
                .map(|&b| {
                    let util = (b / (bucket * slots)).clamp(0.0, 1.0);
                    SHADES[((util * 9.0).round() as usize).min(9)]
                })
                .collect();
            out.push_str(&format!("{:<24} |{row}|\n", dev.spec.name));
        }
        out.push_str(&format!(
            "{:<24}  0 {:.<width$} {}\n",
            "",
            "",
            end,
            width = width.saturating_sub(2)
        ));
        out
    }
}

impl Trace {
    /// Export as Chrome trace-event JSON (load in `chrome://tracing` or
    /// Perfetto). Tasks become complete (`"ph":"X"`) events; each device is
    /// a process and overlapping tasks are spread over numbered lanes
    /// (threads) greedily, so concurrent CPU instances render side by side.
    /// Transfers and flush windows appear under a synthetic "interconnect"
    /// process.
    pub fn to_chrome_json(&self, platform: &Platform) -> String {
        #[derive(serde::Serialize)]
        struct Ev<'a> {
            name: String,
            ph: &'a str,
            ts: f64,
            dur: f64,
            pid: usize,
            tid: usize,
            args: serde_json::Value,
        }
        let mut events: Vec<Ev> = Vec::new();
        // Greedy lane assignment per device.
        let mut lanes: Vec<Vec<SimTime>> = platform.devices.iter().map(|_| Vec::new()).collect();
        // Cumulative per-device slot busy, sampled as a counter track at
        // each flush barrier.
        let mut cum_busy: Vec<SimTime> = vec![SimTime::ZERO; platform.devices.len()];
        for e in &self.events {
            match e {
                TraceEvent::Task {
                    task,
                    kernel,
                    dev,
                    items,
                    start,
                    end,
                } => {
                    cum_busy[dev.0] += *end - *start;
                    let lane = {
                        let ls = &mut lanes[dev.0];
                        match ls.iter().position(|&free| free <= *start) {
                            Some(i) => {
                                ls[i] = *end;
                                i
                            }
                            None => {
                                ls.push(*end);
                                ls.len() - 1
                            }
                        }
                    };
                    events.push(Ev {
                        name: format!("task{} (k{})", task.0, kernel.0),
                        ph: "X",
                        ts: start.as_micros_f64(),
                        dur: (*end - *start).as_micros_f64(),
                        pid: dev.0,
                        tid: lane,
                        args: serde_json::json!({ "items": items }),
                    });
                }
                TraceEvent::SlotHeld {
                    task,
                    kernel,
                    dev,
                    start,
                    end,
                } => {
                    cum_busy[dev.0] += *end - *start;
                    let lane = {
                        let ls = &mut lanes[dev.0];
                        match ls.iter().position(|&free| free <= *start) {
                            Some(i) => {
                                ls[i] = *end;
                                i
                            }
                            None => {
                                ls.push(*end);
                                ls.len() - 1
                            }
                        }
                    };
                    events.push(Ev {
                        name: format!("task{} HELD (k{})", task.0, kernel.0),
                        ph: "X",
                        ts: start.as_micros_f64(),
                        dur: (*end - *start).as_micros_f64(),
                        pid: dev.0,
                        tid: lane,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::Transfer {
                    from,
                    to,
                    bytes,
                    start,
                    end,
                } => {
                    events.push(Ev {
                        name: format!("xfer mem{}->mem{} ({} B)", from.0, to.0, bytes),
                        ph: "X",
                        ts: start.as_micros_f64(),
                        dur: (*end - *start).as_micros_f64(),
                        pid: platform.devices.len(),
                        tid: from.0,
                        args: serde_json::json!({ "bytes": bytes }),
                    });
                }
                TraceEvent::Flush { epoch, start, end } => {
                    events.push(Ev {
                        name: format!("taskwait flush #{epoch}"),
                        ph: "X",
                        ts: start.as_micros_f64(),
                        dur: (*end - *start).as_micros_f64(),
                        pid: platform.devices.len(),
                        tid: 64,
                        args: serde_json::Value::Null,
                    });
                    // Blame counter track: cumulative slot-busy seconds per
                    // device, sampled at each barrier (renders as stacked
                    // counter series in chrome://tracing / Perfetto).
                    events.push(Ev {
                        name: String::from("cumulative busy (s)"),
                        ph: "C",
                        ts: end.as_micros_f64(),
                        dur: 0.0,
                        pid: platform.devices.len(),
                        tid: 65,
                        args: serde_json::Value::Map(
                            platform
                                .devices
                                .iter()
                                .map(|d| {
                                    (
                                        d.spec.name.clone(),
                                        serde_json::Value::F64(cum_busy[d.id.0].as_secs_f64()),
                                    )
                                })
                                .collect(),
                        ),
                    });
                }
                TraceEvent::TransferRetry {
                    from,
                    to,
                    bytes,
                    start,
                    end,
                } => {
                    events.push(Ev {
                        name: format!("xfer RETRY mem{}->mem{} ({} B)", from.0, to.0, bytes),
                        ph: "X",
                        ts: start.as_micros_f64(),
                        dur: (*end - *start).as_micros_f64(),
                        pid: platform.devices.len(),
                        tid: from.0,
                        args: serde_json::json!({ "bytes": bytes }),
                    });
                }
                TraceEvent::TaskFault {
                    task,
                    dev,
                    attempt,
                    at,
                } => {
                    events.push(Ev {
                        name: format!("FAULT task{} attempt {attempt}", task.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::json!({ "attempt": attempt }),
                    });
                }
                TraceEvent::DeviceDropout { dev, at } => {
                    events.push(Ev {
                        name: format!("DROPOUT device {}", dev.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::Failover { task, from, to, at } => {
                    events.push(Ev {
                        name: format!("FAILOVER task{} dev{}->dev{}", task.0, from.0, to.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: to.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::HedgeLaunched { task, from, to, at } => {
                    events.push(Ev {
                        name: format!("HEDGE task{} dev{}->dev{}", task.0, from.0, to.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: to.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::HedgeWon { task, dev, at } => {
                    events.push(Ev {
                        name: format!("HEDGE WON task{}", task.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::CorruptionDetected { task, dev, at } => {
                    events.push(Ev {
                        name: format!("CORRUPT task{}", task.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::CircuitOpen { dev, at } => {
                    events.push(Ev {
                        name: format!("CIRCUIT OPEN device {}", dev.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::CircuitClose { dev, at } => {
                    events.push(Ev {
                        name: format!("CIRCUIT CLOSE device {}", dev.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::ImbalanceDetected { epoch, skew, at } => {
                    events.push(Ev {
                        name: format!("IMBALANCE epoch {epoch} (skew {skew:.2})"),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: platform.devices.len(),
                        tid: 63,
                        args: serde_json::json!({ "skew": skew }),
                    });
                }
                TraceEvent::Repartitioned {
                    epoch,
                    gpu_items,
                    cpu_items,
                    at,
                } => {
                    events.push(Ev {
                        name: format!(
                            "REPARTITION epoch {epoch} (gpu {gpu_items} / cpu {cpu_items})"
                        ),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: platform.devices.len(),
                        tid: 63,
                        args: serde_json::json!({ "gpu_items": gpu_items, "cpu_items": cpu_items }),
                    });
                }
                TraceEvent::StrategyEscalated { epoch, at } => {
                    events.push(Ev {
                        name: format!("ESCALATE epoch {epoch} -> DP-Perf"),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: platform.devices.len(),
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::CorrelatedFaultTriggered {
                    domain,
                    source,
                    sibling,
                    until,
                    at,
                } => {
                    events.push(Ev {
                        name: format!(
                            "CORRELATED domain {domain} dev{}->dev{}",
                            source.0, sibling.0
                        ),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: sibling.0,
                        tid: 63,
                        args: serde_json::json!({ "until_us": until.as_micros_f64() }),
                    });
                }
                TraceEvent::StrategyReinstated { epoch, at } => {
                    events.push(Ev {
                        name: format!("REINSTATE epoch {epoch} -> static plan"),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: platform.devices.len(),
                        tid: 63,
                        args: serde_json::Value::Null,
                    });
                }
                TraceEvent::PlanRepaired { dev, moved, at } => {
                    events.push(Ev {
                        name: format!("PLAN REPAIR after dev{} ({moved} moved)", dev.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: platform.devices.len(),
                        tid: 63,
                        args: serde_json::json!({ "moved": moved }),
                    });
                }
                TraceEvent::DeviceReadmitted { dev, moved, at } => {
                    events.push(Ev {
                        name: format!("READMIT dev{} ({moved} moved)", dev.0),
                        ph: "X",
                        ts: at.as_micros_f64(),
                        dur: 0.0,
                        pid: dev.0,
                        tid: 63,
                        args: serde_json::json!({ "moved": moved }),
                    });
                }
            }
        }
        serde_json::to_string_pretty(&events).expect("serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(task: usize, dev: usize, s: u64, e: u64) -> TraceEvent {
        TraceEvent::Task {
            task: TaskId(task),
            kernel: KernelId(0),
            dev: DeviceId(dev),
            items: 1,
            start: SimTime::from_millis(s),
            end: SimTime::from_millis(e),
        }
    }

    #[test]
    fn device_busy_sums_task_spans() {
        let trace = Trace {
            events: vec![t(0, 0, 0, 10), t(1, 0, 5, 20), t(2, 1, 0, 7)],
        };
        assert_eq!(trace.device_busy(DeviceId(0)), SimTime::from_millis(25));
        assert_eq!(trace.device_busy(DeviceId(1)), SimTime::from_millis(7));
    }

    #[test]
    fn gantt_renders_rows_per_device() {
        let platform = hetero_platform::Platform::test_small();
        let trace = Trace {
            events: vec![t(0, 0, 0, 50), t(1, 1, 50, 100)],
        };
        let g = trace.gantt(&platform, 20);
        assert_eq!(g.lines().count(), 3); // 2 devices + axis
        assert!(g.contains("test-cpu"));
        assert!(g.contains("test-gpu"));
    }

    #[test]
    fn chrome_export_is_valid_json_with_nonoverlapping_lanes() {
        let platform = hetero_platform::Platform::test_small();
        let trace = Trace {
            events: vec![t(0, 0, 0, 50), t(1, 0, 10, 60), t(2, 0, 55, 80)],
        };
        let json = trace.to_chrome_json(&platform);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 3);
        // Overlapping tasks 0 and 1 get distinct lanes; task 2 reuses one.
        let lanes: Vec<(f64, f64, u64)> = arr
            .iter()
            .map(|e| {
                (
                    e["ts"].as_f64().unwrap(),
                    e["dur"].as_f64().unwrap(),
                    e["tid"].as_u64().unwrap(),
                )
            })
            .collect();
        assert_ne!(lanes[0].2, lanes[1].2);
        // No two events on the same lane overlap.
        for i in 0..lanes.len() {
            for j in i + 1..lanes.len() {
                if lanes[i].2 == lanes[j].2 {
                    let (a, b) = (&lanes[i], &lanes[j]);
                    assert!(a.0 + a.1 <= b.0 || b.0 + b.1 <= a.0);
                }
            }
        }
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let platform = hetero_platform::Platform::test_small();
        let g = Trace::default().gantt(&platform, 20);
        assert!(g.contains("empty trace"));
    }
}
