//! Data-dependence analysis.
//!
//! Builds the task dependency graph from the declared region accesses, the
//! way the OmpSs runtime does: read-after-write, write-after-read and
//! write-after-write orderings at item-interval granularity.
//!
//! The graph spans the *whole* program, including across `taskwait` points:
//! the executor enforces taskwait barriers separately, while schedulers use
//! the full graph for dependency-chain affinity (DP-Dep assigns partitions
//! of the same chain — e.g. the same grid rows across loop iterations — to
//! the same device to minimise transfers).

use crate::interval::{Interval, IntervalMap};
use crate::program::{Op, Program, TaskId};
use std::collections::BTreeMap;

/// The task dependency graph of a program.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    /// Predecessors (must complete first), per task, deduplicated & sorted.
    pub preds: Vec<Vec<TaskId>>,
    /// Successors, per task, deduplicated & sorted.
    pub succs: Vec<Vec<TaskId>>,
    /// Epoch index (taskwait-delimited) of each task.
    pub epoch_of: Vec<usize>,
}

impl TaskGraph {
    /// Analyse a program.
    pub fn build(program: &Program) -> TaskGraph {
        let n = program.task_count();
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];

        // Per-buffer: last writer per interval, and readers since that write.
        #[derive(Default)]
        struct BufState {
            writers: IntervalMap<TaskId>,
            readers: Vec<(Interval, TaskId)>,
        }
        let mut bufs: BTreeMap<usize, BufState> = BTreeMap::new();

        let mut epoch_of = Vec::with_capacity(n);
        let mut epoch = 0usize;
        let mut tid = 0usize;
        for op in &program.ops {
            match op {
                Op::Taskwait => epoch += 1,
                Op::Submit(task) => {
                    let id = TaskId(tid);
                    epoch_of.push(epoch);
                    for acc in &task.accesses {
                        let state = bufs.entry(acc.region.buffer.0).or_default();
                        let span = acc.region.span;
                        if acc.mode.reads() {
                            // RAW: after every overlapping last-writer.
                            for (_, w) in state.writers.overlapping(span) {
                                if w != id {
                                    preds[tid].push(w);
                                }
                            }
                        }
                        if acc.mode.writes() {
                            // WAW: after overlapping last-writers.
                            for (_, w) in state.writers.overlapping(span) {
                                if w != id {
                                    preds[tid].push(w);
                                }
                            }
                            // WAR: after overlapping readers-since-write.
                            let mut kept = Vec::with_capacity(state.readers.len());
                            for (iv, r) in state.readers.drain(..) {
                                if iv.overlaps(&span) {
                                    if r != id {
                                        preds[tid].push(r);
                                    }
                                    // Keep the non-overlapped leftovers.
                                    if iv.start < span.start {
                                        kept.push((
                                            Interval::new(iv.start, span.start.min(iv.end)),
                                            r,
                                        ));
                                    }
                                    if iv.end > span.end {
                                        kept.push((
                                            Interval::new(span.end.max(iv.start), iv.end),
                                            r,
                                        ));
                                    }
                                } else {
                                    kept.push((iv, r));
                                }
                            }
                            state.readers = kept;
                            state.writers.insert(span, id);
                        }
                        if acc.mode.reads() && !acc.mode.writes() {
                            state.readers.push((span, id));
                        }
                    }
                    preds[tid].sort_unstable();
                    preds[tid].dedup();
                    tid += 1;
                }
            }
        }

        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (t, ps) in preds.iter().enumerate() {
            for p in ps {
                succs[p.0].push(TaskId(t));
            }
        }
        for s in &mut succs {
            s.sort_unstable();
            s.dedup();
        }

        TaskGraph {
            preds,
            succs,
            epoch_of,
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// `true` when the program had no tasks.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Tasks with no predecessors (within-graph roots).
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&t| self.preds[t].is_empty())
            .map(TaskId)
            .collect()
    }

    /// A topological order (submission order is always one, since deps only
    /// point backwards); verifies acyclicity by construction and is used by
    /// the native executor.
    pub fn topo_order(&self) -> Vec<TaskId> {
        // Dependences always point to earlier TaskIds, so identity order is
        // topological. Assert that invariant in debug builds.
        debug_assert!(self
            .preds
            .iter()
            .enumerate()
            .all(|(t, ps)| ps.iter().all(|p| p.0 < t)));
        (0..self.len()).map(TaskId).collect()
    }

    /// Total number of edges (for tests/diagnostics).
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Access, Region};
    use crate::program::{Program, TaskId};
    use hetero_platform::KernelProfile;

    fn build(f: impl FnOnce(&mut crate::program::ProgramBuilder)) -> TaskGraph {
        let mut b = Program::builder();
        f(&mut b);
        TaskGraph::build(&b.build())
    }

    #[test]
    fn raw_dependence() {
        let g = build(|b| {
            let x = b.buffer("x", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            b.submit_dynamic(k, 100, vec![Access::write(Region::new(x, 0, 100))]);
            b.submit_dynamic(k, 50, vec![Access::read(Region::new(x, 25, 75))]);
        });
        assert_eq!(g.preds[1], vec![TaskId(0)]);
        assert_eq!(g.succs[0], vec![TaskId(1)]);
    }

    #[test]
    fn disjoint_writes_are_independent() {
        let g = build(|b| {
            let x = b.buffer("x", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            b.submit_dynamic(k, 50, vec![Access::write(Region::new(x, 0, 50))]);
            b.submit_dynamic(k, 50, vec![Access::write(Region::new(x, 50, 100))]);
        });
        assert!(g.preds[0].is_empty());
        assert!(g.preds[1].is_empty());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn war_dependence() {
        let g = build(|b| {
            let x = b.buffer("x", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            b.submit_dynamic(k, 100, vec![Access::read(Region::new(x, 0, 100))]);
            b.submit_dynamic(k, 100, vec![Access::write(Region::new(x, 0, 100))]);
        });
        assert_eq!(g.preds[1], vec![TaskId(0)]);
    }

    #[test]
    fn waw_dependence() {
        let g = build(|b| {
            let x = b.buffer("x", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            b.submit_dynamic(k, 100, vec![Access::write(Region::new(x, 0, 100))]);
            b.submit_dynamic(k, 100, vec![Access::write(Region::new(x, 0, 100))]);
        });
        assert_eq!(g.preds[1], vec![TaskId(0)]);
    }

    #[test]
    fn reader_after_partial_overwrite_depends_on_both_writers() {
        let g = build(|b| {
            let x = b.buffer("x", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            b.submit_dynamic(k, 100, vec![Access::write(Region::new(x, 0, 100))]); // t0
            b.submit_dynamic(k, 50, vec![Access::write(Region::new(x, 0, 50))]); // t1 (waw on t0)
            b.submit_dynamic(k, 100, vec![Access::read(Region::new(x, 0, 100))]);
            // t2
        });
        assert_eq!(g.preds[2], vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn war_only_for_overlapping_readers() {
        let g = build(|b| {
            let x = b.buffer("x", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            b.submit_dynamic(k, 100, vec![Access::write(Region::new(x, 0, 100))]); // t0
            b.submit_dynamic(k, 30, vec![Access::read(Region::new(x, 0, 30))]); // t1
            b.submit_dynamic(k, 30, vec![Access::read(Region::new(x, 60, 90))]); // t2
            b.submit_dynamic(k, 40, vec![Access::write(Region::new(x, 0, 40))]);
            // t3
        });
        // t3 overwrites t1's read range and t0's write, but not t2's range.
        assert_eq!(g.preds[3], vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn inout_chain() {
        // An iterated inout over the same region forms a serial chain —
        // the SK-Loop structure.
        let g = build(|b| {
            let x = b.buffer("x", 10, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            for _ in 0..4 {
                b.submit_dynamic(k, 10, vec![Access::read_write(Region::new(x, 0, 10))]);
                b.taskwait();
            }
        });
        assert_eq!(g.preds[0], vec![]);
        for t in 1..4 {
            assert_eq!(g.preds[t], vec![TaskId(t - 1)]);
        }
        assert_eq!(g.epoch_of, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stream_chain_structure() {
        // copy: c=a; scale: b=c; add: c=a+b; triad: a=b+c — per-partition
        // chains when partitions align.
        let g = build(|b| {
            let a = b.buffer("a", 100, 4);
            let bb = b.buffer("b", 100, 4);
            let c = b.buffer("c", 100, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            // Two aligned partitions per kernel.
            for (s, e) in [(0u64, 50u64), (50, 100)] {
                b.submit_dynamic(
                    k,
                    50,
                    vec![
                        Access::read(Region::new(a, s, e)),
                        Access::write(Region::new(c, s, e)),
                    ],
                );
            }
            for (s, e) in [(0u64, 50u64), (50, 100)] {
                b.submit_dynamic(
                    k,
                    50,
                    vec![
                        Access::read(Region::new(c, s, e)),
                        Access::write(Region::new(bb, s, e)),
                    ],
                );
            }
        });
        // scale partition i depends exactly on copy partition i.
        assert_eq!(g.preds[2], vec![TaskId(0)]);
        assert_eq!(g.preds[3], vec![TaskId(1)]);
    }

    #[test]
    fn topo_order_is_submission_order() {
        let g = build(|b| {
            let x = b.buffer("x", 10, 4);
            let k = b.kernel("k", KernelProfile::compute_only(1.0));
            for _ in 0..5 {
                b.submit_dynamic(k, 10, vec![Access::read_write(Region::new(x, 0, 10))]);
            }
        });
        assert_eq!(g.topo_order(), (0..5).map(TaskId).collect::<Vec<_>>());
        assert_eq!(g.roots(), vec![TaskId(0)]);
    }
}
