//! Scheduling policies.
//!
//! Three policies cover everything the paper evaluates:
//!
//! * [`PinnedScheduler`] — every task instance is pre-pinned to a device.
//!   This is how static partitioning plans (SP-Single, SP-Unified,
//!   SP-Varied) and the Only-CPU / Only-GPU baselines execute: placement is
//!   decided *before* runtime, so no scheduling overhead is charged.
//! * [`DepScheduler`] — the paper's **DP-Dep**: schedules ready instances
//!   breadth-first (round-robin over all compute slots) without considering
//!   device capability, but follows data-dependency chains — an instance
//!   whose predecessor ran on device *d* is placed on *d*, minimising
//!   transfers.
//! * [`PerfScheduler`] — the paper's **DP-Perf** (Planas et al., IPDPS'13):
//!   a performance-aware policy. For each kernel it profiles how fast each
//!   device processes an instance (a fixed warm-up of
//!   [`PerfScheduler::WARMUP_INSTANCES`] per device), tracks each device's
//!   estimated busy-until time, and binds each ready instance to the device
//!   that would finish it earliest.
//!
//! Binding happens when an instance becomes *ready* (its dependences are
//! satisfied), mirroring the eager queueing of the OmpSs runtime; bound
//! instances wait in per-device FIFO queues for a free slot.

use crate::program::{KernelId, TaskDesc, TaskId};
use hetero_platform::{DeviceId, Platform, SimTime};
use std::collections::BTreeMap;

/// Everything a policy may consult when binding a ready task.
pub struct BindCtx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The platform being scheduled onto.
    pub platform: &'a Platform,
    /// The task being bound.
    pub task: &'a TaskDesc,
    /// Its id.
    pub task_id: TaskId,
    /// Devices on which each predecessor ran (placement already decided),
    /// in predecessor order; used for dependency-chain affinity.
    pub pred_placements: &'a [DeviceId],
    /// Estimated time to move the task's input data to a device, given the
    /// current coherence state (zero when the data is already resident).
    /// Provided by the executor; locality-aware policies (DP-Perf, after
    /// Planas et al.'s data-aware scheduling) fold it into their
    /// earliest-finish estimates.
    pub transfer_estimate: &'a dyn Fn(DeviceId) -> SimTime,
}

/// A scheduling policy: binds ready tasks to devices and observes
/// completions.
pub trait Scheduler {
    /// Choose the device for a ready task. Called exactly once per task.
    fn bind(&mut self, ctx: &BindCtx<'_>) -> DeviceId;

    /// Observe an instance completing. `busy` is the wall (virtual) time
    /// the instance occupied its slot — transfers, launch and execution —
    /// while `exec` is the pure kernel-execution component (what a
    /// per-device performance profile measures).
    #[allow(clippy::too_many_arguments)]
    fn on_complete(
        &mut self,
        task: TaskId,
        kernel: KernelId,
        dev: DeviceId,
        items: u64,
        busy: SimTime,
        exec: SimTime,
        now: SimTime,
    ) {
        let _ = (task, kernel, dev, items, busy, exec, now);
    }

    /// `true` for dynamic policies: the executor charges the platform's
    /// per-decision scheduling overhead for each bound instance.
    fn is_dynamic(&self) -> bool {
        true
    }

    /// Display name (reports/figures).
    fn name(&self) -> &'static str;
}

/// Executes every instance on the device it was pinned to at plan time.
/// Panics on unpinned tasks — static plans must pin everything.
#[derive(Default)]
pub struct PinnedScheduler;

impl Scheduler for PinnedScheduler {
    fn bind(&mut self, ctx: &BindCtx<'_>) -> DeviceId {
        ctx.task
            .pinned
            .expect("PinnedScheduler requires every task to be pinned")
    }

    fn is_dynamic(&self) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "pinned"
    }
}

/// **DP-Dep**: breadth-first round-robin over compute slots with
/// dependency-chain affinity; capability-blind.
pub struct DepScheduler {
    ring: Vec<DeviceId>,
    next: usize,
}

impl DepScheduler {
    /// Build the slot ring for a platform: each device appears once per
    /// compute slot, in device order (CPU slots first, then the GPU —
    /// matching the OmpSs breadth-first scheduler's worker enumeration).
    pub fn new(platform: &Platform) -> Self {
        let mut ring = Vec::with_capacity(platform.total_slots());
        for dev in &platform.devices {
            for _ in 0..dev.spec.kind.slots() {
                ring.push(dev.id);
            }
        }
        DepScheduler { ring, next: 0 }
    }
}

impl Scheduler for DepScheduler {
    fn bind(&mut self, ctx: &BindCtx<'_>) -> DeviceId {
        if let Some(d) = ctx.task.pinned {
            return d;
        }
        // Chain affinity: follow the first predecessor's placement.
        if let Some(&d) = ctx.pred_placements.first() {
            return d;
        }
        let d = self.ring[self.next % self.ring.len()];
        self.next += 1;
        d
    }

    fn name(&self) -> &'static str {
        "DP-Dep"
    }
}

/// A *work-conserving* breadth-first policy (not one of the paper's
/// strategies; an ablation of the DP-Dep modelling choice).
///
/// The paper's DP-Dep observations — "only one task instance is assigned
/// to the GPU" on MatrixMul — indicate OmpSs's breadth-first scheduler
/// bound instances to workers eagerly ([`DepScheduler`] models that with a
/// slot ring). A work-conserving runtime would instead hand work to
/// whichever worker goes idle. This policy approximates that behaviour in
/// the bind-at-ready model: it tracks outstanding *instance counts* per
/// device and binds to the least-loaded slot (still capability-blind — it
/// counts tasks, not time — and still chain-affine). The
/// `ablation_dp_dep_variants` bench contrasts the two against DP-Perf.
pub struct WorkConservingScheduler {
    outstanding: Vec<u64>,
    of_task: BTreeMap<TaskId, DeviceId>,
    slots: Vec<u64>,
}

impl WorkConservingScheduler {
    /// Fresh policy for a platform.
    pub fn new(platform: &Platform) -> Self {
        WorkConservingScheduler {
            outstanding: vec![0; platform.devices.len()],
            of_task: BTreeMap::new(),
            slots: platform
                .devices
                .iter()
                .map(|d| d.spec.kind.slots() as u64)
                .collect(),
        }
    }
}

impl Scheduler for WorkConservingScheduler {
    fn bind(&mut self, ctx: &BindCtx<'_>) -> DeviceId {
        let dev = if let Some(d) = ctx.task.pinned {
            d
        } else if let Some(&d) = ctx.pred_placements.first() {
            d
        } else {
            ctx.platform
                .devices
                .iter()
                .map(|d| d.id)
                .min_by(|&a, &b| {
                    let la = self.outstanding[a.0] as f64 / self.slots[a.0] as f64;
                    let lb = self.outstanding[b.0] as f64 / self.slots[b.0] as f64;
                    la.partial_cmp(&lb).unwrap().then(a.cmp(&b))
                })
                .expect("platform has devices")
        };
        self.outstanding[dev.0] += 1;
        self.of_task.insert(ctx.task_id, dev);
        dev
    }

    fn on_complete(
        &mut self,
        task: TaskId,
        _kernel: KernelId,
        dev: DeviceId,
        _items: u64,
        _busy: SimTime,
        _exec: SimTime,
        _now: SimTime,
    ) {
        if let Some(d) = self.of_task.remove(&task) {
            debug_assert_eq!(d, dev);
            self.outstanding[dev.0] = self.outstanding[dev.0].saturating_sub(1);
        }
    }

    fn name(&self) -> &'static str {
        "BF-WC"
    }
}

/// Cumulative observed throughput of one (kernel, device) pair.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateObservation {
    /// Instances observed.
    pub count: u32,
    /// Total items processed.
    pub items: f64,
    /// Total busy time, seconds.
    pub secs: f64,
}

impl RateObservation {
    /// Observed items/second, if any observation exists.
    pub fn rate(&self) -> Option<f64> {
        if self.count == 0 || self.secs <= 0.0 {
            None
        } else {
            Some(self.items / self.secs)
        }
    }
}

/// **DP-Perf**: performance-aware earliest-finisher policy with a per-kernel
/// per-device profiling warm-up.
pub struct PerfScheduler {
    /// (kernel, device) → observations.
    rates: BTreeMap<(KernelId, DeviceId), RateObservation>,
    /// (kernel, device) → instances *assigned* (bound) so far. Warm-up
    /// routing must count assignments, not completions: when a whole batch
    /// of instances becomes ready at once, none has completed yet.
    assigned: BTreeMap<(KernelId, DeviceId), u32>,
    /// Per device: estimated occupancy (seconds of work) bound to the
    /// device and not yet observed complete. The busy estimate used for
    /// earliest-finish is `outstanding / slots`; completions subtract the
    /// task's own charge back out, so estimation drift self-corrects
    /// instead of accumulating phantom backlog across taskwait epochs.
    outstanding: Vec<SimTime>,
    /// Per-task occupancy charge recorded at bind (reversed at completion).
    est_of: BTreeMap<TaskId, (DeviceId, SimTime)>,
    /// Device slot counts (cached from the platform).
    slots: Vec<u64>,
    /// Instances each (kernel, device) pair must observe before estimates
    /// are trusted; 0 disables warm-up (pre-seeded runs).
    warmup: u32,
}

impl PerfScheduler {
    /// The paper's fixed profiling phase: "each device gets 3 task
    /// instances to make the runtime learn each device's performance".
    pub const WARMUP_INSTANCES: u32 = 3;

    /// Fresh scheduler with the standard warm-up.
    pub fn new(platform: &Platform) -> Self {
        Self::with_warmup(platform, Self::WARMUP_INSTANCES)
    }

    /// Fresh scheduler with a custom warm-up length.
    pub fn with_warmup(platform: &Platform, warmup: u32) -> Self {
        PerfScheduler {
            rates: BTreeMap::new(),
            assigned: BTreeMap::new(),
            outstanding: vec![SimTime::ZERO; platform.devices.len()],
            est_of: BTreeMap::new(),
            slots: platform
                .devices
                .iter()
                .map(|d| d.spec.kind.slots() as u64)
                .collect(),
            warmup,
        }
    }

    /// A scheduler pre-seeded with rates learned in a previous (warm-up)
    /// run; no further profiling phase is performed. This realises the
    /// paper's methodology of excluding the profiling phase from the
    /// measured comparison.
    pub fn seeded(
        platform: &Platform,
        rates: BTreeMap<(KernelId, DeviceId), RateObservation>,
    ) -> Self {
        let mut s = Self::with_warmup(platform, 0);
        s.rates = rates;
        s
    }

    /// The learned rate table (to seed a measured run).
    pub fn rates(&self) -> &BTreeMap<(KernelId, DeviceId), RateObservation> {
        &self.rates
    }

    fn estimate_exec(&self, kernel: KernelId, dev: DeviceId, items: u64) -> Option<SimTime> {
        let rate = self.rates.get(&(kernel, dev))?.rate()?;
        Some(SimTime::from_secs_f64(items as f64 / rate))
    }

    fn assigned(&self, kernel: KernelId, dev: DeviceId) -> u32 {
        self.assigned.get(&(kernel, dev)).copied().unwrap_or(0)
    }

    /// Estimated wait before a new task could start on `dev`: outstanding
    /// occupancy spread over the device's slots.
    fn backlog(&self, dev: DeviceId) -> SimTime {
        self.outstanding[dev.0] / self.slots[dev.0]
    }

    fn charge(&mut self, task: TaskId, dev: DeviceId, est: SimTime) {
        self.outstanding[dev.0] += est;
        self.est_of.insert(task, (dev, est));
    }
}

impl Scheduler for PerfScheduler {
    fn bind(&mut self, ctx: &BindCtx<'_>) -> DeviceId {
        let kernel = ctx.task.kernel;
        if let Some(d) = ctx.task.pinned {
            return d;
        }
        // Profiling phase: give under-assigned devices their warm-up
        // instances (fewest assignments first; ties → lowest device id).
        if self.warmup > 0 {
            if let Some(dev) = ctx
                .platform
                .devices
                .iter()
                .map(|d| d.id)
                .filter(|&d| self.assigned(kernel, d) < self.warmup)
                .min_by_key(|&d| (self.assigned(kernel, d), d))
            {
                *self.assigned.entry((kernel, dev)).or_insert(0) += 1;
                // No estimate exists during warm-up; charge nothing.
                self.charge(ctx.task_id, dev, SimTime::ZERO);
                return dev;
            }
        }
        // Earliest-estimated-finisher across all devices with a known rate,
        // folding in the data-movement cost of a non-local placement.
        let mut best: Option<(SimTime, DeviceId)> = None;
        let mut chain_finish: Option<(SimTime, DeviceId)> = None;
        let chain_dev = ctx.pred_placements.first().copied();
        for d in &ctx.platform.devices {
            let Some(exec) = self.estimate_exec(kernel, d.id, ctx.task.items) else {
                continue;
            };
            let finish = ctx.now + self.backlog(d.id) + (ctx.transfer_estimate)(d.id) + exec;
            if best.is_none_or(|(bf, bd)| finish < bf || (finish == bf && d.id < bd)) {
                best = Some((finish, d.id));
            }
            if chain_dev == Some(d.id) {
                chain_finish = Some((finish, d.id));
            }
        }
        // Dependency-chain affinity (the paper: DP-Perf "also tracks data
        // dependency as DP-Dep"): stay on the predecessor's device unless
        // another device is estimated substantially (>25%) faster — this
        // keeps chains resident instead of ping-ponging partitions.
        if let (Some((bf, _)), Some((cf, cd))) = (best, chain_finish) {
            let margin = bf + bf.saturating_sub(ctx.now) / 4;
            if cf <= margin {
                best = Some((cf, cd));
            }
        }
        // If no device has a rate yet (e.g. completions still in flight
        // after the warm-up assignments), spread load by per-slot assigned
        // count — the least informed but least harmful choice.
        let dev = best.map(|(_, d)| d).unwrap_or_else(|| {
            ctx.platform
                .devices
                .iter()
                .map(|d| d.id)
                .min_by(|&a, &b| {
                    let la = self.assigned(kernel, a) as f64
                        / ctx.platform.device(a).spec.kind.slots() as f64;
                    let lb = self.assigned(kernel, b) as f64
                        / ctx.platform.device(b).spec.kind.slots() as f64;
                    la.partial_cmp(&lb).unwrap().then(a.cmp(&b))
                })
                .expect("platform has devices")
        });
        *self.assigned.entry((kernel, dev)).or_insert(0) += 1;
        let exec = self
            .estimate_exec(kernel, dev, ctx.task.items)
            .unwrap_or(SimTime::ZERO);
        self.charge(ctx.task_id, dev, (ctx.transfer_estimate)(dev) + exec);
        dev
    }

    fn on_complete(
        &mut self,
        task: TaskId,
        kernel: KernelId,
        dev: DeviceId,
        items: u64,
        _busy: SimTime,
        exec: SimTime,
        _now: SimTime,
    ) {
        let obs = self.rates.entry((kernel, dev)).or_default();
        obs.count += 1;
        obs.items += items as f64;
        obs.secs += exec.as_secs_f64();
        // Reverse this task's occupancy charge.
        if let Some((charged_dev, est)) = self.est_of.remove(&task) {
            debug_assert_eq!(charged_dev, dev);
            self.outstanding[dev.0] = self.outstanding[dev.0].saturating_sub(est);
        }
    }

    fn name(&self) -> &'static str {
        "DP-Perf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Access;
    use crate::program::TaskDesc;
    use hetero_platform::Platform;

    fn task(kernel: usize, items: u64, pinned: Option<DeviceId>) -> TaskDesc {
        TaskDesc {
            kernel: KernelId(kernel),
            items,
            accesses: Vec::<Access>::new(),
            pinned,
            cost_scale: 1.0,
        }
    }

    const NO_TRANSFER: &dyn Fn(DeviceId) -> SimTime = &|_| SimTime::ZERO;

    fn ctx<'a>(platform: &'a Platform, t: &'a TaskDesc, preds: &'a [DeviceId]) -> BindCtx<'a> {
        BindCtx {
            now: SimTime::ZERO,
            platform,
            task: t,
            task_id: TaskId(0),
            pred_placements: preds,
            transfer_estimate: NO_TRANSFER,
        }
    }

    #[test]
    fn pinned_scheduler_honours_pin() {
        let p = Platform::test_small();
        let mut s = PinnedScheduler;
        let t = task(0, 10, Some(DeviceId(1)));
        assert_eq!(s.bind(&ctx(&p, &t, &[])), DeviceId(1));
        assert!(!s.is_dynamic());
    }

    #[test]
    #[should_panic(expected = "requires every task to be pinned")]
    fn pinned_scheduler_rejects_unpinned() {
        let p = Platform::test_small();
        let mut s = PinnedScheduler;
        let t = task(0, 10, None);
        let _ = s.bind(&ctx(&p, &t, &[]));
    }

    #[test]
    fn dep_scheduler_round_robins_over_slots() {
        // test_small: CPU 4 slots + GPU 1 slot => ring length 5, GPU 5th.
        let p = Platform::test_small();
        let mut s = DepScheduler::new(&p);
        let t = task(0, 10, None);
        let mut seq = Vec::new();
        for _ in 0..10 {
            seq.push(s.bind(&ctx(&p, &t, &[])));
        }
        let expect: Vec<DeviceId> = [0, 0, 0, 0, 1, 0, 0, 0, 0, 1]
            .iter()
            .map(|&i| DeviceId(i))
            .collect();
        assert_eq!(seq, expect);
    }

    #[test]
    fn dep_scheduler_follows_chain() {
        let p = Platform::test_small();
        let mut s = DepScheduler::new(&p);
        let t = task(0, 10, None);
        let d = s.bind(&ctx(&p, &t, &[DeviceId(1)]));
        assert_eq!(d, DeviceId(1));
    }

    #[test]
    fn icpp15_ring_gives_gpu_one_of_thirteen() {
        // On the paper's platform (12 CPU threads + 1 GPU), 24 instances
        // round-robin so that the GPU receives exactly one — the paper's
        // observation for MatrixMul under DP-Dep.
        let p = Platform::icpp15();
        let mut s = DepScheduler::new(&p);
        let t = task(0, 10, None);
        let gpu = p.gpu().unwrap().id;
        let n_gpu = (0..24).filter(|_| s.bind(&ctx(&p, &t, &[])) == gpu).count();
        assert_eq!(n_gpu, 1);
    }

    #[test]
    fn perf_scheduler_warms_up_each_device() {
        let p = Platform::test_small();
        let mut s = PerfScheduler::new(&p);
        let t = task(0, 100, None);
        let mut counts = [0usize; 2];
        for i in 0..6 {
            let d = s.bind(&ctx(&p, &t, &[]));
            counts[d.0] += 1;
            // Report a completion so warm-up advances.
            let busy = SimTime::from_millis(if d.0 == 0 { 10 } else { 1 });
            s.on_complete(
                TaskId(i),
                KernelId(0),
                d,
                100,
                busy,
                busy,
                SimTime::from_millis(10),
            );
        }
        assert_eq!(counts, [3, 3]);
    }

    #[test]
    fn perf_scheduler_prefers_faster_device_after_warmup() {
        let p = Platform::test_small();
        let mut s = PerfScheduler::with_warmup(&p, 1);
        let t = task(0, 100, None);
        // Warm-up: one instance each.
        for i in 0..2 {
            let d = s.bind(&ctx(&p, &t, &[]));
            let busy = SimTime::from_millis(if d.0 == 0 { 100 } else { 1 });
            s.on_complete(TaskId(i), KernelId(0), d, 100, busy, busy, SimTime::ZERO);
        }
        // GPU (dev 1) is 100x faster: next several binds all go to it.
        for _ in 0..5 {
            assert_eq!(s.bind(&ctx(&p, &t, &[])), DeviceId(1));
        }
    }

    #[test]
    fn perf_scheduler_spills_to_cpu_when_gpu_queue_grows() {
        let p = Platform::test_small();
        let mut s = PerfScheduler::with_warmup(&p, 1);
        let t = task(0, 100, None);
        for i in 0..2 {
            let d = s.bind(&ctx(&p, &t, &[]));
            // GPU only 3x faster here.
            let busy = SimTime::from_millis(if d.0 == 0 { 30 } else { 10 });
            s.on_complete(TaskId(i), KernelId(0), d, 100, busy, busy, SimTime::ZERO);
        }
        // Earliest-finish: GPU until its queue exceeds an idle CPU slot.
        let seq: Vec<DeviceId> = (0..8).map(|_| s.bind(&ctx(&p, &t, &[]))).collect();
        let gpu_n = seq.iter().filter(|d| d.0 == 1).count();
        let cpu_n = seq.len() - gpu_n;
        assert!(gpu_n >= 2, "gpu got {gpu_n}");
        assert!(cpu_n >= 2, "cpu got {cpu_n}");
    }

    #[test]
    fn seeded_scheduler_skips_warmup() {
        let p = Platform::test_small();
        let mut warm = PerfScheduler::new(&p);
        let t = task(0, 100, None);
        for i in 0..6 {
            let d = warm.bind(&ctx(&p, &t, &[]));
            let busy = SimTime::from_millis(if d.0 == 0 { 50 } else { 1 });
            warm.on_complete(TaskId(i), KernelId(0), d, 100, busy, busy, SimTime::ZERO);
        }
        let mut seeded = PerfScheduler::seeded(&p, warm.rates().clone());
        // Immediately performance-aware: first bind goes to the GPU.
        assert_eq!(seeded.bind(&ctx(&p, &t, &[])), DeviceId(1));
    }

    #[test]
    fn work_conserving_balances_by_slot_load() {
        let p = Platform::test_small(); // 4 CPU slots + 1 GPU slot
        let mut s = WorkConservingScheduler::new(&p);
        let t = task(0, 10, None);
        // First five binds: loads per slot: cpu 0/4 vs gpu 0/1 -> cpu first
        // (tie broken by id), then gpu once cpu load/slot catches up.
        let mut seq = Vec::new();
        for i in 0..10 {
            let mut c = ctx(&p, &t, &[]);
            c.task_id = TaskId(i);
            seq.push(s.bind(&c).0);
        }
        // Device 1 (1 slot) should appear ~1/5 of the time.
        let gpu_n = seq.iter().filter(|&&d| d == 1).count();
        assert!((1..=3).contains(&gpu_n), "{seq:?}");
    }

    #[test]
    fn work_conserving_completions_free_load() {
        let p = Platform::test_small();
        let mut s = WorkConservingScheduler::new(&p);
        let t = task(0, 10, None);
        let mut c0 = ctx(&p, &t, &[]);
        c0.task_id = TaskId(0);
        let d0 = s.bind(&c0);
        s.on_complete(
            TaskId(0),
            KernelId(0),
            d0,
            10,
            SimTime::ZERO,
            SimTime::ZERO,
            SimTime::ZERO,
        );
        // Load back to zero: next bind hits the same first device again.
        let mut c1 = ctx(&p, &t, &[]);
        c1.task_id = TaskId(1);
        assert_eq!(s.bind(&c1), d0);
    }

    #[test]
    fn rate_observation_math() {
        let mut r = RateObservation::default();
        assert_eq!(r.rate(), None);
        r.count = 2;
        r.items = 200.0;
        r.secs = 0.5;
        assert_eq!(r.rate(), Some(400.0));
    }
}
