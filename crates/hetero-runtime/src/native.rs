//! Native execution of programs on the host, for semantic validation.
//!
//! The simulator (see [`crate::executor`]) predicts *performance*; this
//! module executes the *actual computation* of a program's kernels on host
//! data, so tests can verify that every partitioning strategy computes the
//! same result as an unpartitioned sequential reference — i.e. that
//! partitioning plans and the dependence analysis are semantically correct.
//!
//! Kernels are registered as closures over [`HostBuffers`]. Instances run
//! one at a time in a topological order of the dependence graph; the
//! [`ExecOrder`] parameter selects *which* topological order, so tests can
//! demonstrate that any dependence-respecting schedule yields identical
//! results (the property the OmpSs runtime guarantees).
//!
//! Two runners are provided: [`run_native`] executes instances one at a
//! time (trivially race-free), and [`run_native_parallel`] executes each
//! dependence level with real threads via a safe snapshot-and-merge scheme.
//! The application crate additionally parallelises inside kernels with
//! crossbeam scoped threads.

use crate::data::BufferId;
use crate::graph::TaskGraph;
use crate::program::{Program, TaskDesc, TaskId};
use std::cell::{Ref, RefCell, RefMut};

/// Host storage for a program's buffers, as `f32` arrays (`item_bytes` must
/// be a multiple of 4; an item of `item_bytes = 4k` owns `k` consecutive
/// floats).
pub struct HostBuffers {
    bufs: Vec<RefCell<Vec<f32>>>,
    floats_per_item: Vec<usize>,
}

impl HostBuffers {
    /// Allocate zero-initialised storage for every buffer of `program`.
    pub fn for_program(program: &Program) -> Self {
        let mut bufs = Vec::with_capacity(program.buffers.len());
        let mut fpi = Vec::with_capacity(program.buffers.len());
        for b in &program.buffers {
            assert!(
                b.item_bytes % 4 == 0 && b.item_bytes > 0,
                "buffer '{}' item_bytes {} not a positive multiple of 4",
                b.name,
                b.item_bytes
            );
            let k = (b.item_bytes / 4) as usize;
            fpi.push(k);
            bufs.push(RefCell::new(vec![0.0f32; b.items as usize * k]));
        }
        HostBuffers {
            bufs,
            floats_per_item: fpi,
        }
    }

    /// Immutably borrow a buffer's floats.
    pub fn get(&self, b: BufferId) -> Ref<'_, Vec<f32>> {
        self.bufs[b.0].borrow()
    }

    /// Mutably borrow a buffer's floats.
    pub fn get_mut(&self, b: BufferId) -> RefMut<'_, Vec<f32>> {
        self.bufs[b.0].borrow_mut()
    }

    /// Floats per item of a buffer.
    pub fn floats_per_item(&self, b: BufferId) -> usize {
        self.floats_per_item[b.0]
    }

    /// Clone a buffer's contents out (for test assertions).
    pub fn snapshot(&self, b: BufferId) -> Vec<f32> {
        self.get(b).clone()
    }

    /// Overwrite a buffer's contents (initial data).
    pub fn fill(&self, b: BufferId, data: &[f32]) {
        let mut v = self.get_mut(b);
        assert_eq!(v.len(), data.len(), "fill size mismatch");
        v.copy_from_slice(data);
    }
}

/// A host implementation of one kernel: executes one task instance's
/// partition against the host buffers, using the instance's declared
/// accesses to find its regions.
pub type KernelFn<'a> = Box<dyn Fn(&HostBuffers, &TaskDesc) + Sync + 'a>;

/// Which dependence-respecting order to run instances in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecOrder {
    /// Submission order (always topological: dependences point backwards).
    Submission,
    /// A deliberately different topological order: within each taskwait
    /// epoch, ready instances run in LIFO order. Used to validate that the
    /// dependence analysis admits schedule freedom without changing
    /// results.
    ReadyLifo,
}

/// Execute the program's computation on host data.
///
/// `kernels[k]` is the host implementation of `KernelId(k)`. Panics if a
/// kernel lacks an implementation.
pub fn run_native(
    program: &Program,
    kernels: &[KernelFn<'_>],
    buffers: &HostBuffers,
    order: ExecOrder,
) {
    assert_eq!(
        kernels.len(),
        program.kernels.len(),
        "one host implementation required per kernel"
    );
    let tasks: Vec<&TaskDesc> = program.tasks().into_iter().map(|(_, t)| t).collect();
    let run_one = |t: TaskId| {
        let task = tasks[t.0];
        kernels[task.kernel.0](buffers, task);
    };
    match order {
        ExecOrder::Submission => {
            for t in 0..tasks.len() {
                run_one(TaskId(t));
            }
        }
        ExecOrder::ReadyLifo => {
            let graph = TaskGraph::build(program);
            let mut remaining: Vec<usize> = graph.preds.iter().map(Vec::len).collect();
            for epoch in program.epochs() {
                let mut stack: Vec<TaskId> = epoch
                    .iter()
                    .copied()
                    .filter(|t| remaining[t.0] == 0)
                    .collect();
                let mut done_in_epoch = 0usize;
                while let Some(t) = stack.pop() {
                    run_one(t);
                    done_in_epoch += 1;
                    for &s in &graph.succs[t.0] {
                        remaining[s.0] -= 1;
                        if remaining[s.0] == 0 && graph.epoch_of[s.0] == graph.epoch_of[t.0] {
                            stack.push(s);
                        }
                    }
                }
                assert_eq!(
                    done_in_epoch,
                    epoch.len(),
                    "dependence cycle or cross-epoch forward dependence"
                );
            }
        }
    }
}

/// Execute the program's computation with **real multi-threading**: a
/// level-synchronous parallel runner.
///
/// Tasks are grouped into dependence levels (within their taskwait
/// epochs); tasks in the same level share no dependence, which by the
/// region analysis means no task's writes overlap anything another task of
/// the level touches. The runner exploits that soundly and without any
/// `unsafe`: each worker thread receives a snapshot of the buffers, runs
/// its share of the level with the ordinary [`KernelFn`]s, and the master
/// then merges exactly the regions each task *declared it would write*
/// back into the canonical buffers. Reading snapshot state equals reading
/// live state for every region a level-mate may legally read, so results
/// are bit-identical to the sequential orders.
///
/// This is a validation harness (clone-per-thread is memory-proportional
/// to `threads`), not a performance runtime — virtual-time execution is
/// the performance path.
pub fn run_native_parallel(
    program: &Program,
    kernels: &[KernelFn<'_>],
    buffers: &HostBuffers,
    threads: usize,
) {
    assert_eq!(
        kernels.len(),
        program.kernels.len(),
        "one host implementation required per kernel"
    );
    assert!(threads >= 1);
    let tasks: Vec<&TaskDesc> = program.tasks().into_iter().map(|(_, t)| t).collect();
    let graph = TaskGraph::build(program);

    // Dependence levels within epochs: level(t) = 1 + max(level(preds)),
    // offset so that epochs never interleave.
    let mut level = vec![0usize; tasks.len()];
    let mut epoch_base = vec![0usize; program.epochs().len().max(1)];
    for (i, e) in program.epochs().iter().enumerate() {
        let base = if i == 0 { 0 } else { epoch_base[i - 1] };
        let mut max_in_epoch = base;
        for &t in e {
            let mut l = base;
            for p in &graph.preds[t.0] {
                l = l.max(level[p.0] + 1);
            }
            level[t.0] = l;
            max_in_epoch = max_in_epoch.max(l + 1);
        }
        epoch_base[i] = max_in_epoch;
    }
    let max_level = level.iter().max().map_or(0, |&l| l + 1);

    for l in 0..max_level {
        let level_tasks: Vec<usize> = (0..tasks.len()).filter(|&t| level[t] == l).collect();
        if level_tasks.is_empty() {
            continue;
        }
        let workers = threads.min(level_tasks.len());
        if workers == 1 {
            for &t in &level_tasks {
                kernels[tasks[t].kernel.0](buffers, tasks[t]);
            }
            continue;
        }
        // Snapshot once; workers clone it, run their share, return buffers.
        let chunk = level_tasks.len().div_ceil(workers);
        let results: Vec<(Vec<usize>, Vec<Vec<f32>>)> = crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let my_tasks: Vec<usize> =
                    level_tasks[w * chunk..((w + 1) * chunk).min(level_tasks.len())].to_vec();
                let snapshot: Vec<Vec<f32>> = (0..program.buffers.len())
                    .map(|b| buffers.snapshot(crate::data::BufferId(b)))
                    .collect();
                let tasks = &tasks;
                let kernels = &kernels;
                let program_ref = &*program;
                handles.push(scope.spawn(move |_| {
                    let local = HostBuffers::for_program(program_ref);
                    for (b, data) in snapshot.iter().enumerate() {
                        local.fill(crate::data::BufferId(b), data);
                    }
                    for &t in &my_tasks {
                        kernels[tasks[t].kernel.0](&local, tasks[t]);
                    }
                    let out: Vec<Vec<f32>> = (0..program_ref.buffers.len())
                        .map(|b| local.snapshot(crate::data::BufferId(b)))
                        .collect();
                    (my_tasks, out)
                }));
            }
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("worker panicked");

        // Merge: copy back exactly the declared write regions.
        for (my_tasks, worker_bufs) in results {
            for t in my_tasks {
                for acc in &tasks[t].accesses {
                    if !acc.mode.writes() {
                        continue;
                    }
                    let b = acc.region.buffer;
                    let fpi = buffers.floats_per_item(b);
                    let lo = acc.region.span.start as usize * fpi;
                    let hi = acc.region.span.end as usize * fpi;
                    let mut master = buffers.get_mut(b);
                    master[lo..hi].copy_from_slice(&worker_bufs[b.0][lo..hi]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Access, Region};
    use crate::program::split_even;
    use hetero_platform::KernelProfile;

    /// saxpy-like two-kernel program: y = 2*x (kernel 0), then z = y + x
    /// (kernel 1), partitioned into 4 instances each.
    fn build_program(n: u64) -> (Program, BufferId, BufferId, BufferId) {
        let mut b = Program::builder();
        let x = b.buffer("x", n, 4);
        let y = b.buffer("y", n, 4);
        let z = b.buffer("z", n, 4);
        let k0 = b.kernel("scale", KernelProfile::compute_only(1.0));
        let k1 = b.kernel("add", KernelProfile::compute_only(1.0));
        for (s, e) in split_even(n, 4) {
            b.submit_dynamic(
                k0,
                e - s,
                vec![
                    Access::read(Region::new(x, s, e)),
                    Access::write(Region::new(y, s, e)),
                ],
            );
        }
        for (s, e) in split_even(n, 4) {
            b.submit_dynamic(
                k1,
                e - s,
                vec![
                    Access::read(Region::new(x, s, e)),
                    Access::read(Region::new(y, s, e)),
                    Access::write(Region::new(z, s, e)),
                ],
            );
        }
        (b.build(), x, y, z)
    }

    fn kernels<'a>(x: BufferId, y: BufferId, z: BufferId) -> Vec<KernelFn<'a>> {
        let scale: KernelFn = Box::new(move |hb, task| {
            let span = task.accesses[1].region.span;
            let xs = hb.get(x);
            let mut ys = hb.get_mut(y);
            for i in span.start..span.end {
                ys[i as usize] = 2.0 * xs[i as usize];
            }
        });
        let add: KernelFn = Box::new(move |hb, task| {
            let span = task.accesses[2].region.span;
            let xs = hb.get(x);
            let ys = hb.get(y);
            let mut zs = hb.get_mut(z);
            for i in span.start..span.end {
                zs[i as usize] = ys[i as usize] + xs[i as usize];
            }
        });
        vec![scale, add]
    }

    #[test]
    fn native_matches_reference_in_both_orders() {
        let n = 1000u64;
        let (program, x, y, z) = build_program(n);
        let input: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
        let expected: Vec<f32> = input.iter().map(|&v| 3.0 * v).collect();

        for order in [ExecOrder::Submission, ExecOrder::ReadyLifo] {
            let hb = HostBuffers::for_program(&program);
            hb.fill(x, &input);
            run_native(&program, &kernels(x, y, z), &hb, order);
            assert_eq!(hb.snapshot(z), expected, "order {order:?}");
        }
    }

    #[test]
    fn parallel_runner_matches_sequential() {
        let n = 1200u64;
        let (program, x, y, z) = build_program(n);
        let input: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();

        let sequential = {
            let hb = HostBuffers::for_program(&program);
            hb.fill(x, &input);
            run_native(&program, &kernels(x, y, z), &hb, ExecOrder::Submission);
            (hb.snapshot(y), hb.snapshot(z))
        };
        for threads in [1usize, 2, 4, 8] {
            let hb = HostBuffers::for_program(&program);
            hb.fill(x, &input);
            run_native_parallel(&program, &kernels(x, y, z), &hb, threads);
            assert_eq!(hb.snapshot(y), sequential.0, "threads={threads}");
            assert_eq!(hb.snapshot(z), sequential.1, "threads={threads}");
        }
    }

    #[test]
    fn parallel_runner_respects_epochs() {
        // An iterated in-out chain (strict serial dependences) must still
        // produce the serial result under the parallel runner.
        let n = 64u64;
        let mut b = Program::builder();
        let buf = b.buffer("acc", n, 4);
        let k = b.kernel("double", KernelProfile::compute_only(1.0));
        for _ in 0..5 {
            for (s, e) in split_even(n, 4) {
                b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(buf, s, e))]);
            }
            b.taskwait();
        }
        let p = b.build();
        let double: KernelFn = Box::new(move |hb, task| {
            let span = task.accesses[0].region.span;
            let mut v = hb.get_mut(hetero_platform_buf());
            for i in span.start as usize..span.end as usize {
                v[i] *= 2.0;
            }
        });
        fn hetero_platform_buf() -> BufferId {
            BufferId(0)
        }
        let hb = HostBuffers::for_program(&p);
        hb.fill(BufferId(0), &vec![1.0; n as usize]);
        run_native_parallel(&p, &[double], &hb, 4);
        for &v in hb.get(BufferId(0)).iter() {
            assert_eq!(v, 32.0);
        }
    }

    #[test]
    fn multi_float_items() {
        let mut b = Program::builder();
        let buf = b.buffer("pairs", 10, 8); // 2 floats per item
        let k = b.kernel("sum2", KernelProfile::compute_only(1.0));
        b.submit_dynamic(k, 10, vec![Access::read_write(Region::new(buf, 0, 10))]);
        let p = b.build();
        let hb = HostBuffers::for_program(&p);
        assert_eq!(hb.floats_per_item(buf), 2);
        assert_eq!(hb.get(buf).len(), 20);
    }

    #[test]
    #[should_panic(expected = "not a positive multiple of 4")]
    fn rejects_odd_item_bytes() {
        let mut b = Program::builder();
        b.buffer("bad", 10, 3);
        let p = b.build();
        let _ = HostBuffers::for_program(&p);
    }
}
