//! Adaptive repartitioning: online imbalance detection, epoch re-solving,
//! and static→dynamic strategy fallback under model misprediction.
//!
//! PRs 1–2 made the runtime survive fail-stop and gray *hardware*
//! failures, but the paper's static strategies (SP-Single/Unified/Varied)
//! still trust the Glinda profile blindly: a mispredicted partition — a
//! skewed profiling run ([`ProfilePerturb`]), mid-run performance drift
//! (`ThrottleRamp`) — silently inflates makespan with no mitigation. This
//! module closes the control loop, configured through [`AdaptConfig`]:
//!
//! 1. **Detect** — at every taskwait barrier the executor computes the
//!    per-device *busy-time skew* of the just-finished epoch
//!    (`(max − min) / max` over slot-normalised busy time of the devices
//!    that participated). A skew above [`AdaptConfig::skew_threshold`] for
//!    [`AdaptConfig::hysteresis`] consecutive barriers triggers the
//!    controller (hysteresis suppresses one-epoch noise).
//! 2. **Re-solve** — the *observed* per-device throughputs (items per busy
//!    second, folding transfer and queueing effects into an effective
//!    rate) are fed back into Glinda through
//!    [`glinda::resolve_with_observations`], which warm-starts from the
//!    prior split; the corrected split then re-pins the remaining epochs'
//!    statically placed tasks (whole task chunks move — region splits are
//!    baked into the plan, so the granularity is one chunk), with the
//!    chunk assignment chosen to minimise a slot-quantised predicted
//!    epoch wall at the observed rates (equal chunks run in waves over a
//!    device's slots, which a continuous item target cannot see). A
//!    no-regression guard keeps the old placement when the model predicts
//!    no improvement.
//! 3. **Escalate** — if [`AdaptConfig::max_resolves`] consecutive
//!    corrections still miss [`AdaptConfig::balance_target`], the static
//!    plan is abandoned for its dynamic sibling: remaining statically
//!    pinned tasks are handed to an internal DP-Perf scheduler seeded with
//!    the run's own observations (the Table I escalation SP-* → DP-Perf).
//!
//! Every adaptation decision draws from a dedicated seeded SplitMix64
//! stream, so enabling adaptation never perturbs fault or health sampling
//! and identical seeds replay byte-identically. With adaptation disabled
//! (the [`Default`]) the executor's event sequence is byte-identical to
//! the resilient path. What happened is reported through [`AdaptReport`]
//! (`RunReport::adapt`).
//!
//! [`ProfilePerturb`]: hetero_platform::FaultEvent::ProfilePerturb

use glinda::{MultiDeviceProblem, MultiSolution, PartitionProblem, PartitionSolution};
use hetero_platform::DeviceId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration for the adaptive repartitioning controller. The disabled
/// configuration ([`AdaptConfig::disabled`]) makes `simulate_adaptive`
/// take the exact event sequence of the resilient executor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Per-epoch busy-time skew `(max − min) / max` above which an epoch
    /// counts as imbalanced (in `(0, 1)`).
    pub skew_threshold: f64,
    /// Skew at or below which the controller considers the run balanced
    /// again; must be ≤ `skew_threshold` (the gap is the hysteresis band).
    pub balance_target: f64,
    /// Consecutive imbalanced barriers required before the controller
    /// acts (≥ 1; higher values suppress one-epoch noise).
    pub hysteresis: u32,
    /// Consecutive re-solves allowed to miss `balance_target` before the
    /// static plan escalates to its dynamic sibling (≥ 1).
    pub max_resolves: u32,
    /// Re-solve and re-pin remaining epochs on imbalance (`false`
    /// observes skew for the report without correcting).
    pub repartition: bool,
    /// Escalate SP-* → DP-Perf when re-solves are exhausted.
    pub escalation: bool,
    /// Consecutive *calm* barriers (skew at or below `balance_target`,
    /// no open fault window) an escalated run must observe before the
    /// static plan is reinstated (DP-Perf → SP-* de-escalation). `0`
    /// disables de-escalation: once escalated, the run stays dynamic.
    pub reinstate_after: u32,
}

impl AdaptConfig {
    /// Everything off: byte-identical to the resilient executor.
    pub fn disabled() -> Self {
        AdaptConfig {
            skew_threshold: 0.25,
            balance_target: 0.10,
            hysteresis: 1,
            max_resolves: 2,
            repartition: false,
            escalation: false,
            reinstate_after: 0,
        }
    }

    /// Full adaptation with default thresholds: repartition at 25% skew
    /// after one imbalanced barrier, escalate to DP-Perf after two
    /// consecutive re-solves that miss the 10% balance target, and
    /// reinstate the static plan after two consecutive calm barriers.
    pub fn enabled_default() -> Self {
        AdaptConfig {
            repartition: true,
            escalation: true,
            reinstate_after: 2,
            ..AdaptConfig::disabled()
        }
    }

    /// `true` when any mitigation (repartitioning, escalation) is on.
    pub fn enabled(&self) -> bool {
        self.repartition || self.escalation
    }

    /// Check internal consistency: thresholds in `(0, 1)`, target ≤
    /// threshold, counters ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.skew_threshold > 0.0 && self.skew_threshold < 1.0) {
            return Err(format!(
                "skew_threshold {} outside (0, 1)",
                self.skew_threshold
            ));
        }
        if !(self.balance_target > 0.0 && self.balance_target < 1.0) {
            return Err(format!(
                "balance_target {} outside (0, 1)",
                self.balance_target
            ));
        }
        if self.balance_target > self.skew_threshold {
            return Err(format!(
                "balance_target {} exceeds skew_threshold {} (inverted hysteresis band)",
                self.balance_target, self.skew_threshold
            ));
        }
        if self.hysteresis == 0 {
            return Err("hysteresis must be >= 1".into());
        }
        if self.max_resolves == 0 {
            return Err("max_resolves must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig::disabled()
    }
}

/// The static partitioning decision behind the running plan, carried into
/// the executor so the controller can re-solve it against observed rates.
/// Produced by the planner (`matchmaker::Planner::adapt_plan`) for static
/// hybrid strategies; dynamic strategies have nothing to re-solve and run
/// without one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptPlan {
    /// The partitioning problem the planner solved (planner-visible rates,
    /// possibly mispredicted).
    pub problem: PartitionProblem,
    /// The split the plan was emitted from.
    pub solution: PartitionSolution,
    /// The accelerator the split's GPU share is pinned to (the primary
    /// accelerator on multi-accelerator platforms).
    pub gpu: DeviceId,
    /// The N-way extension on multi-accelerator platforms: the
    /// `solve_multi` problem/split behind the plan, so the controller and
    /// the plan-repair subsystem can re-solve the full device set against
    /// observed rates. `None` on single-accelerator platforms.
    pub multi: Option<MultiAdaptPlan>,
    /// The per-kernel decisions behind an SP-Varied plan: one
    /// problem/split per kernel, in submission order. SP-Varied separates
    /// kernels with taskwaits, so every epoch runs exactly one kernel —
    /// carried here so barrier re-solves can use *that kernel's* problem
    /// against *that kernel's* observed rates instead of the SP-Single
    /// approximation (whole-application aggregate rates). `None` for
    /// single-kernel plans and non-Varied strategies.
    pub per_kernel: Option<Vec<KernelAdaptPlan>>,
}

/// One kernel's partitioning decision inside an SP-Varied plan, carried
/// in [`AdaptPlan::per_kernel`] so barrier repartitioning can re-solve
/// each kernel's own problem against its own observed rates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelAdaptPlan {
    /// Index of the kernel in the program's kernel table.
    pub kernel: usize,
    /// The partitioning problem the planner solved for this kernel.
    pub problem: PartitionProblem,
    /// The split this kernel's chunks were emitted from.
    pub solution: PartitionSolution,
}

/// The N-way (`glinda::multi::solve_multi`) decision behind a
/// multi-accelerator static plan. Carried inside [`AdaptPlan`] so that
/// barrier repartitioning and degraded-mode plan repair can re-solve the
/// whole surviving device set with observed rates instead of the two-way
/// CPU/GPU projection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiAdaptPlan {
    /// The N-way problem the planner solved (planner-visible rates).
    pub problem: MultiDeviceProblem,
    /// The split the plan was emitted from.
    pub solution: MultiSolution,
    /// The accelerators, in `problem.accelerators` order.
    pub accels: Vec<DeviceId>,
}

/// Configuration of the degraded-mode plan-repair subsystem: survivor
/// re-planning when a device permanently dies (dropout past the retry
/// budget) or is quarantined by the circuit breaker, plus the symmetric
/// healing re-plan when a quarantined device recloses. The disabled
/// configuration keeps every executor path byte-identical to the
/// repair-less runtime.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplanConfig {
    /// Master switch: `false` disables every repair hook.
    pub enabled: bool,
    /// Upper bound on applied survivor re-plans (death + quarantine) per
    /// run; the attempt past the budget records
    /// [`ReplanError::BudgetExhausted`].
    pub max_replans: u32,
    /// Re-plan symmetrically when a quarantined device recloses
    /// (HalfOpen→Closed), readmitting it into the split.
    pub heal_on_reclose: bool,
}

impl ReplanConfig {
    /// Everything off: byte-identical to the repair-less executor.
    pub fn disabled() -> Self {
        ReplanConfig {
            enabled: false,
            max_replans: 0,
            heal_on_reclose: false,
        }
    }

    /// Repair on with defaults: up to 4 survivor re-plans per run and
    /// healing readmission on breaker reclose.
    pub fn enabled_default() -> Self {
        ReplanConfig {
            enabled: true,
            max_replans: 4,
            heal_on_reclose: true,
        }
    }

    /// `true` when the repair subsystem is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Check internal consistency: an enabled config needs a budget.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && self.max_replans == 0 {
            return Err("enabled replan config needs max_replans >= 1".into());
        }
        Ok(())
    }
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig::disabled()
    }
}

/// Why a survivor re-plan could not be produced. Recorded in
/// [`AdaptReport::replan_error`] by the executor (which then degrades to
/// chunk-by-chunk host failover) and propagated as a hard error by
/// `Analyzer::simulate_repairing_observed` and `matchmake compare
/// --replan`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplanError {
    /// Every device — host included — is dead or quarantined; there is no
    /// survivor set to re-solve over.
    NoSurvivingAccelerator,
    /// The survivor re-solve could not produce a split (degenerate rates
    /// or an infeasible problem).
    SolverInfeasible {
        /// What made the solve infeasible.
        detail: String,
    },
    /// [`ReplanConfig::max_replans`] applied repairs were already spent.
    BudgetExhausted {
        /// The configured budget that was exhausted.
        max_replans: u32,
    },
}

impl fmt::Display for ReplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplanError::NoSurvivingAccelerator => {
                write!(f, "no surviving device to re-plan onto")
            }
            ReplanError::SolverInfeasible { detail } => {
                write!(f, "survivor re-solve infeasible: {detail}")
            }
            ReplanError::BudgetExhausted { max_replans } => {
                write!(f, "replan budget exhausted ({max_replans} allowed)")
            }
        }
    }
}

impl std::error::Error for ReplanError {}

/// What the adaptive controller observed and did during one run (all
/// zeros for a balanced run or with adaptation disabled). Reported
/// through `RunReport::adapt`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Taskwait barriers at which the controller observed epoch skew.
    pub barriers_observed: u64,
    /// Barriers whose skew exceeded the threshold (pre-hysteresis).
    pub imbalances_detected: u64,
    /// Re-solves that changed the placement of remaining epochs.
    pub repartitions: u64,
    /// Data items moved between devices by repartitioning.
    pub items_moved: u64,
    /// `true` once the static plan escalated to its dynamic sibling.
    pub escalated: bool,
    /// Epoch index at whose barrier escalation happened.
    pub escalated_at_epoch: Option<usize>,
    /// Tasks bound by the escalated DP-Perf scheduler.
    pub escalated_tasks: u64,
    /// `true` once an escalated run returned to its static plan.
    pub reinstated: bool,
    /// Epoch index at whose barrier the static plan was reinstated.
    pub reinstated_at_epoch: Option<usize>,
    /// Largest per-epoch skew observed.
    pub max_skew: f64,
    /// Skew of the last epoch that had ≥ 2 participating devices.
    pub final_skew: f64,
    /// Survivor re-plans applied after a device death or quarantine.
    pub replans: u64,
    /// Healing re-plans that readmitted a reclosed device.
    pub readmissions: u64,
    /// Why the last repair attempt failed, if any did; the executor falls
    /// back to chunk-by-chunk host failover after recording this.
    pub replan_error: Option<ReplanError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert_and_valid() {
        let c = AdaptConfig::disabled();
        assert!(!c.enabled());
        assert!(c.validate().is_ok());
        assert_eq!(c, AdaptConfig::default());
    }

    #[test]
    fn enabled_config_is_enabled_and_valid() {
        let c = AdaptConfig::enabled_default();
        assert!(c.enabled());
        assert!(c.validate().is_ok());
        assert!(c.repartition);
        assert!(c.escalation);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut c = AdaptConfig::enabled_default();
        c.skew_threshold = 0.0;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.balance_target = 1.5;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.balance_target = 0.5;
        c.skew_threshold = 0.25;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.hysteresis = 0;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.max_resolves = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn report_defaults_are_zero() {
        let r = AdaptReport::default();
        assert_eq!(r.barriers_observed, 0);
        assert_eq!(r.repartitions, 0);
        assert!(!r.escalated);
        assert_eq!(r.escalated_at_epoch, None);
        assert!(!r.reinstated);
        assert_eq!(r.reinstated_at_epoch, None);
        assert_eq!(r.max_skew, 0.0);
    }

    #[test]
    fn replan_config_defaults_and_validation() {
        let off = ReplanConfig::disabled();
        assert!(!off.enabled());
        assert!(off.validate().is_ok());
        assert_eq!(off, ReplanConfig::default());

        let on = ReplanConfig::enabled_default();
        assert!(on.enabled());
        assert!(on.heal_on_reclose);
        assert!(on.validate().is_ok());

        let mut bad = ReplanConfig::enabled_default();
        bad.max_replans = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn replan_error_displays_are_descriptive() {
        assert!(ReplanError::NoSurvivingAccelerator
            .to_string()
            .contains("no surviving"));
        let e = ReplanError::SolverInfeasible {
            detail: "zero observed rate".into(),
        };
        assert!(e.to_string().contains("zero observed rate"));
        let e = ReplanError::BudgetExhausted { max_replans: 4 };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn report_replan_fields_default_to_zero() {
        let r = AdaptReport::default();
        assert_eq!(r.replans, 0);
        assert_eq!(r.readmissions, 0);
        assert_eq!(r.replan_error, None);
    }

    #[test]
    fn de_escalation_defaults() {
        // Disabled config never reinstates; the enabled default waits for
        // two calm barriers.
        assert_eq!(AdaptConfig::disabled().reinstate_after, 0);
        assert_eq!(AdaptConfig::enabled_default().reinstate_after, 2);
        assert!(AdaptConfig::enabled_default().validate().is_ok());
    }
}
