//! Adaptive repartitioning: online imbalance detection, epoch re-solving,
//! and static→dynamic strategy fallback under model misprediction.
//!
//! PRs 1–2 made the runtime survive fail-stop and gray *hardware*
//! failures, but the paper's static strategies (SP-Single/Unified/Varied)
//! still trust the Glinda profile blindly: a mispredicted partition — a
//! skewed profiling run ([`ProfilePerturb`]), mid-run performance drift
//! (`ThrottleRamp`) — silently inflates makespan with no mitigation. This
//! module closes the control loop, configured through [`AdaptConfig`]:
//!
//! 1. **Detect** — at every taskwait barrier the executor computes the
//!    per-device *busy-time skew* of the just-finished epoch
//!    (`(max − min) / max` over slot-normalised busy time of the devices
//!    that participated). A skew above [`AdaptConfig::skew_threshold`] for
//!    [`AdaptConfig::hysteresis`] consecutive barriers triggers the
//!    controller (hysteresis suppresses one-epoch noise).
//! 2. **Re-solve** — the *observed* per-device throughputs (items per busy
//!    second, folding transfer and queueing effects into an effective
//!    rate) are fed back into Glinda through
//!    [`glinda::resolve_with_observations`], which warm-starts from the
//!    prior split; the corrected split then re-pins the remaining epochs'
//!    statically placed tasks (whole task chunks move — region splits are
//!    baked into the plan, so the granularity is one chunk), with the
//!    chunk assignment chosen to minimise a slot-quantised predicted
//!    epoch wall at the observed rates (equal chunks run in waves over a
//!    device's slots, which a continuous item target cannot see). A
//!    no-regression guard keeps the old placement when the model predicts
//!    no improvement.
//! 3. **Escalate** — if [`AdaptConfig::max_resolves`] consecutive
//!    corrections still miss [`AdaptConfig::balance_target`], the static
//!    plan is abandoned for its dynamic sibling: remaining statically
//!    pinned tasks are handed to an internal DP-Perf scheduler seeded with
//!    the run's own observations (the Table I escalation SP-* → DP-Perf).
//!
//! Every adaptation decision draws from a dedicated seeded SplitMix64
//! stream, so enabling adaptation never perturbs fault or health sampling
//! and identical seeds replay byte-identically. With adaptation disabled
//! (the [`Default`]) the executor's event sequence is byte-identical to
//! the resilient path. What happened is reported through [`AdaptReport`]
//! (`RunReport::adapt`).
//!
//! [`ProfilePerturb`]: hetero_platform::FaultEvent::ProfilePerturb

use glinda::{PartitionProblem, PartitionSolution};
use hetero_platform::DeviceId;
use serde::{Deserialize, Serialize};

/// Configuration for the adaptive repartitioning controller. The disabled
/// configuration ([`AdaptConfig::disabled`]) makes `simulate_adaptive`
/// take the exact event sequence of the resilient executor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Per-epoch busy-time skew `(max − min) / max` above which an epoch
    /// counts as imbalanced (in `(0, 1)`).
    pub skew_threshold: f64,
    /// Skew at or below which the controller considers the run balanced
    /// again; must be ≤ `skew_threshold` (the gap is the hysteresis band).
    pub balance_target: f64,
    /// Consecutive imbalanced barriers required before the controller
    /// acts (≥ 1; higher values suppress one-epoch noise).
    pub hysteresis: u32,
    /// Consecutive re-solves allowed to miss `balance_target` before the
    /// static plan escalates to its dynamic sibling (≥ 1).
    pub max_resolves: u32,
    /// Re-solve and re-pin remaining epochs on imbalance (`false`
    /// observes skew for the report without correcting).
    pub repartition: bool,
    /// Escalate SP-* → DP-Perf when re-solves are exhausted.
    pub escalation: bool,
    /// Consecutive *calm* barriers (skew at or below `balance_target`,
    /// no open fault window) an escalated run must observe before the
    /// static plan is reinstated (DP-Perf → SP-* de-escalation). `0`
    /// disables de-escalation: once escalated, the run stays dynamic.
    pub reinstate_after: u32,
}

impl AdaptConfig {
    /// Everything off: byte-identical to the resilient executor.
    pub fn disabled() -> Self {
        AdaptConfig {
            skew_threshold: 0.25,
            balance_target: 0.10,
            hysteresis: 1,
            max_resolves: 2,
            repartition: false,
            escalation: false,
            reinstate_after: 0,
        }
    }

    /// Full adaptation with default thresholds: repartition at 25% skew
    /// after one imbalanced barrier, escalate to DP-Perf after two
    /// consecutive re-solves that miss the 10% balance target, and
    /// reinstate the static plan after two consecutive calm barriers.
    pub fn enabled_default() -> Self {
        AdaptConfig {
            repartition: true,
            escalation: true,
            reinstate_after: 2,
            ..AdaptConfig::disabled()
        }
    }

    /// `true` when any mitigation (repartitioning, escalation) is on.
    pub fn enabled(&self) -> bool {
        self.repartition || self.escalation
    }

    /// Check internal consistency: thresholds in `(0, 1)`, target ≤
    /// threshold, counters ≥ 1.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.skew_threshold > 0.0 && self.skew_threshold < 1.0) {
            return Err(format!(
                "skew_threshold {} outside (0, 1)",
                self.skew_threshold
            ));
        }
        if !(self.balance_target > 0.0 && self.balance_target < 1.0) {
            return Err(format!(
                "balance_target {} outside (0, 1)",
                self.balance_target
            ));
        }
        if self.balance_target > self.skew_threshold {
            return Err(format!(
                "balance_target {} exceeds skew_threshold {} (inverted hysteresis band)",
                self.balance_target, self.skew_threshold
            ));
        }
        if self.hysteresis == 0 {
            return Err("hysteresis must be >= 1".into());
        }
        if self.max_resolves == 0 {
            return Err("max_resolves must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig::disabled()
    }
}

/// The static partitioning decision behind the running plan, carried into
/// the executor so the controller can re-solve it against observed rates.
/// Produced by the planner (`matchmaker::Planner::adapt_plan`) for static
/// hybrid strategies; dynamic strategies have nothing to re-solve and run
/// without one.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptPlan {
    /// The partitioning problem the planner solved (planner-visible rates,
    /// possibly mispredicted).
    pub problem: PartitionProblem,
    /// The split the plan was emitted from.
    pub solution: PartitionSolution,
    /// The accelerator the split's GPU share is pinned to.
    pub gpu: DeviceId,
}

/// What the adaptive controller observed and did during one run (all
/// zeros for a balanced run or with adaptation disabled). Reported
/// through `RunReport::adapt`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Taskwait barriers at which the controller observed epoch skew.
    pub barriers_observed: u64,
    /// Barriers whose skew exceeded the threshold (pre-hysteresis).
    pub imbalances_detected: u64,
    /// Re-solves that changed the placement of remaining epochs.
    pub repartitions: u64,
    /// Data items moved between devices by repartitioning.
    pub items_moved: u64,
    /// `true` once the static plan escalated to its dynamic sibling.
    pub escalated: bool,
    /// Epoch index at whose barrier escalation happened.
    pub escalated_at_epoch: Option<usize>,
    /// Tasks bound by the escalated DP-Perf scheduler.
    pub escalated_tasks: u64,
    /// `true` once an escalated run returned to its static plan.
    pub reinstated: bool,
    /// Epoch index at whose barrier the static plan was reinstated.
    pub reinstated_at_epoch: Option<usize>,
    /// Largest per-epoch skew observed.
    pub max_skew: f64,
    /// Skew of the last epoch that had ≥ 2 participating devices.
    pub final_skew: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert_and_valid() {
        let c = AdaptConfig::disabled();
        assert!(!c.enabled());
        assert!(c.validate().is_ok());
        assert_eq!(c, AdaptConfig::default());
    }

    #[test]
    fn enabled_config_is_enabled_and_valid() {
        let c = AdaptConfig::enabled_default();
        assert!(c.enabled());
        assert!(c.validate().is_ok());
        assert!(c.repartition);
        assert!(c.escalation);
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        let mut c = AdaptConfig::enabled_default();
        c.skew_threshold = 0.0;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.balance_target = 1.5;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.balance_target = 0.5;
        c.skew_threshold = 0.25;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.hysteresis = 0;
        assert!(c.validate().is_err());

        let mut c = AdaptConfig::enabled_default();
        c.max_resolves = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn report_defaults_are_zero() {
        let r = AdaptReport::default();
        assert_eq!(r.barriers_observed, 0);
        assert_eq!(r.repartitions, 0);
        assert!(!r.escalated);
        assert_eq!(r.escalated_at_epoch, None);
        assert!(!r.reinstated);
        assert_eq!(r.reinstated_at_epoch, None);
        assert_eq!(r.max_skew, 0.0);
    }

    #[test]
    fn de_escalation_defaults() {
        // Disabled config never reinstates; the enabled default waits for
        // two calm barriers.
        assert_eq!(AdaptConfig::disabled().reinstate_after, 0);
        assert_eq!(AdaptConfig::enabled_default().reinstate_after, 2);
        assert!(AdaptConfig::enabled_default().validate().is_ok());
    }
}
